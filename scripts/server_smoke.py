"""CI smoke test for the census daemon (``repro serve``).

Boots the real process, then drives the serving contract end to end:

1. ~32 concurrent queries, most of them duplicates, so request
   coalescing is actually exercised (checked via ``/metrics``);
2. responses cross-checked against a serial ``QueryEngine`` on the
   same graph — before and after an update batch, at the version each
   response names;
3. a ``/metrics`` scrape that must contain the ``server.*`` family;
4. ``SIGTERM``, which must drain cleanly: exit code 0, in-flight work
   finished.

Stdlib only; exits non-zero with a message on the first violation.

Usage: PYTHONPATH=src python scripts/server_smoke.py
"""

import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) AS c "
         "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")
UPDATE = {"ops": [{"op": "add_edge", "u": 1, "v": 199},
                  {"op": "add_edge", "u": 2, "v": 198}]}


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def post(base, path, doc):
    req = urllib.request.Request(
        f"{base}{path}", data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=60) as resp:
        return resp.read().decode()


def serial_rows(graph_path, ops_batches):
    """What a serial engine answers after replaying ``ops_batches``."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.graph.io import load_json
    from repro.query.engine import QueryEngine

    graph = load_json(graph_path)
    engine = QueryEngine(graph, cache=False)
    expected = {graph.version: [list(r) for r in engine.execute(QUERY).rows]}
    for batch in ops_batches:
        for op in batch["ops"]:
            graph.add_edge(op["u"], op["v"])
        expected[graph.version] = [list(r) for r in engine.execute(QUERY).rows]
    return expected


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    graph_path = tmp / "g.json"
    subprocess.run(
        [sys.executable, "-m", "repro", "generate", str(graph_path),
         "--nodes", "200", "--m", "3", "--seed", "4"],
        check=True, env={"PYTHONPATH": str(ROOT / "src")}, cwd=ROOT,
    )
    expected = serial_rows(graph_path, [UPDATE])

    proc = subprocess.Popen(
        # --no-cache so duplicate suppression can only come from
        # request coalescing, which is what this smoke is for.
        [sys.executable, "-m", "repro", "serve", str(graph_path),
         "--port", "0", "--max-active", "2", "--queue-depth", "64",
         "--no-cache"],
        env={"PYTHONPATH": str(ROOT / "src")}, cwd=ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        print(banner)
        if "http://" not in banner:
            fail(f"unexpected serve banner: {banner!r}")
        base = "http://" + banner.split("http://")[1].split(" ")[0]

        deadline = time.monotonic() + 30
        while True:
            try:
                health = json.loads(get(base, "/health"))
                break
            except OSError:
                if time.monotonic() > deadline:
                    fail("daemon never became healthy")
                time.sleep(0.1)
        v0 = health["graph_version"]
        if v0 not in expected:
            fail(f"initial version {v0} unknown to the serial replay")

        # -- concurrent duplicate queries: coalescing + consistency ----
        results = []
        lock = threading.Lock()

        def one_query():
            status, doc = post(base, "/query", {"query": QUERY})
            with lock:
                results.append((status, doc))

        threads = [threading.Thread(target=one_query) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        if len(results) != 32:
            fail(f"only {len(results)}/32 concurrent queries completed")
        statuses = sorted({status for status, _ in results})
        if statuses != [200]:
            fail(f"expected every concurrent query to succeed, got {statuses}")
        for _, doc in results:
            if doc["graph_version"] != v0:
                fail(f"pre-update response at version {doc['graph_version']}")
            if doc["rows"] != expected[v0]:
                fail(f"wrong rows at version {v0}: {doc['rows']}")
        coalesced = sum(doc["coalesced"] for _, doc in results)
        print(f"32 concurrent queries ok, {coalesced} coalesced")

        # -- update, then verify the new version is served -------------
        status, doc = post(base, "/update", UPDATE)
        if status != 200:
            fail(f"update failed: {doc}")
        v1 = doc["graph_version"]
        if v1 not in expected or v1 == v0:
            fail(f"post-update version {v1} unknown to the serial replay")
        status, doc = post(base, "/query", {"query": QUERY})
        if status != 200 or doc["graph_version"] != v1:
            fail(f"post-update query did not see version {v1}: {doc}")
        if doc["rows"] != expected[v1]:
            fail(f"stale rows served after update: {doc['rows']}")
        print(f"update applied, version {v0} -> {v1}, fresh rows served")

        # -- metrics scrape --------------------------------------------
        metrics = get(base, "/metrics")
        for needle in ("repro_server_requests_total",
                       "repro_server_coalesced_total",
                       "repro_server_updates_total 1",
                       "repro_server_graph_version"):
            if needle not in metrics:
                fail(f"/metrics is missing {needle!r}")
        scraped = next(
            int(line.split()[1]) for line in metrics.splitlines()
            if line.startswith("repro_server_coalesced_total ")
        )
        if scraped != coalesced:
            fail(f"coalesced counter {scraped} != responses marked {coalesced}")
        if coalesced == 0:
            fail("no query coalesced; the duplicate burst did not overlap")
        print("metrics scrape ok")

        # -- graceful drain --------------------------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 60s of SIGTERM")
        tail = proc.stdout.read()
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM:\n{tail}")
        if "drained" not in tail:
            fail(f"daemon exited without reporting a drain:\n{tail}")
        print("SIGTERM drained cleanly")
        print("server smoke: OK")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
