"""CI smoke test for the census daemon (``repro serve``).

Boots the real process, then drives the serving contract end to end:

1. ~32 concurrent queries, most of them duplicates, so request
   coalescing is actually exercised (checked via ``/metrics``);
2. responses cross-checked against a serial ``QueryEngine`` on the
   same graph — before and after an update batch, at the version each
   response names;
3. telemetry under load: every response names its request, a sampled
   trace is retrievable at ``/debug/traces/<id>`` with stitched
   per-chunk spans (the server runs ``--workers 2``), slow queries
   (``--slow-query-ms 1``) land in ``/debug/slow`` with an
   EXPLAIN ANALYZE plan and in the JSONL log, and ``/debug/requests``
   stays well-formed while the burst is in flight;
4. a ``/metrics`` scrape that must contain the ``server.*`` family and
   cumulative labeled latency-histogram buckets;
5. ``SIGTERM``, which must drain cleanly: exit code 0, in-flight work
   finished.

When ``REPRO_SMOKE_ARTIFACTS`` names a directory, the slow-query JSONL
and the final metrics scrape are copied there (CI uploads them as
workflow artifacts).

Stdlib only; exits non-zero with a message on the first violation.

Usage: PYTHONPATH=src python scripts/server_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) AS c "
         "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")
UPDATE = {"ops": [{"op": "add_edge", "u": 1, "v": 199},
                  {"op": "add_edge", "u": 2, "v": 198}]}


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def post(base, path, doc):
    req = urllib.request.Request(
        f"{base}{path}", data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=60) as resp:
        return resp.read().decode()


def serial_rows(graph_path, ops_batches):
    """What a serial engine answers after replaying ``ops_batches``."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.graph.io import load_json
    from repro.query.engine import QueryEngine

    graph = load_json(graph_path)
    engine = QueryEngine(graph, cache=False)
    expected = {graph.version: [list(r) for r in engine.execute(QUERY).rows]}
    for batch in ops_batches:
        for op in batch["ops"]:
            graph.add_edge(op["u"], op["v"])
        expected[graph.version] = [list(r) for r in engine.execute(QUERY).rows]
    return expected


def main():
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    graph_path = tmp / "g.json"
    slow_log = tmp / "slow.jsonl"
    subprocess.run(
        [sys.executable, "-m", "repro", "generate", str(graph_path),
         "--nodes", "200", "--m", "3", "--seed", "4"],
        check=True, env={"PYTHONPATH": str(ROOT / "src")}, cwd=ROOT,
    )
    expected = serial_rows(graph_path, [UPDATE])

    proc = subprocess.Popen(
        # --no-cache so duplicate suppression can only come from
        # request coalescing, which is what this smoke is for.
        # --workers 2 so served traces must contain stitched per-chunk
        # spans; sampling at 1.0 and a 1ms slow threshold so the debug
        # endpoints have something to serve.
        [sys.executable, "-m", "repro", "serve", str(graph_path),
         "--port", "0", "--max-active", "2", "--queue-depth", "64",
         "--no-cache", "--workers", "2",
         "--trace-sample-rate", "1", "--slow-query-ms", "1",
         "--slow-query-log", str(slow_log)],
        env={"PYTHONPATH": str(ROOT / "src")}, cwd=ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline().strip()
        print(banner)
        if "http://" not in banner:
            fail(f"unexpected serve banner: {banner!r}")
        base = "http://" + banner.split("http://")[1].split(" ")[0]

        deadline = time.monotonic() + 30
        while True:
            try:
                health = json.loads(get(base, "/health"))
                break
            except OSError:
                if time.monotonic() > deadline:
                    fail("daemon never became healthy")
                time.sleep(0.1)
        v0 = health["graph_version"]
        if v0 not in expected:
            fail(f"initial version {v0} unknown to the serial replay")

        # -- concurrent duplicate queries: coalescing + consistency ----
        results = []
        inflight_polls = []
        lock = threading.Lock()
        burst_done = threading.Event()

        def one_query():
            status, doc = post(base, "/query", {"query": QUERY})
            with lock:
                results.append((status, doc))

        def poll_inflight():
            # /debug/requests must answer well-formed documents while
            # the burst is actually executing.
            while not burst_done.is_set():
                doc = json.loads(get(base, "/debug/requests"))
                with lock:
                    inflight_polls.append(doc)
                time.sleep(0.02)

        poller = threading.Thread(target=poll_inflight)
        poller.start()
        threads = [threading.Thread(target=one_query) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        burst_done.set()
        poller.join(timeout=30)
        if len(results) != 32:
            fail(f"only {len(results)}/32 concurrent queries completed")
        statuses = sorted({status for status, _ in results})
        if statuses != [200]:
            fail(f"expected every concurrent query to succeed, got {statuses}")
        for _, doc in results:
            if doc["graph_version"] != v0:
                fail(f"pre-update response at version {doc['graph_version']}")
            if doc["rows"] != expected[v0]:
                fail(f"wrong rows at version {v0}: {doc['rows']}")
            if len(doc.get("request_id") or "") != 16:
                fail(f"response without a request_id: {doc.keys()}")
            if not doc.get("trace_id", "").startswith(doc["request_id"]):
                fail("trace_id does not extend request_id")
            if doc.get("sampled") is not True:
                fail("sample rate 1.0 but response not marked sampled")
        coalesced = sum(doc["coalesced"] for _, doc in results)
        print(f"32 concurrent queries ok, {coalesced} coalesced")

        for doc in inflight_polls:
            if not isinstance(doc.get("in_flight"), list):
                fail(f"/debug/requests malformed under load: {doc}")
            for entry in doc["in_flight"]:
                if "request_id" not in entry or "age_ms" not in entry:
                    fail(f"in-flight entry missing fields: {entry}")
        seen_inflight = max(
            (len(doc["in_flight"]) for doc in inflight_polls), default=0
        )
        print(f"/debug/requests polled {len(inflight_polls)}x under load, "
              f"peak {seen_inflight} in flight")

        # -- sampled trace retrieval + stitched chunk spans ------------
        request_id = results[0][1]["request_id"]
        listing = json.loads(get(base, "/debug/traces"))
        listed = {t["request_id"] for t in listing["traces"]}
        if request_id not in listed:
            fail(f"request {request_id} missing from /debug/traces")
        trace = json.loads(get(base, f"/debug/traces/{request_id}"))
        names = set()

        def walk(span):
            names.add(span["name"])
            for child in span["children"]:
                walk(child)

        walk(trace["spans"])
        for needle in ("server.request", "query.execute"):
            if needle not in names:
                fail(f"served trace lacks the {needle} span: {sorted(names)}")
        # The leader of the burst ran the census with --workers 2, so at
        # least one retained trace must carry stitched per-chunk spans.
        stitched = False
        for summary in listing["traces"]:
            doc = json.loads(get(base, f"/debug/traces/{summary['request_id']}"))
            chunk_names = set()
            walk_target = doc.get("spans")
            if walk_target:
                stack = [walk_target]
                while stack:
                    span = stack.pop()
                    chunk_names.add(span["name"])
                    stack.extend(span["children"])
            if "census.parallel.chunk" in chunk_names:
                stitched = True
                break
        if not stitched:
            fail("no retained trace carries stitched census.parallel.chunk spans")
        print("sampled trace retrieved with stitched per-chunk spans")

        # -- slow-query capture ----------------------------------------
        slow = json.loads(get(base, "/debug/slow"))
        if not slow["slow"]:
            fail("1ms slow threshold captured nothing from a census burst")
        record = slow["slow"][0]
        if not record.get("plan") or "CENSUS" not in record["plan"]:
            fail(f"slow record lacks an EXPLAIN ANALYZE plan: {record.get('plan')!r}")
        if not slow_log.exists() or not slow_log.read_text().strip():
            fail(f"slow-query JSONL log {slow_log} is empty")
        for line in slow_log.read_text().splitlines():
            parsed = json.loads(line)
            if "request_id" not in parsed or "duration_ms" not in parsed:
                fail(f"slow-log line missing fields: {sorted(parsed)}")
        print(f"slow-query capture ok ({len(slow['slow'])} in ring, "
              f"{len(slow_log.read_text().splitlines())} logged)")

        # -- update, then verify the new version is served -------------
        status, doc = post(base, "/update", UPDATE)
        if status != 200:
            fail(f"update failed: {doc}")
        v1 = doc["graph_version"]
        if v1 not in expected or v1 == v0:
            fail(f"post-update version {v1} unknown to the serial replay")
        status, doc = post(base, "/query", {"query": QUERY})
        if status != 200 or doc["graph_version"] != v1:
            fail(f"post-update query did not see version {v1}: {doc}")
        if doc["rows"] != expected[v1]:
            fail(f"stale rows served after update: {doc['rows']}")
        print(f"update applied, version {v0} -> {v1}, fresh rows served")

        # -- metrics scrape --------------------------------------------
        metrics = get(base, "/metrics")
        for needle in ("repro_server_requests_total",
                       "repro_server_coalesced_total",
                       "repro_server_updates_total 1",
                       "repro_server_graph_version"):
            if needle not in metrics:
                fail(f"/metrics is missing {needle!r}")
        scraped = next(
            int(line.split()[1]) for line in metrics.splitlines()
            if line.startswith("repro_server_coalesced_total ")
        )
        if scraped != coalesced:
            fail(f"coalesced counter {scraped} != responses marked {coalesced}")
        if coalesced == 0:
            fail("no query coalesced; the duplicate burst did not overlap")
        for needle in ('repro_server_request_seconds_bucket{',
                       'le="+Inf"',
                       'repro_server_request_seconds_sum{',
                       'repro_server_request_seconds_count{',
                       'endpoint="query"'):
            if needle not in metrics:
                fail(f"/metrics lacks labeled latency histograms: {needle!r}")
        print("metrics scrape ok (labeled latency buckets present)")

        # -- artifact export for CI ------------------------------------
        artifacts = os.environ.get("REPRO_SMOKE_ARTIFACTS")
        if artifacts:
            out = Path(artifacts)
            out.mkdir(parents=True, exist_ok=True)
            (out / "metrics.prom").write_text(metrics)
            (out / "slow.jsonl").write_text(slow_log.read_text())
            (out / "traces.json").write_text(json.dumps(listing, indent=2))
            print(f"artifacts exported to {out}")

        # -- graceful drain --------------------------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit within 60s of SIGTERM")
        tail = proc.stdout.read()
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM:\n{tail}")
        if "drained" not in tail:
            fail(f"daemon exited without reporting a drain:\n{tail}")
        print("SIGTERM drained cleanly")
        print("server smoke: OK")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
