"""Command-line interface.

Subcommands:

- ``generate`` — write a synthetic benchmark graph to a JSON file,
- ``stats`` — print a one-screen summary of a graph file,
- ``query`` — run a pattern census script against a graph file,
- ``bulkload`` — convert a JSON graph into a disk-resident store,
- ``topk`` — print the K egos with the most matches of a pattern,
- ``serve`` — run the concurrent census query daemon (see
  :mod:`repro.server`).

Examples::

    python -m repro generate --model pa --nodes 2000 --labels 4 out.json
    python -m repro query out.json -e "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes LIMIT 5"
    python -m repro topk out.json --pattern clq3 --radius 2 -k 10
"""

import argparse
import sys

from repro.errors import BudgetExceeded
from repro.graph.generators import (
    erdos_renyi,
    labeled_preferential_attachment,
    preferential_attachment,
    watts_strogatz,
)
from repro.graph.io import load_json, save_json


def _load_graph(path):
    if str(path).endswith(".db"):
        from repro.storage import DiskGraph

        return DiskGraph.open(path)
    return load_json(path)


def _make_obs(args):
    """An ObsContext when ``--profile``/``--metrics-out`` asked for one."""
    if not (getattr(args, "profile", False) or getattr(args, "metrics_out", None)):
        return None
    from repro.obs import ObsContext

    return ObsContext()


def _emit_obs(obs, args, out):
    """Print the span tree / write the metrics file after a profiled run."""
    if obs is None:
        return
    from repro.obs import to_json, to_prometheus

    if getattr(args, "profile", False):
        print("-- profile " + "-" * 50, file=out)
        print(obs.report(), file=out)
    path = getattr(args, "metrics_out", None)
    if path:
        if args.metrics_format == "prometheus":
            text = to_prometheus(obs.registry)
        else:
            text = to_json(obs.registry, indent=2)
        with open(path, "w") as f:
            f.write(text)
        print(f"wrote metrics to {path}", file=out)


def _add_profile_flags(sub):
    sub.add_argument("--profile", action="store_true",
                     help="print the execution trace and counter table")
    sub.add_argument("--metrics-out", metavar="PATH",
                     help="write collected metrics to a file")
    sub.add_argument("--metrics-format", choices=("json", "prometheus"),
                     default="json")


def _cmd_generate(args, out):
    if args.model == "pa":
        if args.labels > 0:
            graph = labeled_preferential_attachment(
                args.nodes, m=args.m, num_labels=args.labels, seed=args.seed
            )
        else:
            graph = preferential_attachment(args.nodes, m=args.m, seed=args.seed)
    elif args.model == "er":
        graph = erdos_renyi(args.nodes, args.m * args.nodes, seed=args.seed)
    elif args.model == "ws":
        graph = watts_strogatz(args.nodes, k=2 * args.m, seed=args.seed)
    else:
        raise SystemExit(f"unknown model {args.model!r}")
    save_json(graph, args.output)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.output}",
          file=out)
    return 0


def _cmd_stats(args, out):
    from repro.query.statistics import GraphStatistics

    graph = _load_graph(args.graph)
    for key, value in GraphStatistics(graph).summary().items():
        print(f"{key}: {value}", file=out)
    return 0


def _cmd_query(args, out):
    from repro.query.engine import QueryEngine

    graph = _load_graph(args.graph)
    obs = _make_obs(args)
    if args.workers == 0:  # 0 = auto (CPU count)
        args.workers = None
    engine = QueryEngine(
        graph,
        seed=args.seed,
        algorithm=args.algorithm,
        pairwise_algorithm=args.pairwise_algorithm,
        matcher=args.matcher,
        cache=args.cache,
        obs=obs,
        backend=args.backend,
        workers=args.workers,
        timeout=args.timeout,
        max_ops=args.budget,
        max_results=args.max_results,
        degrade=args.degrade,
    )
    if args.execute:
        script = args.execute
    else:
        with open(args.script) as f:
            script = f.read()
    try:
        for table in engine.execute_script(script):
            print(table.render(max_rows=args.max_rows), file=out)
            print(file=out)
    except BudgetExceeded as exc:
        hint = (" (even the sampling fallback exceeded its grace budget)"
                if args.degrade
                else " (rerun with --degrade for a partial estimate)")
        print(f"error: {exc}{hint}", file=out)
        _emit_obs(obs, args, out)
        return 2
    _emit_obs(obs, args, out)
    return 0


def _cmd_serve(args, out):
    from repro.server import CensusServer

    graph = _load_graph(args.graph)
    server = CensusServer(
        graph,
        host=args.host,
        port=args.port,
        backend=args.backend,
        workers=args.workers if args.workers != 0 else None,
        algorithm=args.algorithm,
        pairwise_algorithm=args.pairwise_algorithm,
        matcher=args.matcher,
        seed=args.seed,
        cache=not args.no_cache,
        timeout=args.timeout,
        max_ops=args.budget,
        max_results=args.max_results,
        degrade=args.degrade,
        max_active=args.max_active,
        queue_depth=args.queue_depth,
        retry_after=args.retry_after,
        maintain=args.maintain,
        maintain_k=args.maintain_k,
        trace_sample_rate=args.trace_sample_rate,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log,
        trace_buffer=args.trace_buffer,
        slow_buffer=args.slow_buffer,
    )
    if args.patterns:
        with open(args.patterns) as f:
            from repro.lang.parser import parse_script
            from repro.matching.pattern import Pattern

            for statement in parse_script(f.read()):
                if not isinstance(statement, Pattern):
                    raise SystemExit(
                        "--patterns file may only contain PATTERN statements"
                    )
                server.engine.catalog.register(statement)
    print(f"serving {args.graph} on http://{server.host}:{server.port} "
          f"(graph version {server.state.version}); SIGTERM drains", file=out)
    out.flush()
    server.run()
    print("drained; bye", file=out)
    return 0


def _cmd_bulkload(args, out):
    from repro.storage import DiskGraph

    graph = load_json(args.graph)
    store = DiskGraph.create(args.output, graph)
    store.close()
    print(f"bulk-loaded {graph.num_nodes} nodes / {graph.num_edges} edges "
          f"into {args.output}", file=out)
    return 0


def _cmd_explain(args, out):
    from repro.query.engine import QueryEngine

    graph = _load_graph(args.graph)
    engine = QueryEngine(
        graph, algorithm=args.algorithm, backend=args.backend,
        workers=args.workers if args.workers != 0 else None,
    )
    print(engine.explain(args.query), file=out)
    return 0


def _cmd_topk(args, out):
    from repro.census.topk import census_topk
    from repro.lang.catalog import standard_catalog

    graph = _load_graph(args.graph)
    pattern = standard_catalog().get(args.pattern)
    obs = _make_obs(args)
    stats = {}
    if obs is not None:
        with obs:
            top = census_topk(graph, pattern, args.radius, args.k,
                              collect_stats=stats)
    else:
        top = census_topk(graph, pattern, args.radius, args.k,
                          collect_stats=stats)
    print(f"top {args.k} egos for {args.pattern} within {args.radius} hops "
          f"({stats['exact_evaluations']} exact evaluations):", file=out)
    for node, count in top:
        print(f"  {node}: {count}", file=out)
    _emit_obs(obs, args, out)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="Ego-centric graph pattern census toolkit"
    )
    parser.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None, help="enable stderr logging at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("output")
    gen.add_argument("--model", choices=("pa", "er", "ws"), default="pa")
    gen.add_argument("--nodes", type=int, default=1000)
    gen.add_argument("--m", type=int, default=5)
    gen.add_argument("--labels", type=int, default=4,
                     help="0 for an unlabeled graph")
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="summarize a graph file")
    stats.add_argument("graph")
    stats.set_defaults(func=_cmd_stats)

    query = sub.add_parser("query", help="run a census script")
    query.add_argument("graph")
    query.add_argument("script", nargs="?",
                       help="script file (or use -e)")
    query.add_argument("-e", "--execute", help="inline statement(s)")
    query.add_argument("--algorithm", default="auto")
    query.add_argument("--pairwise-algorithm", choices=("nd", "pt"), default="nd",
                       help="strategy for intersection/union aggregates")
    query.add_argument("--matcher", choices=("cn", "gql", "bruteforce"),
                       default="cn", help="subgraph matching method")
    query.add_argument("--backend", choices=("dict", "csr"), default="dict",
                       help="graph backend: query as-is, or freeze into a "
                            "read-optimized CSR snapshot first")
    query.add_argument("--workers", type=int, default=1,
                       help="parallel census workers (0 = CPU count); "
                            "focal nodes are chunked over a process pool")
    query.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="wall-clock deadline per statement; exceeding it "
                            "raises BudgetExceeded (or degrades with --degrade)")
    query.add_argument("--budget", type=int, default=None, metavar="OPS",
                       help="cooperative work-operation cap per statement")
    query.add_argument("--max-results", type=int, default=None, metavar="N",
                       help="cap on matches/rows materialized per statement")
    query.add_argument("--degrade", action="store_true",
                       help="on budget exhaustion fall back to the sampling "
                            "estimator and mark results partial")
    query.add_argument("--cache", action="store_true",
                       help="cache aggregate results across statements")
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--max-rows", type=int, default=20)
    _add_profile_flags(query)
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser("serve", help="run the census query daemon")
    serve.add_argument("graph")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="0 picks a free port (printed at startup)")
    serve.add_argument("--algorithm", default="auto")
    serve.add_argument("--pairwise-algorithm", choices=("nd", "pt"), default="nd")
    serve.add_argument("--matcher", choices=("cn", "gql", "bruteforce"),
                       default="cn")
    serve.add_argument("--backend", choices=("dict", "csr"), default="csr",
                       help="a serving process defaults to CSR snapshots")
    serve.add_argument("--workers", type=int, default=1,
                       help="parallel census workers per query (0 = CPU count)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the version-keyed aggregate cache")
    serve.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="default wall-clock deadline per request")
    serve.add_argument("--budget", type=int, default=None, metavar="OPS",
                       help="default work-operation cap per request")
    serve.add_argument("--max-results", type=int, default=None, metavar="N",
                       help="default materialized-result cap per request")
    serve.add_argument("--degrade", action="store_true",
                       help="degrade blown budgets to partial estimates "
                            "(200 with partial:true) by default")
    serve.add_argument("--max-active", type=int, default=4,
                       help="requests executing concurrently")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="requests allowed to wait for a slot; beyond "
                            "this the server answers 429")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After seconds suggested on 429")
    serve.add_argument("--maintain", default=None, metavar="PATTERN",
                       help="maintain an incremental census of this catalog "
                            "pattern; updates refresh it in place and "
                            "GET /counts serves it")
    serve.add_argument("--maintain-k", type=int, default=2, metavar="K",
                       help="radius of the maintained census")
    serve.add_argument("--trace-sample-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="fraction of requests (0..1) whose full span tree "
                            "is retained for GET /debug/traces")
    serve.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="capture requests slower than this to GET "
                            "/debug/slow with their EXPLAIN ANALYZE plan "
                            "(default: disabled)")
    serve.add_argument("--slow-query-log", default=None, metavar="FILE",
                       help="append captured slow queries to this JSONL file")
    serve.add_argument("--trace-buffer", type=int, default=256, metavar="N",
                       help="retained-trace ring-buffer capacity")
    serve.add_argument("--slow-buffer", type=int, default=64, metavar="N",
                       help="slow-query ring-buffer capacity")
    serve.add_argument("--patterns", default=None, metavar="FILE",
                       help="script of PATTERN statements to preload")
    serve.add_argument("--seed", type=int, default=0)
    serve.set_defaults(func=_cmd_serve)

    bulk = sub.add_parser("bulkload", help="convert JSON graph to a disk store")
    bulk.add_argument("graph")
    bulk.add_argument("output")
    bulk.set_defaults(func=_cmd_bulkload)

    explain = sub.add_parser("explain", help="show the plan for a SELECT")
    explain.add_argument("graph")
    explain.add_argument("query")
    explain.add_argument("--algorithm", default="auto")
    explain.add_argument("--backend", choices=("dict", "csr"), default="dict")
    explain.add_argument("--workers", type=int, default=1,
                         help="parallel census workers (0 = CPU count)")
    explain.set_defaults(func=_cmd_explain)

    topk = sub.add_parser("topk", help="highest-count egos for a catalog pattern")
    topk.add_argument("graph")
    topk.add_argument("--pattern", default="clq3-unlb")
    topk.add_argument("--radius", type=int, default=2)
    topk.add_argument("-k", type=int, default=10)
    _add_profile_flags(topk)
    topk.set_defaults(func=_cmd_topk)

    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    if args.command == "query" and not args.execute and not args.script:
        parser.error("query needs a script file or -e STATEMENT")
    return args.func(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
