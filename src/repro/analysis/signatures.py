"""Census-based node signatures for subgraph search pruning.

The paper's fifth motivating application (Section I): counts of small
structural patterns in every node's neighborhood act as *node
signatures* that prune the search space of subgraph pattern matching —
a database node ``n`` can only match a pattern variable ``v`` if, for
every basis pattern, ``n``'s neighborhood contains at least as many
copies as ``v``'s neighborhood inside the (positive part of the)
pattern graph.

Soundness: a match maps the pattern's positive edges onto graph edges,
so the r-hop pattern neighborhood of ``v`` embeds into the r-hop graph
neighborhood of ``n``'s image; distinct basis-pattern subgraphs map to
distinct subgraphs.  The basis patterns are unlabeled, so labels cannot
break the inequality.
"""

from repro.census import census
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def _edge_basis():
    p = Pattern("sig_edge")
    p.add_edge("A", "B")
    return p


def _wedge_basis():
    p = Pattern("sig_wedge")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    return p


def _triangle_basis():
    p = Pattern("sig_triangle")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def default_basis():
    """The default signature basis: edge, wedge (2-path), triangle."""
    return [_edge_basis(), _wedge_basis(), _triangle_basis()]


def _pattern_as_graph(pattern):
    """The pattern's positive structure as an unlabeled graph."""
    g = Graph()
    for name in pattern.nodes:
        g.add_node(name)
    for e in pattern.positive_edges():
        g.add_edge(e.u, e.v)
    return g


class SignatureIndex:
    """Per-node census signatures over a basis of small patterns.

    Building the index is itself a batch of census queries — the
    "sophisticated signatures" the paper proposes building with its
    algorithms.
    """

    def __init__(self, graph, basis=None, radius=1, algorithm="nd-pvot"):
        self.radius = radius
        self.basis = basis if basis is not None else default_basis()
        per_basis = [
            census(graph, b, radius, algorithm=algorithm) for b in self.basis
        ]
        self._signatures = {
            n: tuple(counts[n] for counts in per_basis) for n in graph.nodes()
        }

    def signature(self, node):
        return self._signatures[node]

    def pattern_signatures(self, pattern):
        """Signature of every pattern variable, computed by running the
        same basis census inside the pattern's own positive structure."""
        pattern_graph = _pattern_as_graph(pattern)
        per_basis = [
            census(pattern_graph, b, self.radius, algorithm="nd-bas")
            for b in self.basis
        ]
        return {
            v: tuple(counts[v] for counts in per_basis) for v in pattern.nodes
        }

    def candidates(self, pattern):
        """Signature-pruned candidate sets: ``{var: set(nodes)}``.

        Sound: never drops a node that is the image of ``var`` in some
        match (tested by property against brute-force matching).
        """
        wanted = self.pattern_signatures(pattern)
        out = {}
        for var, want in wanted.items():
            out[var] = {
                n
                for n, sig in self._signatures.items()
                if all(s >= w for s, w in zip(sig, want))
            }
        return out

    def pruning_power(self, pattern):
        """Fraction of (var, node) candidate pairs eliminated."""
        candidate_sets = self.candidates(pattern)
        total = len(self._signatures) * len(pattern.nodes)
        kept = sum(len(c) for c in candidate_sets.values())
        return 1.0 - kept / total if total else 0.0

    def __len__(self):
        return len(self._signatures)
