"""Classic ego-centric measures as pattern census special cases.

Section II notes that node degree, (k-)clustering coefficient, and the
Jaccard coefficient are all census queries with trivial patterns.  Each
measure here comes in two forms: the census formulation and a direct
combinatorial computation — tests assert they coincide.
"""

from repro.census import census, pairwise_census
from repro.graph.traversal import k_hop_nodes
from repro.matching.pattern import Pattern


def _single_node():
    p = Pattern("single_node")
    p.add_node("A")
    return p


def _single_edge():
    p = Pattern("single_edge")
    p.add_edge("A", "B")
    return p


def degree_via_census(graph, nodes=None, algorithm="nd-pvot"):
    """Node degree as ``COUNTP(single_node, SUBGRAPH(ID, 1)) - 1``.

    The 1-hop neighborhood contains the ego itself, hence the -1.
    """
    counts = census(graph, _single_node(), 1, focal_nodes=nodes, algorithm=algorithm)
    return {n: c - 1 for n, c in counts.items()}


def clustering_coefficient(graph, node):
    """Direct local clustering coefficient of ``node``."""
    nbrs = list(graph.neighbors(node))
    d = len(nbrs)
    if d < 2:
        return 0.0
    links = 0
    nbr_set = set(nbrs)
    for i, u in enumerate(nbrs):
        links += sum(1 for w in graph.neighbors(u) if w in nbr_set and repr(w) > repr(u))
    return 2.0 * links / (d * (d - 1))


def clustering_coefficient_via_census(graph, nodes=None, algorithm="nd-pvot"):
    """Clustering coefficient via an edge census in the 1-neighborhood.

    ``COUNTP(single_edge, SUBGRAPH(ID, 1))`` counts all edges of the ego
    net; subtracting the ego's degree leaves the edges among neighbors.
    """
    edge_counts = census(graph, _single_edge(), 1, focal_nodes=nodes, algorithm=algorithm)
    out = {}
    for n, total_edges in edge_counts.items():
        d = graph.degree(n)
        if d < 2:
            out[n] = 0.0
            continue
        among_neighbors = total_edges - d
        out[n] = 2.0 * among_neighbors / (d * (d - 1))
    return out


def k_clustering_coefficient(graph, node, k):
    """The k-clustering coefficient of Jiang & Claramunt: the density of
    the subgraph induced on ``N_k(node) - {node}``."""
    members = k_hop_nodes(graph, node, k) - {node}
    d = len(members)
    if d < 2:
        return 0.0
    links = 0
    for u in members:
        links += sum(1 for w in graph.neighbors(u) if w in members and repr(w) > repr(u))
    return 2.0 * links / (d * (d - 1))


def effective_size(graph, node):
    """Burt's effective size of an ego network (unweighted form).

    ``n - 2t/n`` with ``n`` the number of alters and ``t`` the number of
    ties among them — large when the ego bridges otherwise-disconnected
    alters (a *structural hole*, Section VI's ego-centric motivation).
    """
    n = graph.degree(node)
    if n == 0:
        return 0.0
    nbrs = set(graph.neighbors(node))
    ties = 0
    for u in nbrs:
        ties += sum(1 for w in graph.neighbors(u) if w in nbrs and repr(w) > repr(u))
    return n - 2.0 * ties / n


def effective_size_via_census(graph, nodes=None, algorithm="nd-pvot"):
    """Effective size from the same edge census as the clustering
    coefficient: ties among alters = edges in the 1-hop net - degree."""
    edge_counts = census(graph, _single_edge(), 1, focal_nodes=nodes, algorithm=algorithm)
    out = {}
    for node, total_edges in edge_counts.items():
        n = graph.degree(node)
        if n == 0:
            out[node] = 0.0
            continue
        ties = total_edges - n
        out[node] = n - 2.0 * ties / n
    return out


def efficiency(graph, node):
    """Effective size normalized by network size (0 < e <= 1)."""
    n = graph.degree(node)
    if n == 0:
        return 0.0
    return effective_size(graph, node) / n


def jaccard_coefficient(graph, n1, n2, radius=1):
    """Direct Jaccard over closed k-hop neighborhoods (ego included),
    matching the paper's census formulation."""
    h1 = k_hop_nodes(graph, n1, radius)
    h2 = k_hop_nodes(graph, n2, radius)
    union = len(h1 | h2)
    if union == 0:
        return 0.0
    return len(h1 & h2) / union


def jaccard_via_census(graph, pairs, radius=1, algorithm="nd"):
    """Jaccard via node-pattern counts in intersection and union
    neighborhoods — the paper's formulation."""
    node = _single_node()
    inter = pairwise_census(graph, node, radius, pairs=pairs, mode="intersection",
                            algorithm=algorithm)
    union = pairwise_census(graph, node, radius, pairs=pairs, mode="union",
                            algorithm=algorithm)
    return {
        pair: (inter[pair] / union[pair]) if union[pair] else 0.0
        for pair in inter
    }
