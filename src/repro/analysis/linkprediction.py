"""Link prediction from pairwise structure counts (Section V-B).

The paper scores each author pair by the number of nodes, edges, or
triangles in the intersection of their 1/2/3-hop neighborhoods (nine
configurations), ranks pairs by score, and reports precision@K against
collaborations that actually formed later.  Jaccard and a random picker
are the baselines.
"""

import random

from repro.census import pairwise_census
from repro.matching.pattern import Pattern

#: The nine (structure, radius) configurations of Figure 4(h).
STRUCTURES = ("node", "edge", "triangle")
RADII = (1, 2, 3)


def structure_pattern(structure):
    """The unlabeled pattern for one of the paper's three structures."""
    p = Pattern(structure)
    if structure == "node":
        p.add_node("A")
    elif structure == "edge":
        p.add_edge("A", "B")
    elif structure == "triangle":
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
    else:
        raise ValueError(f"unknown structure {structure!r}")
    return p


def structure_scores(graph, pairs, structure, radius, algorithm="nd", matcher="cn"):
    """Score every pair by its common-neighborhood structure count."""
    pattern = structure_pattern(structure)
    return pairwise_census(
        graph, pattern, radius, pairs=pairs, mode="intersection",
        algorithm=algorithm, matcher=matcher,
    )


def jaccard_scores(graph, pairs, radius=1):
    """The Jaccard baseline over closed ``radius``-hop neighborhoods."""
    from repro.analysis.measures import jaccard_coefficient

    return {pair: jaccard_coefficient(graph, pair[0], pair[1], radius) for pair in pairs}


def random_scores(pairs, seed=0):
    """The random-predictor baseline."""
    rng = random.Random(seed)
    return {pair: rng.random() for pair in pairs}


def precision_at_k(scores, truth, k):
    """Precision of the top-``k`` pairs under ``scores`` against the
    ``truth`` set of realized pairs.

    Pairs are compared order-insensitively.  Ties are broken
    deterministically by pair repr, matching how a stable sort over a
    result table would behave.
    """
    normalized_truth = {_norm(pair) for pair in truth}
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    top = ranked[:k]
    if not top:
        return 0.0
    hits = sum(1 for pair, _score in top if _norm(pair) in normalized_truth)
    return hits / len(top)


def _norm(pair):
    a, b = pair
    return (a, b) if repr(a) <= repr(b) else (b, a)


class LinkPredictionExperiment:
    """The full Figure 4(h) experiment harness.

    Parameters
    ----------
    train_graph:
        The collaboration graph of the training era.
    test_pairs:
        Pairs that first collaborate in the test era (ground truth).
    candidate_pairs:
        Pairs to rank.  The paper ranks all author pairs; at scale it is
        customary (and equivalent for the top of the ranking) to rank
        pairs within a bounded distance — callers choose.
    """

    def __init__(self, train_graph, test_pairs, candidate_pairs, algorithm="nd"):
        self.graph = train_graph
        self.truth = {_norm(p) for p in test_pairs}
        self.candidates = [tuple(p) for p in candidate_pairs]
        self.algorithm = algorithm
        self._score_cache = {}

    def scores(self, measure):
        """Scores for one measure: ``('node', 2)``, ``'jaccard'``, or
        ``'random'``."""
        if measure in self._score_cache:
            return self._score_cache[measure]
        if measure == "jaccard":
            result = jaccard_scores(self.graph, self.candidates, radius=1)
        elif measure == "random":
            result = random_scores(self.candidates, seed=17)
        else:
            structure, radius = measure
            result = structure_scores(
                self.graph, self.candidates, structure, radius, algorithm=self.algorithm
            )
        self._score_cache[measure] = result
        return result

    def precision(self, measure, k):
        return precision_at_k(self.scores(measure), self.truth, k)

    def all_measures(self):
        """The nine census measures plus the two baselines."""
        measures = [(s, r) for s in STRUCTURES for r in RADII]
        measures.extend(["jaccard", "random"])
        return measures

    def report(self, ks=(50, 600)):
        """Rows of (measure name, {k: precision}) for every measure."""
        rows = []
        for measure in self.all_measures():
            name = measure if isinstance(measure, str) else f"{measure[0]}@{measure[1]}hop"
            rows.append((name, {k: self.precision(measure, k) for k in ks}))
        return rows
