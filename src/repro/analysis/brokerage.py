"""Brokerage role census (Figure 1(c), Gould & Fernandez roles).

In a directed transaction network where every node belongs to an
organization, the middle node B of a path A -> B -> C (with no direct
A -> C edge) plays one of five roles depending on which of A, B, C
share an organization:

- coordinator:     A, B, C all in the same organization
- gatekeeper:      A outside, B and C together
- representative:  A and B together, C outside
- consultant:      A and C together, B outside
- liaison:         all three in different organizations

Each role is one census pattern with org-equality predicates and a
``{B}`` subpattern counted in the 0-hop neighborhood — exactly the
construction of Table I row 4.
"""

from repro.census import census
from repro.matching.pattern import Pattern
from repro.matching.predicates import Attr, Comparison

#: role name -> (A==B?, B==C?, A==C?) organization equalities.
BROKERAGE_ROLES = {
    "coordinator": (True, True, True),
    "gatekeeper": (False, True, False),
    "representative": (True, False, False),
    "consultant": (False, False, True),
    "liaison": (False, False, False),
}


def brokerage_pattern(role, org_key="org"):
    """The directed-triad pattern for one brokerage role."""
    try:
        ab, bc, ac = BROKERAGE_ROLES[role]
    except KeyError:
        raise ValueError(
            f"unknown brokerage role {role!r}; roles: {sorted(BROKERAGE_ROLES)}"
        ) from None
    p = Pattern(f"brokerage_{role}")
    p.add_edge("A", "B", directed=True)
    p.add_edge("B", "C", directed=True)
    p.add_edge("A", "C", directed=True, negated=True)
    for pair, equal in (("AB", ab), ("BC", bc), ("AC", ac)):
        lhs = Attr(pair[0], org_key)
        rhs = Attr(pair[1], org_key)
        p.add_predicate(Comparison(lhs, "=" if equal else "!=", rhs))
    p.add_subpattern("broker", ["B"])
    return p


def brokerage_scores(graph, role, nodes=None, org_key="org", algorithm="nd-pvot"):
    """Per-node brokerage score: the number of triads of the given role
    in which the node is the middle (broker) node."""
    pattern = brokerage_pattern(role, org_key=org_key)
    return census(
        graph, pattern, 0, focal_nodes=nodes, subpattern="broker", algorithm=algorithm
    )


def brokerage_profile(graph, node, org_key="org", algorithm="nd-pvot"):
    """All five role scores for one node."""
    return {
        role: brokerage_scores(graph, role, nodes=[node], org_key=org_key,
                               algorithm=algorithm)[node]
        for role in BROKERAGE_ROLES
    }
