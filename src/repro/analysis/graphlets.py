"""Graphlet orbit profiles via subpattern census.

Przulj's graphlet degree distributions (cited in Section I as prior
local motif counting) assign each node counts of the *orbits* it
occupies in small connected subgraphs.  For 3-node graphlets there are
three orbits:

- orbit 0 — endpoint of an open wedge (path A-B-C, at A or C),
- orbit 1 — center of an open wedge (at B),
- orbit 2 — member of a triangle.

Each orbit is exactly one ``COUNTSP`` census query: the wedge pattern
with a ``{A}`` or ``{B}`` subpattern (with the A-C edge negated so
wedges are *open*), and the triangle with a ``{A}`` subpattern — a neat
demonstration that the paper's subpattern construct expresses orbit
counting.  Profiles feed a graphlet-degree-distribution distance for
whole-network comparison.
"""

import math

from repro.census import census
from repro.matching.pattern import Pattern

#: Orbit ids of the 3-node connected graphlets.
ORBITS = (0, 1, 2)


def _open_wedge_end():
    p = Pattern("wedge_end")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C", negated=True)
    p.add_subpattern("end", ["A"])
    return p


def _open_wedge_center():
    p = Pattern("wedge_center")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C", negated=True)
    p.add_subpattern("center", ["B"])
    return p


def _triangle_member():
    p = Pattern("triangle_member")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    p.add_subpattern("member", ["A"])
    return p


_ORBIT_QUERIES = {
    0: (_open_wedge_end, "end"),
    1: (_open_wedge_center, "center"),
    2: (_triangle_member, "member"),
}


def orbit_counts(graph, orbit, nodes=None, algorithm="nd-pvot"):
    """Per-node count of one 3-node orbit, via COUNTSP at k=0."""
    try:
        builder, subpattern = _ORBIT_QUERIES[orbit]
    except KeyError:
        raise ValueError(f"unknown orbit {orbit!r}; orbits are {ORBITS}") from None
    return census(graph, builder(), 0, focal_nodes=nodes,
                  subpattern=subpattern, algorithm=algorithm)


def graphlet_profiles(graph, nodes=None, algorithm="nd-pvot"):
    """``{node: (orbit0, orbit1, orbit2)}`` for every (focal) node.

    The three orbit queries share one traversal per node via
    :func:`repro.census.multi.multi_census`.
    """
    from repro.census.multi import multi_census

    patterns = []
    subpatterns = {}
    for orbit in ORBITS:
        builder, subpattern = _ORBIT_QUERIES[orbit]
        pattern = builder()
        patterns.append(pattern)
        subpatterns[pattern.name] = subpattern
    combined = multi_census(graph, patterns, 0, focal_nodes=nodes,
                            subpatterns=subpatterns)
    per_orbit = [combined[p.name] for p in patterns]
    return {
        n: tuple(counts[n] for counts in per_orbit)
        for n in per_orbit[0]
    }


def graphlet_degree_distribution(graph, orbit, algorithm="nd-pvot"):
    """``{count_value: #nodes with that orbit count}``."""
    counts = orbit_counts(graph, orbit, algorithm=algorithm)
    dist = {}
    for c in counts.values():
        dist[c] = dist.get(c, 0) + 1
    return dist


def gdd_distance(graph_a, graph_b, algorithm="nd-pvot"):
    """A graphlet-degree-distribution distance between two graphs.

    Per orbit: normalize each graph's distribution (scaled by 1/k as in
    Przulj's GDD agreement, then to unit mass) and take the Euclidean
    distance; average over orbits.  0 for identical distributions,
    larger for structurally different networks.
    """
    total = 0.0
    for orbit in ORBITS:
        da = _normalized(graphlet_degree_distribution(graph_a, orbit, algorithm))
        db = _normalized(graphlet_degree_distribution(graph_b, orbit, algorithm))
        keys = set(da) | set(db)
        total += math.sqrt(sum((da.get(k, 0.0) - db.get(k, 0.0)) ** 2 for k in keys))
    return total / len(ORBITS)


def _normalized(dist):
    # Przulj's scaling: weight count-value k by 1/k (k=0 excluded), then
    # normalize to unit mass.
    scaled = {k: v / k for k, v in dist.items() if k > 0}
    mass = sum(scaled.values())
    if mass == 0:
        return {}
    return {k: v / mass for k, v in scaled.items()}
