"""Node classification from census features (Figure 1(b), Section I).

The paper's node-classification application: a node's class is
predicted from pattern counts in its neighborhood — "a scientist who
collaborates mostly with scientists from a specific field is likely to
be from the same field".  Two pieces:

- :func:`neighbor_label_counts` — for each candidate class, one census
  query counting same-class nodes within ``k`` hops (a single-node
  pattern with a class predicate, ``COUNTP`` at radius ``k``);
- :func:`collective_classify` — iterative collective classification
  (Sen et al., cited by the paper): unlabeled nodes repeatedly take the
  class with the highest current census count among their alters.
"""

from repro.census import census
from repro.matching.pattern import Pattern
from repro.matching.predicates import Attr, Comparison, Const


def _node_with_class(label_value, class_key):
    """Pattern: a single node of the given class."""
    p = Pattern(f"class_{label_value}")
    p.add_node("A")
    p.add_predicate(Comparison(Attr("A", class_key), "=", Const(label_value)))
    return p


def neighbor_label_counts(graph, classes, nodes=None, k=1, class_key="cls",
                          algorithm="nd-pvot"):
    """``{node: {class: count}}`` of class-labeled nodes within k hops.

    One single-node census query per class (``COUNTP(class_c,
    SUBGRAPH(ID, k))``); at ``k=1`` this counts the ego's classified
    alters — the classic homophily feature (the ego itself contributes
    only if it already carries the class, which voting callers exclude
    by construction).
    """
    out = None
    for label_value in classes:
        pattern = _node_with_class(label_value, class_key)
        counts = census(graph, pattern, k, focal_nodes=nodes, algorithm=algorithm)
        if out is None:
            out = {n: {} for n in counts}
        for n, c in counts.items():
            out[n][label_value] = c
    return out if out is not None else {}


def collective_classify(graph, classes, class_key="cls", k=1, max_rounds=5,
                        algorithm="nd-pvot"):
    """Fill in missing ``class_key`` attributes by iterated census votes.

    Nodes whose ``class_key`` attribute is None/absent are assigned the
    class with the largest alter count; newly assigned classes feed the
    next round (collective classification).  Nodes with no classified
    alters stay unassigned until a later round reaches them.  Returns
    ``{node: predicted_class}`` for the initially-unlabeled nodes; the
    graph's attributes are updated in place.
    """
    unlabeled = [n for n in graph.nodes() if graph.node_attr(n, class_key) is None]
    predictions = {}
    for _ in range(max_rounds):
        pending = [n for n in unlabeled if n not in predictions]
        if not pending:
            break
        votes = neighbor_label_counts(graph, classes, nodes=pending, k=k,
                                      class_key=class_key, algorithm=algorithm)
        assigned_this_round = False
        for n in pending:
            counts = votes[n]
            best = max(counts.values(), default=0)
            if best == 0:
                continue
            winners = sorted(c for c, v in counts.items() if v == best)
            predictions[n] = winners[0]
            graph.set_node_attr(n, class_key, winners[0])
            assigned_this_round = True
        if not assigned_this_round:
            break
    return predictions


def classification_accuracy(predictions, truth):
    """Fraction of predicted nodes whose class matches ``truth``."""
    if not predictions:
        return 0.0
    hits = sum(1 for n, c in predictions.items() if truth.get(n) == c)
    return hits / len(predictions)
