"""Applications of ego-centric pattern census (Sections I and V-B).

- :mod:`repro.analysis.measures` — classic ego measures (degree,
  clustering coefficient, Jaccard) expressed as census queries, with
  direct implementations to cross-check them,
- :mod:`repro.analysis.linkprediction` — the paper's DBLP experiment:
  pairwise structure counts as link-prediction scores, precision@K,
- :mod:`repro.analysis.brokerage` — Gould–Fernandez brokerage role
  census (coordinator, gatekeeper, representative, consultant, liaison),
- :mod:`repro.analysis.balance` — structural-balance instability census
  over signed networks.
"""

from repro.analysis.balance import (
    balance_instability,
    signed_triangle_pattern,
    unstable_triangle_census,
)
from repro.analysis.brokerage import BROKERAGE_ROLES, brokerage_pattern, brokerage_scores
from repro.analysis.linkprediction import (
    LinkPredictionExperiment,
    jaccard_scores,
    precision_at_k,
    random_scores,
    structure_scores,
)
from repro.analysis.classification import (
    classification_accuracy,
    collective_classify,
    neighbor_label_counts,
)
from repro.analysis.graphlets import (
    gdd_distance,
    graphlet_degree_distribution,
    graphlet_profiles,
    orbit_counts,
)
from repro.analysis.roles import census_feature_vectors, extract_roles, role_summary
from repro.analysis.signatures import SignatureIndex, default_basis
from repro.analysis.measures import (
    clustering_coefficient,
    clustering_coefficient_via_census,
    degree_via_census,
    effective_size,
    effective_size_via_census,
    efficiency,
    jaccard_coefficient,
    jaccard_via_census,
    k_clustering_coefficient,
)

__all__ = [
    "degree_via_census",
    "effective_size",
    "effective_size_via_census",
    "efficiency",
    "clustering_coefficient",
    "clustering_coefficient_via_census",
    "k_clustering_coefficient",
    "jaccard_coefficient",
    "jaccard_via_census",
    "LinkPredictionExperiment",
    "structure_scores",
    "jaccard_scores",
    "random_scores",
    "precision_at_k",
    "BROKERAGE_ROLES",
    "brokerage_pattern",
    "brokerage_scores",
    "balance_instability",
    "signed_triangle_pattern",
    "unstable_triangle_census",
    "SignatureIndex",
    "default_basis",
    "graphlet_profiles",
    "graphlet_degree_distribution",
    "orbit_counts",
    "gdd_distance",
    "neighbor_label_counts",
    "collective_classify",
    "classification_accuracy",
    "extract_roles",
    "role_summary",
    "census_feature_vectors",
]
