"""Structural role identification from census profiles.

The paper's abstract lists *role identification* among the motivating
applications: nodes whose neighborhoods contain similar pattern mixes
play similar structural roles regardless of where they sit in the
graph.  This module builds per-node census feature vectors (graphlet
orbits by default, arbitrary pattern/subpattern queries optionally) and
clusters them with the same K-means used by PT-OPT's match clustering.
"""

import math

from repro.analysis.graphlets import graphlet_profiles
from repro.census.clustering import kmeans
from repro.census.multi import multi_census
from repro.errors import CensusError


def census_feature_vectors(graph, feature_queries, nodes=None):
    """Per-node feature vectors from a list of census queries.

    ``feature_queries`` is a list of ``(pattern, k)`` or ``(pattern, k,
    subpattern_name)`` tuples; all patterns must have distinct names.
    Queries with equal ``k`` share one traversal via
    :func:`repro.census.multi.multi_census`.
    """
    if not feature_queries:
        raise CensusError("at least one feature query is required")
    normalized = []
    for q in feature_queries:
        if len(q) == 2:
            normalized.append((q[0], q[1], None))
        else:
            normalized.append(tuple(q))

    by_k = {}
    for i, (pattern, k, subpattern) in enumerate(normalized):
        by_k.setdefault(k, []).append((i, pattern, subpattern))

    columns = [None] * len(normalized)
    for k, group in by_k.items():
        patterns = [pattern for _i, pattern, _s in group]
        subpatterns = {
            pattern.name: s for _i, pattern, s in group if s is not None
        }
        combined = multi_census(graph, patterns, k, focal_nodes=nodes,
                                subpatterns=subpatterns)
        for i, pattern, _s in group:
            columns[i] = combined[pattern.name]

    node_list = list(columns[0])
    return {n: tuple(col[n] for col in columns) for n in node_list}


def _log_scale(vector):
    return [math.log1p(x) for x in vector]


def extract_roles(graph, num_roles, feature_queries=None, nodes=None, seed=0,
                  iterations=15):
    """Assign each node one of ``num_roles`` structural roles.

    Features default to the 3-node graphlet orbit profile; counts are
    log-scaled before K-means so hub magnitudes don't drown shape.
    Returns ``{node: role_id}`` with role ids in ``0..num_roles-1``
    (fewer when clusters collapse).
    """
    if num_roles < 1:
        raise CensusError("num_roles must be >= 1")
    if feature_queries is None:
        profiles = graphlet_profiles(graph, nodes=nodes)
    else:
        profiles = census_feature_vectors(graph, feature_queries, nodes=nodes)

    node_list = sorted(profiles, key=repr)
    vectors = [_log_scale(profiles[n]) for n in node_list]
    clusters = kmeans(vectors, num_roles, iterations=iterations, seed=seed)
    assignment = {}
    for role_id, members in enumerate(clusters):
        for index in members:
            assignment[node_list[index]] = role_id
    return assignment


def role_summary(graph, assignment):
    """Per-role size and mean degree — a quick readout of what each
    discovered role is."""
    summary = {}
    for node, role in assignment.items():
        entry = summary.setdefault(role, {"size": 0, "total_degree": 0})
        entry["size"] += 1
        entry["total_degree"] += graph.degree(node)
    return {
        role: {"size": e["size"], "mean_degree": e["total_degree"] / e["size"]}
        for role, e in summary.items()
    }
