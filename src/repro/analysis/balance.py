"""Structural balance census over signed networks (Section I).

In a signed network (edges carry ``sign`` in {+1, -1}), triangles with
an odd number of negative edges are *unstable*.  The instability of a
node's ego network is the number of unstable triangles in its k-hop
neighborhood — a census query whose pattern fixes the sign multiset of
a triangle with ``EDGE(...)`` predicates.
"""

from repro.census import census
from repro.matching.pattern import Pattern
from repro.matching.predicates import Comparison, Const, EdgeAttr


def signed_triangle_pattern(num_negative, sign_key="sign"):
    """A triangle pattern with exactly ``num_negative`` negative edges.

    Because a census counts distinct match *subgraphs*, a triangle whose
    sign multiset matches is counted exactly once regardless of which
    pattern edge carries which sign.
    """
    if num_negative not in (0, 1, 2, 3):
        raise ValueError("a triangle has 0..3 negative edges")
    p = Pattern(f"tri_{num_negative}neg")
    edges = [("A", "B"), ("B", "C"), ("A", "C")]
    for u, v in edges:
        p.add_edge(u, v)
    for i, (u, v) in enumerate(edges):
        sign = -1 if i < num_negative else 1
        p.add_predicate(Comparison(EdgeAttr(u, v, sign_key), "=", Const(sign)))
    return p


def unstable_triangle_census(graph, k, nodes=None, sign_key="sign", algorithm="nd-pvot"):
    """Per-node count of unstable triangles (1 or 3 negative edges)."""
    one = census(graph, signed_triangle_pattern(1, sign_key), k,
                 focal_nodes=nodes, algorithm=algorithm)
    three = census(graph, signed_triangle_pattern(3, sign_key), k,
                   focal_nodes=nodes, algorithm=algorithm)
    return {n: one[n] + three[n] for n in one}


def balance_instability(graph, k, nodes=None, sign_key="sign", algorithm="nd-pvot"):
    """Fraction of unstable triangles per ego network (0.0 when the ego
    network has no triangles)."""
    unstable = unstable_triangle_census(graph, k, nodes=nodes, sign_key=sign_key,
                                        algorithm=algorithm)
    balanced = {}
    for count in (0, 2):
        part = census(graph, signed_triangle_pattern(count, sign_key), k,
                      focal_nodes=nodes, algorithm=algorithm)
        for n, c in part.items():
            balanced[n] = balanced.get(n, 0) + c
    out = {}
    for n, bad in unstable.items():
        total = bad + balanced.get(n, 0)
        out[n] = bad / total if total else 0.0
    return out
