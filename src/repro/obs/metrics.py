"""Lightweight metrics primitives: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a named collection of metric instruments.
Instruments are created lazily (``registry.counter("x").inc()``) and are
safe to share across threads: instrument creation is guarded by the
registry lock and every mutation takes the instrument's own lock.  The
locks are uncontended in the single-threaded case and the instrumented
code aggregates locally and records *once per operation region* (one
``inc`` per census call, not one per BFS step), so the cost of the
registry is negligible next to the work it measures.

Metric names are dotted paths (``census.nd_pvot.bulk_added``); the
export layer (:mod:`repro.obs.export`) maps them to JSON documents and
Prometheus text-format families.

Instruments may carry **labels** — a small, fixed-cardinality mapping
(``{"endpoint": "query", "backend": "csr"}``) identifying one series of
a family.  Labeled instruments are registered under the rendered key
``name{k=v,...}`` (sorted by label name), so a registry snapshot stays a
flat name-keyed dict and exporters recover the family/series split from
the key.  Keep label value sets tiny and bounded — a label per request
would turn the registry into the unbounded memory leak the daemon's
:class:`~repro.obs.context.MetricsObsContext` exists to avoid.
"""

import threading
import time

# Default histogram buckets, in seconds, chosen for query-stage timings
# that range from microseconds (parse/bind) to minutes (large censuses).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# Fixed log-scaled buckets for request latency histograms: four buckets
# per decade from 100 us to 100 s.  Log spacing keeps the relative
# quantile-estimation error constant across the range (a p99 of 3 ms
# and a p99 of 30 s are resolved equally well), and a *fixed* layout
# keeps every endpoint x algorithm x backend series mergeable and
# comparable across processes and scrapes.
LATENCY_BUCKETS = tuple(
    round(10.0 ** (exponent / 4.0), 6) for exponent in range(-16, 9)
)


def render_label_key(name, labels):
    """The registry key for ``name`` under ``labels`` (``None`` -> name)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_label_key(key):
    """Invert :func:`render_label_key`: ``(base name, labels dict)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = {}
    for part in inner[:-1].split(","):
        if part:
            k, _, v = part.partition("=")
            labels[k] = v
    return name, labels


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that can go up and down (cache residency, queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    Bucket boundaries are upper bounds (``le`` semantics, like
    Prometheus); one implicit ``+Inf`` bucket catches the tail.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q):
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the winning bucket, the standard
        Prometheus ``histogram_quantile`` estimate.  Observations that
        landed in the ``+Inf`` bucket are reported as the recorded
        ``max`` (finite, and a better bound than infinity).  Returns
        ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            if total == 0:
                return None
            rank = q * total
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                in_bucket = self.bucket_counts[i]
                if cumulative + in_bucket >= rank:
                    lower = self.buckets[i - 1] if i else 0.0
                    if in_bucket == 0:
                        return bound
                    fraction = (rank - cumulative) / in_bucket
                    return lower + (bound - lower) * fraction
                cumulative += in_bucket
            return self.max

    def __repr__(self):
        return f"<Histogram {self.name} count={self.count} sum={self.sum:.6f}>"


class Timer:
    """A histogram of elapsed seconds with a context-manager interface.

    ::

        with registry.timer("query.parse").time():
            parse(...)
    """

    __slots__ = ("histogram",)

    def __init__(self, histogram):
        self.histogram = histogram

    @property
    def name(self):
        return self.histogram.name

    def observe(self, seconds):
        self.histogram.observe(seconds)

    def time(self):
        return _TimerScope(self.histogram)

    def __repr__(self):
        return f"<Timer {self.histogram.name} count={self.histogram.count}>"


class _TimerScope:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """A named collection of counters, gauges, histograms, and timers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument accessors (lazy creation) ---------------------------
    def counter(self, name, labels=None):
        key = render_label_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(key, Counter(key))
        return c

    def gauge(self, name, labels=None):
        key = render_label_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(key, Gauge(key))
        return g

    def histogram(self, name, buckets=DEFAULT_BUCKETS, labels=None):
        key = render_label_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(key, Histogram(key, buckets))
        return h

    def timer(self, name, buckets=DEFAULT_BUCKETS, labels=None):
        return Timer(self.histogram(name, buckets, labels=labels))

    # -- read side ------------------------------------------------------
    def counters(self):
        return dict(self._counters)

    def gauges(self):
        return dict(self._gauges)

    def histograms(self):
        return dict(self._histograms)

    def snapshot(self):
        """A plain-data view of every instrument, for export and tests."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                        "buckets": list(zip(h.buckets, h.bucket_counts)),
                        "inf": h.bucket_counts[-1],
                        "p50": h.quantile(0.50),
                        "p95": h.quantile(0.95),
                        "p99": h.quantile(0.99),
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }

    def __len__(self):
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self):
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
