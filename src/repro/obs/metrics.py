"""Lightweight metrics primitives: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a named collection of metric instruments.
Instruments are created lazily (``registry.counter("x").inc()``) and are
safe to share across threads: instrument creation is guarded by the
registry lock and every mutation takes the instrument's own lock.  The
locks are uncontended in the single-threaded case and the instrumented
code aggregates locally and records *once per operation region* (one
``inc`` per census call, not one per BFS step), so the cost of the
registry is negligible next to the work it measures.

Metric names are dotted paths (``census.nd_pvot.bulk_added``); the
export layer (:mod:`repro.obs.export`) maps them to JSON documents and
Prometheus text-format families.
"""

import threading
import time

# Default histogram buckets, in seconds, chosen for query-stage timings
# that range from microseconds (parse/bind) to minutes (large censuses).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A value that can go up and down (cache residency, queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    Bucket boundaries are upper bounds (``le`` semantics, like
    Prometheus); one implicit ``+Inf`` bucket catches the tail.
    """

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def __repr__(self):
        return f"<Histogram {self.name} count={self.count} sum={self.sum:.6f}>"


class Timer:
    """A histogram of elapsed seconds with a context-manager interface.

    ::

        with registry.timer("query.parse").time():
            parse(...)
    """

    __slots__ = ("histogram",)

    def __init__(self, histogram):
        self.histogram = histogram

    @property
    def name(self):
        return self.histogram.name

    def observe(self, seconds):
        self.histogram.observe(seconds)

    def time(self):
        return _TimerScope(self.histogram)

    def __repr__(self):
        return f"<Timer {self.histogram.name} count={self.histogram.count}>"


class _TimerScope:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram):
        self._histogram = histogram
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """A named collection of counters, gauges, histograms, and timers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- instrument accessors (lazy creation) ---------------------------
    def counter(self, name):
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name):
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name, buckets))
        return h

    def timer(self, name, buckets=DEFAULT_BUCKETS):
        return Timer(self.histogram(name, buckets))

    # -- read side ------------------------------------------------------
    def counters(self):
        return dict(self._counters)

    def gauges(self):
        return dict(self._gauges)

    def histograms(self):
        return dict(self._histograms)

    def snapshot(self):
        """A plain-data view of every instrument, for export and tests."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                        "buckets": list(zip(h.buckets, h.bucket_counts)),
                        "inf": h.bucket_counts[-1],
                    }
                    for n, h in sorted(self._histograms.items())
                },
            }

    def __len__(self):
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self):
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
