"""Hierarchical timed spans — one execution trace per query.

A :class:`Span` records a name, wall-time interval, free-form
attributes, and the counters that were incremented while it was the
active span (:meth:`repro.obs.context.ObsContext.add` attaches each
increment to the innermost open span as well as to the registry).
Spans form a tree mirroring the engine's execution structure::

    query.execute
      query.bind
      query.scan
      query.aggregate (output=c)
        census.nd_pvot
          match.cn
      query.sort_limit

``render_span_tree`` produces the human-readable profile printed by
``repro query --profile`` and by ``EXPLAIN ANALYZE``.
"""

import time


class Span:
    """One timed region of execution."""

    __slots__ = ("name", "attrs", "children", "metrics", "start_time", "end_time")

    def __init__(self, name, attrs=None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children = []
        self.metrics = {}
        self.start_time = time.perf_counter()
        self.end_time = None

    def finish(self):
        if self.end_time is None:
            self.end_time = time.perf_counter()
        return self

    @property
    def duration(self):
        """Elapsed seconds (up to now for a still-open span)."""
        end = self.end_time if self.end_time is not None else time.perf_counter()
        return end - self.start_time

    def set(self, key, value):
        """Attach one attribute (no-op-compatible with the disabled span)."""
        self.attrs[key] = value

    def add_metric(self, name, value):
        self.metrics[name] = self.metrics.get(name, 0) + value

    # -- tree queries ---------------------------------------------------
    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name, **attrs):
        """First descendant (or self) with ``name`` and matching attrs."""
        for span in self.walk():
            if span.name == name and all(span.attrs.get(k) == v for k, v in attrs.items()):
                return span
        return None

    def subtree_metrics(self):
        """Counter totals aggregated over this span and its descendants."""
        totals = {}
        for span in self.walk():
            for name, value in span.metrics.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def to_dict(self):
        """JSON-serializable form of the span tree."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": self.duration,
            "metrics": dict(self.metrics),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, doc):
        """Rebuild a finished span tree from :meth:`to_dict` output.

        Used to stitch spans recorded in pool workers back into the
        parent trace: absolute ``perf_counter`` values don't survive a
        process boundary, so the rebuilt span keeps only the duration
        (``start_time=0``, ``end_time=duration``).
        """
        span = cls.__new__(cls)
        span.name = doc["name"]
        span.attrs = dict(doc.get("attrs") or {})
        span.metrics = dict(doc.get("metrics") or {})
        span.start_time = 0.0
        span.end_time = float(doc.get("duration_s") or 0.0)
        span.children = [cls.from_dict(c) for c in doc.get("children") or []]
        return span

    def __repr__(self):
        state = "open" if self.end_time is None else f"{self.duration * 1e3:.2f}ms"
        return f"<Span {self.name} {state} children={len(self.children)}>"


def format_duration(seconds):
    """Adaptive human-readable duration (``1.23 ms``, ``4.5 s``)."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def render_span_tree(span, indent=0, max_repeats=4):
    """Indented text rendering of a span tree with timings and metrics.

    Fan-out heavy traces (one matcher span per focal node under ND-BAS,
    one census span per top-k batch) are elided: after ``max_repeats``
    same-named siblings, the rest collapse into one summary line.
    """
    pad = "  " * indent
    attrs = ""
    if span.attrs:
        attrs = " (" + ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items())) + ")"
    lines = [f"{pad}{span.name}{attrs} [{format_duration(span.duration)}]"]
    for name, value in sorted(span.metrics.items()):
        lines.append(f"{pad}  * {name}={value}")
    rendered = {}
    elided = {}
    for child in span.children:
        if rendered.get(child.name, 0) >= max_repeats:
            count, total = elided.get(child.name, (0, 0.0))
            elided[child.name] = (count + 1, total + child.duration)
            continue
        rendered[child.name] = rendered.get(child.name, 0) + 1
        lines.append(render_span_tree(child, indent + 1, max_repeats))
    for name, (count, total) in elided.items():
        lines.append(
            f"{pad}  ... ({count} more {name} spans, {format_duration(total)} total)"
        )
    return "\n".join(lines)
