"""Metric export: JSON documents and Prometheus text format.

Both exporters read a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot, so they observe a consistent point-in-time view.  Dotted
metric names (``census.nd_pvot.bulk_added``) become Prometheus-safe
underscored names with a configurable prefix
(``repro_census_nd_pvot_bulk_added_total``).
"""

import json
import re

_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")

#: Content-Type a scrape endpoint must advertise for the text format
#: emitted by :func:`to_prometheus` (served by ``GET /metrics`` on the
#: census daemon, :mod:`repro.server`).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_name(name, prefix="repro"):
    """Map a dotted metric name onto the Prometheus grammar."""
    flat = _UNSAFE.sub("_", name.replace(".", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def to_json(registry, indent=None):
    """The registry snapshot as a JSON string."""
    return json.dumps(registry.snapshot(), indent=indent, default=repr)


def to_prometheus(registry, prefix="repro"):
    """The registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms emit cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    snap = registry.snapshot()
    lines = []
    for name, value in snap["counters"].items():
        pname = prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in snap["gauges"].items():
        pname = prometheus_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    for name, hist in snap["histograms"].items():
        pname = prometheus_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for bound, count in hist["buckets"]:
            cumulative += count
            lines.append(f'{pname}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{pname}_sum {hist['sum']}")
        lines.append(f"{pname}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
