"""Metric export: JSON documents and Prometheus text format.

Both exporters read a :class:`~repro.obs.metrics.MetricsRegistry`
snapshot, so they observe a consistent point-in-time view.  Dotted
metric names (``census.nd_pvot.bulk_added``) become Prometheus-safe
underscored names with a configurable prefix
(``repro_census_nd_pvot_bulk_added_total``).
"""

import json
import re

from repro.obs.metrics import split_label_key

_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")

#: Content-Type a scrape endpoint must advertise for the text format
#: emitted by :func:`to_prometheus` (served by ``GET /metrics`` on the
#: census daemon, :mod:`repro.server`).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def prometheus_name(name, prefix="repro"):
    """Map a dotted metric name onto the Prometheus grammar."""
    flat = _UNSAFE.sub("_", name.replace(".", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def to_json(registry, indent=None):
    """The registry snapshot as a JSON string."""
    return json.dumps(registry.snapshot(), indent=indent, default=repr)


def _render_labels(labels, extra=None):
    """``{k="v",...}`` for a series (empty string when unlabeled)."""
    pairs = list(sorted(labels.items())) if labels else []
    if extra:
        pairs += list(extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _escape_label(value):
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def to_prometheus(registry, prefix="repro"):
    """The registry in the Prometheus text exposition format.

    Counters get a ``_total`` suffix; histograms emit cumulative
    ``_bucket{le=...}`` series (``+Inf`` included) plus ``_sum`` and
    ``_count``.  Registry keys carrying labels (``name{k=v}``) become
    labeled series of one family; the ``# TYPE`` header is emitted once
    per family, before its first series.
    """
    snap = registry.snapshot()
    lines = []
    typed = set()

    def _type_line(pname, kind):
        if pname not in typed:
            typed.add(pname)
            lines.append(f"# TYPE {pname} {kind}")

    for key, value in snap["counters"].items():
        name, labels = split_label_key(key)
        pname = prometheus_name(name, prefix) + "_total"
        _type_line(pname, "counter")
        lines.append(f"{pname}{_render_labels(labels)} {value}")
    for key, value in snap["gauges"].items():
        name, labels = split_label_key(key)
        pname = prometheus_name(name, prefix)
        _type_line(pname, "gauge")
        lines.append(f"{pname}{_render_labels(labels)} {value}")
    for key, hist in snap["histograms"].items():
        name, labels = split_label_key(key)
        pname = prometheus_name(name, prefix)
        if not pname.endswith("_seconds"):
            pname += "_seconds"
        _type_line(pname, "histogram")
        cumulative = 0
        for bound, count in hist["buckets"]:
            cumulative += count
            le = _render_labels(labels, {"le": bound})
            lines.append(f"{pname}_bucket{le} {cumulative}")
        inf = _render_labels(labels, {"le": "+Inf"})
        lines.append(f"{pname}_bucket{inf} {hist['count']}")
        lines.append(f"{pname}_sum{_render_labels(labels)} {hist['sum']}")
        lines.append(f"{pname}_count{_render_labels(labels)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
