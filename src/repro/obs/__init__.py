"""Observability: metrics, execution traces, exporters, and logging.

The measurement substrate for the census engine.  Three layers:

- :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, histograms, and timers;
- :mod:`repro.obs.trace` — hierarchical timed spans forming one
  execution trace per query;
- :mod:`repro.obs.context` — the ambient :class:`ObsContext` binding
  the two together, with a near-zero-cost disabled mode.

Instrumented code (matchers, census algorithms, the query engine, the
storage layer) records against ``current_obs()``; nothing is measured
until a caller activates a context::

    from repro.obs import ObsContext

    with ObsContext() as obs:
        engine.execute("SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes")
    print(obs.report())            # span tree + counter table
    print(to_prometheus(obs.registry))

Exports: :func:`repro.obs.export.to_json` and
:func:`repro.obs.export.to_prometheus`.  ``EXPLAIN ANALYZE`` and the
CLI ``--profile`` flag are built on this module.
"""

from repro.obs.context import (
    DISABLED,
    MetricsObsContext,
    ObsContext,
    activate,
    current_obs,
    current_span,
    detach_spans,
)
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    prometheus_name,
    to_json,
    to_prometheus,
)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.obs.telemetry import (
    RequestObsContext,
    RequestTrace,
    Telemetry,
    current_request,
)
from repro.obs.trace import Span, format_duration, render_span_tree

__all__ = [
    "ObsContext",
    "MetricsObsContext",
    "RequestObsContext",
    "DISABLED",
    "activate",
    "current_obs",
    "current_span",
    "current_request",
    "detach_spans",
    "Telemetry",
    "RequestTrace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "Span",
    "render_span_tree",
    "format_duration",
    "to_json",
    "to_prometheus",
    "prometheus_name",
    "PROMETHEUS_CONTENT_TYPE",
    "configure_logging",
    "get_logger",
]
