"""Request-scoped telemetry for the serving path.

The daemon's :class:`~repro.obs.context.MetricsObsContext` keeps memory
bounded by throwing span trees away, which makes a served query a black
box: no request identity, no percentiles, no answer to "why was *this
one* slow".  This module restores per-request visibility without
unbounding memory:

- every request runs under its own :class:`RequestObsContext`, which
  retains the request's span tree privately while **teeing** every
  counter, histogram observation, gauge, and span timer into the shared
  daemon registry — so ``/metrics`` still aggregates across requests;
- a :class:`RequestTrace` carries a generated request ID through
  admission, coalescing, and engine execution, and is reachable from
  any frame via :func:`current_request` (a ``contextvars`` variable,
  like the ambient obs context);
- **head-based sampling** decides at admission whether the finished
  trace is retained in a bounded FIFO ring buffer (``--trace-sample-rate``);
  unsampled requests still get IDs, latency observations, and slow-query
  capture — sampling only controls ring-buffer retention;
- request latency lands in fixed log-scaled histograms
  (:data:`~repro.obs.metrics.LATENCY_BUCKETS`) labeled per
  endpoint x algorithm x backend, so per-endpoint p95 is derivable from
  any Prometheus scrape;
- requests slower than ``--slow-query-ms`` are captured — full trace
  plus a rendered ``EXPLAIN ANALYZE`` plan — into a second ring buffer
  (``GET /debug/slow``) and appended to a structured JSONL log.

Coalesced followers never execute the engine, so they record only their
wait time (``server.coalesced_wait_seconds``) and a
``server.coalesced_hits`` counter; the leader's single execution is the
only source of engine timers.  This is what makes the latency
histograms *exactly-once*: ``server.request_seconds`` counts
executions, not clients.
"""

import json
import random
import threading
import time
import uuid
from collections import OrderedDict
from contextvars import ContextVar

from repro.obs.context import ObsContext
from repro.obs.logs import get_logger
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

logger = get_logger("repro.obs.telemetry")

_CURRENT_REQUEST = ContextVar("repro_request_trace", default=None)


def current_request():
    """The in-flight :class:`RequestTrace`, or ``None`` outside one."""
    return _CURRENT_REQUEST.get()


class RequestObsContext(ObsContext):
    """A per-request obs context that tees into a shared registry.

    The private registry and span roots give the request its own
    complete trace (for sampling and slow-query capture); the shared
    registry keeps daemon-wide aggregates exact.  Both sides see each
    counter increment, histogram observation, and span timer exactly
    once.
    """

    def __init__(self, shared=None):
        super().__init__()
        self._shared = shared

    def add(self, name, value=1):
        super().add(name, value)
        if self._shared is not None:
            self._shared.counter(name).inc(value)

    def observe(self, name, value):
        super().observe(name, value)
        if self._shared is not None:
            self._shared.histogram(name).observe(value)

    def set_gauge(self, name, value):
        super().set_gauge(name, value)
        if self._shared is not None:
            self._shared.gauge(name).set(value)

    def _span_finished(self, span):
        super()._span_finished(span)
        if self._shared is not None:
            self._shared.timer("span." + span.name).observe(span.duration)


class RequestTrace:
    """Identity and trace state for one served request."""

    __slots__ = (
        "request_id", "trace_id", "endpoint", "sampled", "ctx", "root",
        "query", "status", "coalesced", "leader_id", "wait_seconds",
        "start_time", "end_time",
    )

    def __init__(self, endpoint, sampled, shared_registry=None):
        ident = uuid.uuid4().hex
        self.request_id = ident[:16]
        self.trace_id = ident
        self.endpoint = endpoint
        self.sampled = bool(sampled)
        self.ctx = RequestObsContext(shared=shared_registry)
        self.root = None
        self.query = None
        self.status = None
        self.coalesced = False
        self.leader_id = None
        self.wait_seconds = 0.0
        self.start_time = time.time()
        self.end_time = None

    @property
    def duration_s(self):
        end = self.end_time if self.end_time is not None else time.time()
        return end - self.start_time

    def link_leader(self, leader_id, wait_seconds):
        """Mark this request a coalesced follower of ``leader_id``."""
        self.coalesced = True
        self.leader_id = leader_id
        self.wait_seconds = wait_seconds
        if self.root is not None:
            self.root.set("coalesced_of", leader_id)

    def current_span_name(self):
        """Name of the deepest still-open span (for ``/debug/requests``).

        Walks the tree defensively: handler threads mutate children
        concurrently with debug reads, so this tolerates a list that
        grows mid-walk and never raises.
        """
        span = self.root
        if span is None:
            return None
        name = span.name
        while True:
            try:
                children = list(span.children)
            except Exception:  # pragma: no cover - defensive
                break
            open_child = None
            for child in reversed(children):
                if child.end_time is None:
                    open_child = child
                    break
            if open_child is None:
                break
            span = open_child
            name = span.name
        return name

    def to_summary(self):
        """The one-line form listed by ``GET /debug/traces``."""
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "query": self.query,
            "status": self.status,
            "coalesced": self.coalesced,
            "leader_id": self.leader_id,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "started_at": self.start_time,
            "sampled": self.sampled,
        }

    def to_dict(self):
        """The full form served by ``GET /debug/traces/<id>``."""
        doc = self.to_summary()
        doc["spans"] = self.root.to_dict() if self.root is not None else None
        return doc

    def __repr__(self):
        return (f"<RequestTrace {self.request_id} {self.endpoint} "
                f"sampled={self.sampled} coalesced={self.coalesced}>")


class _Ring:
    """A thread-safe bounded insertion-ordered map with FIFO eviction."""

    __slots__ = ("_capacity", "_items", "_lock")

    def __init__(self, capacity):
        self._capacity = max(1, int(capacity))
        self._items = OrderedDict()
        self._lock = threading.Lock()

    def put(self, key, value):
        with self._lock:
            self._items[key] = value
            self._items.move_to_end(key)
            while len(self._items) > self._capacity:
                self._items.popitem(last=False)

    def get(self, key):
        with self._lock:
            return self._items.get(key)

    def values(self):
        with self._lock:
            return list(self._items.values())

    def __len__(self):
        with self._lock:
            return len(self._items)


class Telemetry:
    """Daemon-wide request telemetry: sampling, rings, slow-query log.

    Parameters
    ----------
    registry:
        The shared daemon :class:`~repro.obs.metrics.MetricsRegistry`
        that per-request contexts tee into (usually the server's
        ``MetricsObsContext.registry``).
    sample_rate:
        Probability (0..1) that a finished request's full span tree is
        retained in the trace ring buffer.
    slow_query_ms:
        Threshold above which a request is captured to the slow ring
        and JSONL log; ``None`` disables slow capture.
    trace_buffer, slow_buffer:
        Ring-buffer capacities (FIFO eviction).
    slow_log_path:
        Optional path for the append-only slow-query JSONL log.
    labels:
        Static labels stamped on every latency series (the server
        passes ``{"algorithm": ..., "backend": ...}``), merged with the
        per-request ``endpoint`` label.
    """

    def __init__(self, registry=None, sample_rate=0.0, slow_query_ms=None,
                 trace_buffer=256, slow_buffer=64, slow_log_path=None,
                 labels=None, rng=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sample_rate = float(sample_rate)
        self.slow_query_ms = slow_query_ms
        self.labels = dict(labels) if labels else {}
        self.slow_log_path = slow_log_path
        self.traces = _Ring(trace_buffer)
        self.slow = _Ring(slow_buffer)
        self._in_flight = {}
        self._in_flight_lock = threading.Lock()
        self._slow_log_lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random()

    # -- request lifecycle ----------------------------------------------
    def request(self, endpoint, on_slow=None):
        """Open a request scope: ``with telemetry.request("query") as trace:``.

        ``on_slow(trace)`` is called (if given) when the finished
        request crosses the slow threshold; it should return rendered
        plan text, and any exception it raises is swallowed (slow
        capture must never fail a request).
        """
        sampled = self.sample_rate > 0 and self._rng.random() < self.sample_rate
        trace = RequestTrace(endpoint, sampled, shared_registry=self.registry)
        return _RequestScope(self, trace, on_slow)

    def _begin(self, trace):
        with self._in_flight_lock:
            self._in_flight[trace.request_id] = trace

    def _finish(self, trace, on_slow):
        with self._in_flight_lock:
            self._in_flight.pop(trace.request_id, None)
        labels = {"endpoint": trace.endpoint, **self.labels}
        if trace.coalesced:
            # Followers never executed anything: their latency is pure
            # wait-for-leader, recorded separately so the request
            # histogram stays exactly-once per execution.
            self.registry.counter("server.coalesced_hits", labels=labels).inc()
            self.registry.histogram(
                "server.coalesced_wait_seconds",
                buckets=LATENCY_BUCKETS, labels=labels,
            ).observe(trace.wait_seconds)
        else:
            self.registry.histogram(
                "server.request_seconds",
                buckets=LATENCY_BUCKETS, labels=labels,
            ).observe(trace.duration_s)
        if trace.sampled:
            self.traces.put(trace.request_id, trace)
        if self._is_slow(trace):
            self._capture_slow(trace, on_slow)

    def _is_slow(self, trace):
        if self.slow_query_ms is None:
            return False
        return trace.duration_s * 1e3 >= float(self.slow_query_ms)

    def _capture_slow(self, trace, on_slow):
        plan = None
        if on_slow is not None:
            try:
                plan = on_slow(trace)
            except Exception:  # noqa: BLE001 - capture must not fail requests
                logger.exception("slow-query plan capture failed for %s",
                                 trace.request_id)
        record = trace.to_dict()
        record["plan"] = plan
        record["slow_query_ms"] = self.slow_query_ms
        record["captured_at"] = time.time()
        self.slow.put(trace.request_id, record)
        self.registry.counter("server.slow_queries").inc()
        logger.warning("slow query %s (%s): %.1f ms", trace.request_id,
                       trace.endpoint, trace.duration_s * 1e3)
        if self.slow_log_path:
            line = json.dumps(record, default=repr)
            try:
                with self._slow_log_lock, open(self.slow_log_path, "a") as fh:
                    fh.write(line + "\n")
            except OSError:
                logger.exception("cannot append slow-query log %s",
                                 self.slow_log_path)

    # -- debug read side ------------------------------------------------
    def trace_summaries(self):
        """Newest-first summaries of retained traces."""
        return [t.to_summary() for t in reversed(self.traces.values())]

    def trace(self, request_id):
        """The retained trace for ``request_id``, or ``None``."""
        return self.traces.get(request_id)

    def slow_records(self):
        """Newest-first captured slow-query records."""
        return list(reversed(self.slow.values()))

    def in_flight(self):
        """Live requests with age and the span currently executing."""
        with self._in_flight_lock:
            live = list(self._in_flight.values())
        return [
            {
                "request_id": t.request_id,
                "trace_id": t.trace_id,
                "endpoint": t.endpoint,
                "query": t.query,
                "age_ms": round(t.duration_s * 1e3, 3),
                "current_span": t.current_span_name(),
                "sampled": t.sampled,
            }
            for t in sorted(live, key=lambda t: t.start_time)
        ]


class _RequestScope:
    """Activates a request's obs context and owns its root span."""

    __slots__ = ("_telemetry", "trace", "_on_slow", "_span_scope",
                 "_request_token")

    def __init__(self, telemetry, trace, on_slow):
        self._telemetry = telemetry
        self.trace = trace
        self._on_slow = on_slow
        self._span_scope = None
        self._request_token = None

    def __enter__(self):
        trace = self.trace
        self._request_token = _CURRENT_REQUEST.set(trace)
        trace.ctx.__enter__()
        self._span_scope = trace.ctx.span(
            "server.request",
            endpoint=trace.endpoint, request_id=trace.request_id,
        )
        trace.root = self._span_scope.__enter__()
        self._telemetry._begin(trace)
        return trace

    def __exit__(self, exc_type, exc, tb):
        trace = self.trace
        if trace.status is None and exc_type is not None:
            trace.status = 500
        if trace.status is not None:
            trace.root.set("status", trace.status)
        self._span_scope.__exit__(exc_type, exc, tb)
        trace.ctx.__exit__(exc_type, exc, tb)
        _CURRENT_REQUEST.reset(self._request_token)
        trace.end_time = time.time()
        self._telemetry._finish(trace, self._on_slow)
        return False
