"""Stdlib ``logging`` wiring for the toolkit.

Every module logs under the ``repro`` namespace
(``logging.getLogger("repro.query.engine")`` etc.); by default the
library emits nothing (a ``NullHandler`` on the root ``repro`` logger,
per library convention).  Applications and the CLI opt in with
:func:`configure_logging`, which the ``--log-level`` flag calls.
"""

import logging

LOGGER_NAME = "repro"

logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())

_LEVELS = {
    "critical": logging.CRITICAL,
    "error": logging.ERROR,
    "warning": logging.WARNING,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}


class _RequestContextFilter(logging.Filter):
    """Stamp every record with the in-flight request's identity.

    ``record.request_id`` / ``record.trace_id`` are always set (empty
    strings outside a request) so formats may reference them directly;
    ``record.request_ctx`` is a pre-rendered `` request_id=... trace_id=...``
    suffix that collapses to ``""`` outside a request, letting the
    default format stay clean for CLI runs.  The telemetry import is
    deferred: logging must work even if the obs package is mid-import.
    """

    def filter(self, record):
        trace = None
        try:
            from repro.obs.telemetry import current_request

            trace = current_request()
        except Exception:  # pragma: no cover - import-order defence
            pass
        if trace is not None:
            record.request_id = trace.request_id
            record.trace_id = trace.trace_id
            record.request_ctx = (
                f" request_id={trace.request_id} trace_id={trace.trace_id}"
            )
        else:
            record.request_id = ""
            record.trace_id = ""
            record.request_ctx = ""
        return True


def configure_logging(level="info", stream=None, fmt=None):
    """Attach a stream handler to the ``repro`` logger at ``level``.

    Idempotent: a second call replaces the handler installed by the
    first (so tests and repeated CLI invocations don't stack handlers).
    Returns the configured logger.
    """
    if isinstance(level, str):
        try:
            resolved = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
            ) from None
    else:
        resolved = int(level)
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_configured", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_configured = True
    handler.addFilter(_RequestContextFilter())
    handler.setFormatter(
        logging.Formatter(
            fmt or "%(asctime)s %(levelname)-7s %(name)s%(request_ctx)s: %(message)s"
        )
    )
    logger.addHandler(handler)
    logger.setLevel(resolved)
    return logger


def get_logger(name):
    """A logger under the ``repro`` namespace (``name`` may already
    start with ``repro``)."""
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")
