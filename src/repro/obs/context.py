"""The observability context: a registry plus an execution trace.

One :class:`ObsContext` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
with a tree of :class:`~repro.obs.trace.Span` objects.  Instrumented
code never receives a context explicitly — it asks for the *ambient*
one::

    obs = current_obs()
    with obs.span("census.nd_pvot", k=k) as sp:
        ...
        obs.add("census.nd_pvot.bulk_added", bulk)

The ambient context lives in a :class:`contextvars.ContextVar`, so each
thread (and each asyncio task, for later parallelism work) sees its own
activation independently.  When nothing is activated, ``current_obs()``
returns the shared :data:`DISABLED` singleton whose ``span`` hands back
one reusable no-op scope and whose recording methods are ``pass`` —
instrumentation then costs a contextvar read plus a handful of no-op
calls per *query*, not per graph operation, which keeps the disabled
overhead within measurement noise.

Activate a context with ``with obs:`` (or :func:`activate` for an
explicit scope)::

    with ObsContext() as obs:
        engine.execute(query)
    print(obs.report())
"""

import time
from contextvars import ContextVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, format_duration, render_span_tree


class _NoopSpan:
    """Shared do-nothing span scope for the disabled context."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, key, value):
        pass

    def add_metric(self, name, value):
        pass


_NOOP_SPAN = _NoopSpan()


class _DisabledObs:
    """The ambient context when observability is off: every hook is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name, **attrs):
        return _NOOP_SPAN

    def add(self, name, value=1):
        pass

    def observe(self, name, value):
        pass

    def set_gauge(self, name, value):
        pass

    def __repr__(self):
        return "<ObsContext disabled>"


DISABLED = _DisabledObs()

_CURRENT_OBS = ContextVar("repro_obs_context", default=DISABLED)
_CURRENT_SPAN = ContextVar("repro_obs_span", default=None)


def current_obs():
    """The active :class:`ObsContext`, or :data:`DISABLED` when none is."""
    return _CURRENT_OBS.get()


def current_span():
    """The innermost open :class:`Span`, or ``None``."""
    return _CURRENT_SPAN.get()


class detach_spans:
    """Context manager suspending the open span for the enclosed region.

    Work done inside starts its own span roots instead of nesting under
    the caller's open span.  Used by the parallel census executor so an
    inline (serial / same-thread) chunk records into its private chunk
    context exactly like a pool worker would, and the chunk subtrees can
    be stitched back uniformly afterwards.
    """

    __slots__ = ("_token",)

    def __enter__(self):
        self._token = _CURRENT_SPAN.set(None)
        return self

    def __exit__(self, *exc):
        _CURRENT_SPAN.reset(self._token)
        return False


class activate:
    """Context manager making ``ctx`` the ambient observability context."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx):
        self._ctx = ctx
        self._token = None

    def __enter__(self):
        self._token = _CURRENT_OBS.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc):
        _CURRENT_OBS.reset(self._token)
        return False


class _SpanScope:
    """Opens a span on entry, closes and times it on exit."""

    __slots__ = ("_ctx", "_span", "_token")

    def __init__(self, ctx, name, attrs):
        self._ctx = ctx
        self._span = Span(name, attrs)
        self._token = None

    def __enter__(self):
        span = self._span
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            parent.children.append(span)
        else:
            self._ctx.roots.append(span)
        self._token = _CURRENT_SPAN.set(span)
        span.start_time = time.perf_counter()
        return span

    def __exit__(self, *exc):
        span = self._span.finish()
        _CURRENT_SPAN.reset(self._token)
        self._ctx._span_finished(span)
        return False


class ObsContext:
    """An enabled observability context (registry + trace)."""

    enabled = True

    def __init__(self, registry=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.roots = []
        self._activation = None

    # -- recording hooks ------------------------------------------------
    def span(self, name, **attrs):
        """Open a timed span; usable as ``with obs.span(...) as sp:``."""
        return _SpanScope(self, name, attrs)

    def add(self, name, value=1):
        """Increment counter ``name``, attributing it to the open span."""
        self.registry.counter(name).inc(value)
        span = _CURRENT_SPAN.get()
        if span is not None:
            span.add_metric(name, value)

    def observe(self, name, value):
        """Record one histogram observation."""
        self.registry.histogram(name).observe(value)

    def set_gauge(self, name, value):
        self.registry.gauge(name).set(value)

    def _span_finished(self, span):
        """Hook called by the span scope on exit; records the timer.

        Subclasses override to tee timings elsewhere (the per-request
        telemetry context mirrors them into the daemon registry).
        """
        self.registry.timer("span." + span.name).observe(span.duration)

    # -- activation -----------------------------------------------------
    def __enter__(self):
        self._activation = activate(self)
        self._activation.__enter__()
        return self

    def __exit__(self, *exc):
        activation, self._activation = self._activation, None
        return activation.__exit__(*exc)

    # -- reporting ------------------------------------------------------
    def root(self, name=None):
        """The first root span (optionally the first named ``name``)."""
        for span in self.roots:
            if name is None or span.name == name:
                return span
        return None

    def counter_table(self):
        """Sorted ``(name, value)`` rows for every non-zero counter."""
        snap = self.registry.snapshot()
        return [(n, v) for n, v in snap["counters"].items() if v]

    def report(self):
        """Span tree plus counter table, as printed by ``--profile``."""
        lines = []
        for span in self.roots:
            lines.append(render_span_tree(span))
        counters = self.counter_table()
        if counters:
            lines.append("")
            lines.append("counters:")
            width = max(len(n) for n, _v in counters)
            for name, value in counters:
                lines.append(f"  {name.ljust(width)}  {value}")
        timers = [
            (n, h) for n, h in sorted(self.registry.histograms().items()) if h.count
        ]
        if timers:
            lines.append("")
            lines.append("timers:")
            width = max(len(n) for n, _h in timers)
            for name, hist in timers:
                lines.append(
                    f"  {name.ljust(width)}  n={hist.count} "
                    f"total={format_duration(hist.sum)} mean={format_duration(hist.mean)}"
                )
        return "\n".join(lines)

    def __repr__(self):
        return f"<ObsContext roots={len(self.roots)} {self.registry!r}>"


class _TransientSpanScope(_SpanScope):
    """A span scope that times and attributes but retains nothing.

    The span still becomes the current span (so ``obs.add`` attribution
    and nesting work) and its duration still lands in the registry's
    timer on exit, but it is never attached to a parent or to the
    context's roots — it is garbage the moment the scope closes.
    """

    def __enter__(self):
        span = self._span
        self._token = _CURRENT_SPAN.set(span)
        span.start_time = time.perf_counter()
        return span


class MetricsObsContext(ObsContext):
    """An :class:`ObsContext` for long-running processes.

    A plain context accumulates one span tree per query in ``roots``,
    which is exactly right for a CLI run and an unbounded memory leak
    for a daemon serving millions of requests.  This variant keeps the
    whole metrics surface — counters, gauges, histograms, and the
    per-span timers — but discards the span objects themselves, so its
    footprint is bounded by the number of distinct metric names.
    """

    def span(self, name, **attrs):
        return _TransientSpanScope(self, name, attrs)
