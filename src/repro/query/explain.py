"""Query plan explanation.

``explain`` renders what the engine *would* do for a SELECT: how focal
rows are produced, which census algorithm the planner picks per
aggregate and why, and the statistics that informed the choice.
``explain_analyze`` additionally *executes* the query under a fresh
observability context and annotates each plan line with the measured
wall-time and operation counts from the execution trace.  Used by
``QueryEngine.explain`` / ``QueryEngine.explain_analyze`` and the CLI.
"""

from repro.census.planner import choose_algorithm
from repro.lang.ast import Aggregate
from repro.obs import ObsContext, format_duration
from repro.query.statistics import GraphStatistics


def explain_query(engine, query):
    """Return a human-readable plan for ``query`` on ``engine``."""
    if isinstance(query, str):
        from repro.lang.parser import parse_query

        query = parse_query(query)

    stats = GraphStatistics(engine.graph)
    lines = []
    if query.is_pair_query:
        aliases = ", ".join(t.alias for t in query.tables)
        lines.append(
            f"SCAN pairs ({aliases}): cross product of {stats.num_nodes} nodes"
            f"{' filtered by WHERE' if query.where is not None else ''}"
        )
    else:
        alias = query.tables[0].alias
        lines.append(
            f"SCAN nodes ({alias}): {stats.num_nodes} nodes"
            f"{' filtered by WHERE' if query.where is not None else ''}"
        )

    for item in query.columns:
        if not isinstance(item, Aggregate):
            continue
        pattern = engine.catalog.get(item.pattern_name)
        hood = item.neighborhood
        if hood.kind == "subgraph":
            workers = getattr(engine, "workers", 1)
            if engine.algorithm == "auto":
                algorithm = choose_algorithm(
                    engine.graph, pattern, hood.k, workers=workers
                )
                reason = _planner_reason(engine.graph, pattern, algorithm)
            else:
                algorithm = engine.algorithm
                reason = "pinned by engine configuration"
            parallel = "" if workers == 1 else (
                f", workers={'auto' if workers is None else workers}"
                " (focal chunks over a worker pool)"
            )
            lines.append(
                f"CENSUS {item.output_name}: pattern={pattern.name} "
                f"({len(pattern.nodes)} vars, {len(pattern.positive_edges())} edges, "
                f"{len(pattern.negative_edges())} negated, "
                f"{len(pattern.predicates)} predicates), k={hood.k}, "
                f"algorithm={algorithm}{parallel} [{reason}]"
            )
        else:
            reason = _pairwise_reason(engine.graph, pattern, engine.pairwise_algorithm)
            lines.append(
                f"PAIRWISE CENSUS {item.output_name}: pattern={pattern.name}, "
                f"{hood.kind} of k={hood.k} neighborhoods, "
                f"strategy={engine.pairwise_algorithm} [{reason}]"
            )
        if item.subpattern_name:
            members = pattern.subpatterns[item.subpattern_name]
            lines.append(
                f"  SUBPATTERN {item.subpattern_name}: containment restricted "
                f"to {{{', '.join('?' + m for m in members)}}}"
            )

    if query.order_by:
        keys = ", ".join(
            f"{o.key} {'ASC' if o.ascending else 'DESC'}" for o in query.order_by
        )
        lines.append(f"SORT BY {keys}")
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    lines.append(
        f"GRAPH: {stats.num_nodes} nodes, {stats.num_edges} edges, "
        f"{stats.num_labels} labels, avg degree {stats.avg_degree:.1f}"
    )
    return "\n".join(lines)


def _planner_reason(graph, pattern, algorithm):
    from repro.census.planner import estimate_matches

    expected = estimate_matches(graph, pattern)
    if algorithm == "pt-opt":
        return f"~{expected:.0f} expected matches -> pattern-driven"
    return f"~{expected:.0f} expected matches -> node-driven pivot index"


def _pairwise_reason(graph, pattern, strategy):
    """Planner reasoning for intersection/union aggregates.

    The engine pins the pairwise strategy (``pairwise_algorithm``); this
    explains what each strategy trades: node-driven materializes one
    combined region per pair and probes the pivot index (cheap when
    matches are plentiful and pairs reuse neighborhoods), pattern-driven
    computes per-match coverage sets once and scans the pair list
    (cheap when matches are scarce relative to the pair count).
    """
    from repro.census.planner import estimate_matches

    expected = estimate_matches(graph, pattern)
    if strategy == "pt":
        return (
            f"~{expected:.0f} expected matches -> per-match coverage sets, "
            "one k-hop BFS per match node"
        )
    return (
        f"~{expected:.0f} expected matches -> per-pair region + pivot-index "
        "probes, neighborhoods cached across pairs"
    )


# Counters worth surfacing per aggregate in EXPLAIN ANALYZE, in display
# order.  Everything else recorded under the aggregate's span subtree is
# still available via ``repro query --profile`` / ``--metrics-out``.
_ANALYZE_COUNTERS = (
    ("match.cn.matches", "matches"),
    ("match.gql.matches", "matches"),
    ("match.cn.candidates_initial", "candidates"),
    ("match.gql.candidates_scanned", "candidates"),
    ("match.cn.pruning_passes", "pruning passes"),
    ("match.gql.refine_passes", "refine passes"),
    ("census.nd_pvot.bulk_added", "bulk added"),
    ("census.pairwise.bulk_added", "bulk added"),
    ("census.nd_pvot.containment_checks", "containment checks"),
    ("census.nd_bas.containment_checks", "containment checks"),
    ("census.pairwise.containment_checks", "containment checks"),
    ("census.nd_pvot.bfs_expansions", "BFS expansions"),
    ("census.nd_bas.subgraphs_extracted", "subgraphs extracted"),
    ("census.nd_diff.restarts", "restarts"),
    ("census.nd_diff.diff_steps", "differential steps"),
    ("census.parallel.chunks", "focal chunks"),
    ("census.parallel.workers", "workers"),
    ("census.parallel.chunk_retries", "chunks retried"),
    ("exec.budget.deadline_exceeded", "deadline exceeded"),
    ("exec.budget.work_exceeded", "work budget exceeded"),
    ("exec.budget.results_exceeded", "result cap exceeded"),
    ("exec.degraded", "degraded to sampling"),
    ("exec.faults.injected", "faults injected"),
    ("census.pt_bas.edge_visits", "edge visits"),
    ("census.pt_opt.edge_visits", "edge visits"),
    ("census.pt_opt.queue_pops", "bucket-queue pops"),
    ("census.pt_opt.relaxations", "relaxations"),
    ("census.pt_opt.clusters", "clusters"),
    ("census.topk.exact_evaluations", "exact evaluations"),
)


def explain_analyze(engine, query):
    """Execute ``query`` and render its plan annotated with actuals.

    Runs the query under a private :class:`repro.obs.ObsContext` (the
    caller's ambient context is untouched), then merges the recorded
    span tree into the static plan: per-stage wall-times, focal row
    counts, per-aggregate match/candidate/pruning counters, aggregate
    cache activity, and page-cache/pager deltas for disk graphs.
    """
    if isinstance(query, str):
        from repro.lang.parser import parse_query

        query = parse_query(query)

    ctx = ObsContext()
    saved_obs = engine.obs
    engine.obs = ctx
    try:
        engine.execute(query)
    finally:
        engine.obs = saved_obs

    root = ctx.roots[0] if ctx.roots else None
    return render_analyzed_plan(engine, query, root, ctx.registry)


def render_analyzed_plan(engine, query, root, registry):
    """Annotate ``query``'s plan from an already-recorded trace.

    ``root`` is the ``query.execute`` span of an execution that has
    *already happened* (``None`` renders the static plan) and
    ``registry`` the metrics registry that execution recorded into.
    This is the replay half of ``EXPLAIN ANALYZE``: the serving path's
    slow-query capture uses it to produce a full analyzed plan for the
    request that was just slow, without running the query a second
    time.
    """
    if isinstance(query, str):
        from repro.lang.parser import parse_query

        query = parse_query(query)
    lines = []
    for line in explain_query(engine, query).splitlines():
        lines.append(_annotate_plan_line(line, root))
    if root is not None:
        lines.extend(_execution_summary(root, registry))
    return "\n".join(lines)


def _annotate_plan_line(line, root):
    if root is None:
        return line
    stripped = line.lstrip()
    if stripped.startswith("SCAN "):
        span = root.find("query.scan")
        if span is not None:
            rows = span.attrs.get("rows")
            rows_part = f", rows={rows}" if rows is not None else ""
            return f"{line}  (actual: {format_duration(span.duration)}{rows_part})"
    elif stripped.startswith(("CENSUS ", "PAIRWISE CENSUS ")):
        name = stripped.split(":", 1)[0].rsplit(" ", 1)[-1]
        span = root.find("query.aggregate", output=name)
        if span is not None:
            extra = _aggregate_actuals(span)
            return f"{line}  (actual: {format_duration(span.duration)}{extra})"
    elif stripped.startswith(("SORT BY", "LIMIT ")):
        span = root.find("query.sort_limit")
        if span is not None and stripped.startswith("SORT BY"):
            return f"{line}  (actual: {format_duration(span.duration)})"
    return line


def _aggregate_actuals(span):
    metrics = span.subtree_metrics()
    parts = []
    seen_labels = set()
    for counter, label in _ANALYZE_COUNTERS:
        value = metrics.get(counter)
        if value is None or label in seen_labels:
            continue
        seen_labels.add(label)
        parts.append(f"{label}={value}")
    cached = span.metrics.get("query.aggregate_cache.hits")
    if cached:
        parts.append("served from aggregate cache")
    if span.attrs.get("partial"):
        parts.append("PARTIAL (budget exhausted, sampled estimate)")
    executed = {c.name for c in span.children if c.name.startswith("census.")}
    if executed:
        parts.append("ran " + "+".join(sorted(executed)))
    if not parts:
        return ""
    return "; " + ", ".join(parts)


def _execution_summary(root, registry):
    lines = []
    metrics = root.subtree_metrics()
    hits = metrics.get("query.aggregate_cache.hits", 0)
    misses = metrics.get("query.aggregate_cache.misses", 0)
    if hits or misses:
        lines.append(f"AGGREGATE CACHE: {hits} hits, {misses} misses")
    chunk_hist = registry.histograms().get("census.parallel.chunk_seconds")
    if chunk_hist is not None and chunk_hist.count:
        lines.append(
            f"PARALLEL: {metrics.get('census.parallel.chunks', chunk_hist.count)} "
            f"chunks over {metrics.get('census.parallel.workers', '?')} workers; "
            f"per-chunk {format_duration(chunk_hist.min)} min / "
            f"{format_duration(chunk_hist.mean)} mean / "
            f"{format_duration(chunk_hist.max)} max "
            f"(critical path {format_duration(chunk_hist.max)})"
        )
    storage = {
        name[len("storage."):]: value
        for name, value in metrics.items()
        if name.startswith("storage.")
    }
    if storage:
        pc_hits = storage.get("page_cache.hits", 0)
        pc_misses = storage.get("page_cache.misses", 0)
        looked_up = pc_hits + pc_misses
        rate = f", hit rate {pc_hits / looked_up:.1%}" if looked_up else ""
        lines.append(
            f"STORAGE: page cache {pc_hits} hits / {pc_misses} misses{rate}; "
            f"{storage.get('pager.pages_read', 0)} pages read, "
            f"{storage.get('pager.pages_written', 0)} written"
        )
    exceeded = {
        reason: metrics.get(f"exec.budget.{reason}_exceeded", 0)
        for reason in ("deadline", "work", "results")
    }
    if any(exceeded.values()):
        parts = ", ".join(
            f"{reason} exceeded {count}x"
            for reason, count in exceeded.items() if count
        )
        degraded = metrics.get("exec.degraded", 0)
        suffix = (
            f"; {degraded} aggregate(s) degraded to sampling"
            if degraded else "; no degradation (query failed or retried)"
        )
        lines.append(f"BUDGET: {parts}{suffix}")
    retries = metrics.get("census.parallel.chunk_retries", 0)
    if retries:
        lines.append(
            f"FAULTS: {metrics.get('census.parallel.worker_crashes', 0)} "
            f"worker crash event(s), {retries} chunk(s) retried serially"
        )
    stage_total = sum(c.duration for c in root.children)
    lines.append(
        f"TOTAL: {format_duration(root.duration)} "
        f"({format_duration(stage_total)} in instrumented stages)"
    )
    return lines
