"""Query plan explanation.

``explain`` renders what the engine *would* do for a SELECT: how focal
rows are produced, which census algorithm the planner picks per
aggregate and why, and the statistics that informed the choice.  Used
by ``QueryEngine.explain`` and the CLI.
"""

from repro.census.planner import choose_algorithm
from repro.lang.ast import Aggregate
from repro.query.statistics import GraphStatistics


def explain_query(engine, query):
    """Return a human-readable plan for ``query`` on ``engine``."""
    if isinstance(query, str):
        from repro.lang.parser import parse_query

        query = parse_query(query)

    stats = GraphStatistics(engine.graph)
    lines = []
    if query.is_pair_query:
        aliases = ", ".join(t.alias for t in query.tables)
        lines.append(
            f"SCAN pairs ({aliases}): cross product of {stats.num_nodes} nodes"
            f"{' filtered by WHERE' if query.where is not None else ''}"
        )
    else:
        alias = query.tables[0].alias
        lines.append(
            f"SCAN nodes ({alias}): {stats.num_nodes} nodes"
            f"{' filtered by WHERE' if query.where is not None else ''}"
        )

    for item in query.columns:
        if not isinstance(item, Aggregate):
            continue
        pattern = engine.catalog.get(item.pattern_name)
        hood = item.neighborhood
        if hood.kind == "subgraph":
            if engine.algorithm == "auto":
                algorithm = choose_algorithm(engine.graph, pattern, hood.k)
                reason = _planner_reason(engine.graph, pattern, algorithm)
            else:
                algorithm = engine.algorithm
                reason = "pinned by engine configuration"
            lines.append(
                f"CENSUS {item.output_name}: pattern={pattern.name} "
                f"({len(pattern.nodes)} vars, {len(pattern.positive_edges())} edges, "
                f"{len(pattern.negative_edges())} negated, "
                f"{len(pattern.predicates)} predicates), k={hood.k}, "
                f"algorithm={algorithm} [{reason}]"
            )
        else:
            lines.append(
                f"PAIRWISE CENSUS {item.output_name}: pattern={pattern.name}, "
                f"{hood.kind} of k={hood.k} neighborhoods, "
                f"strategy={engine.pairwise_algorithm}"
            )
        if item.subpattern_name:
            members = pattern.subpatterns[item.subpattern_name]
            lines.append(
                f"  SUBPATTERN {item.subpattern_name}: containment restricted "
                f"to {{{', '.join('?' + m for m in members)}}}"
            )

    if query.order_by:
        keys = ", ".join(
            f"{o.key} {'ASC' if o.ascending else 'DESC'}" for o in query.order_by
        )
        lines.append(f"SORT BY {keys}")
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    lines.append(
        f"GRAPH: {stats.num_nodes} nodes, {stats.num_edges} edges, "
        f"{stats.num_labels} labels, avg degree {stats.avg_degree:.1f}"
    )
    return "\n".join(lines)


def _planner_reason(graph, pattern, algorithm):
    from repro.census.planner import estimate_matches

    expected = estimate_matches(graph, pattern)
    if algorithm == "pt-opt":
        return f"~{expected:.0f} expected matches -> pattern-driven"
    return f"~{expected:.0f} expected matches -> node-driven pivot index"
