"""The census query engine.

Binds parsed statements to a database graph: PATTERN definitions
register in the engine's catalog; SELECT statements evaluate their
WHERE clause to pick focal nodes (or pairs), dispatch each COUNTP /
COUNTSP aggregate to a census algorithm (chosen by the planner unless
pinned), and assemble a :class:`repro.query.result.ResultTable`.
"""

import random
from contextlib import nullcontext
from itertools import product

from repro.census import pairwise_census
from repro.errors import QueryError
from repro.exec.budget import ExecutionBudget
from repro.exec.governor import governed_census
from repro.graph.csr import freeze
from repro.lang.ast import Aggregate, ExplainStatement, SelectQuery
from repro.lang.catalog import PatternCatalog, standard_patterns
from repro.lang.expressions import evaluate_where, expression_columns
from repro.lang.parser import parse_query, parse_script
from repro.matching.pattern import Pattern
from repro.obs import activate, current_obs, current_request, get_logger
from repro.query.result import ResultTable

logger = get_logger("repro.query.engine")


class QueryEngine:
    """Executes pattern census statements against one graph.

    Parameters
    ----------
    graph:
        Any object implementing the graph access-path API (an in-memory
        :class:`repro.graph.Graph` or a :class:`repro.storage.DiskGraph`).
    catalog:
        Pattern namespace; defaults to a fresh catalog preloaded with
        the paper's standard patterns (Figure 3 + Table I basics).
    seed:
        Seeds ``RND()`` in WHERE clauses; each ``execute`` call re-seeds
        so results are reproducible.
    algorithm:
        Census algorithm for single-node neighborhoods ('auto' lets the
        planner pick; see :data:`repro.census.ALGORITHMS`).
    pairwise_algorithm:
        'nd' or 'pt' for intersection/union neighborhoods.
    obs:
        An :class:`repro.obs.ObsContext` to record execution traces and
        metrics into.  ``None`` (the default) uses whatever context is
        ambient (``repro.obs.current_obs()``), which is the disabled
        no-op context unless a caller activated one.
    backend:
        ``'dict'`` queries the graph as given; ``'csr'`` freezes it into
        a :class:`repro.graph.csr.CSRGraph` snapshot at construction
        (call :meth:`refresh_snapshot` after mutating the source graph).
    workers:
        Worker count for ``COUNTP``/``COUNTSP`` censuses; ``1`` is the
        classic serial path, larger values (or ``None`` for the CPU
        count) chunk focal nodes over a process pool (see
        :mod:`repro.census.parallel`).  Pairwise censuses stay serial.
    timeout, max_ops, max_results:
        Per-statement execution budget (see
        :class:`repro.exec.budget.ExecutionBudget`): a wall-clock
        deadline in seconds, a cooperative work-operation cap, and a
        materialized-result cap.  A fresh budget is built for every
        statement; when all three are ``None`` (the default), statements
        run ungoverned — or under whatever budget the caller activated
        ambiently.
    degrade:
        When a budget expires mid-census, fall back to the sampling
        estimator instead of raising :class:`repro.errors.BudgetExceeded`;
        affected results are marked ``partial`` (see
        :mod:`repro.exec.governor`).
    """

    def __init__(self, graph, catalog=None, seed=0, algorithm="auto",
                 pairwise_algorithm="nd", matcher="cn", cache=False, obs=None,
                 backend="dict", workers=1, timeout=None, max_ops=None,
                 max_results=None, degrade=False):
        if backend not in ("dict", "csr"):
            raise QueryError(f"unknown backend {backend!r}; expected 'dict' or 'csr'")
        self.base_graph = graph
        self.backend = backend
        self.workers = workers
        self.graph = freeze(graph) if backend == "csr" else graph
        self.catalog = catalog if catalog is not None else PatternCatalog(standard_patterns())
        self.seed = seed
        self.algorithm = algorithm
        self.pairwise_algorithm = pairwise_algorithm
        self.matcher = matcher
        self.obs = obs
        self.timeout = timeout
        self.max_ops = max_ops
        self.max_results = max_results
        self.degrade = bool(degrade)
        self._snapshot_version = self._source_version()
        # Aggregate-result cache.  Opt-in; entries are keyed on both the
        # catalog version (pattern redefinitions) and the graph mutation
        # version (see :attr:`graph_version`), so neither a redefined
        # pattern nor an in-place graph mutation can be served stale.
        self.cache_enabled = bool(cache)
        self._cache = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _source_version(self):
        """Mutation version of the source graph (0 when untracked)."""
        return getattr(self.base_graph, "version", 0)

    @property
    def graph_version(self):
        """Version of the graph data queries currently observe.

        For the dict backend this is the live mutation counter of the
        source graph; for the CSR backend it is the source version
        captured when the snapshot was (re-)frozen — a mutation without
        :meth:`refresh_snapshot` leaves queries on the old snapshot, and
        this property says so.
        """
        if self.backend == "csr":
            return self._snapshot_version
        return self._source_version()

    def clear_cache(self):
        """Drop cached aggregate results (call after mutating the graph)."""
        self._cache.clear()

    def refresh_snapshot(self):
        """Re-freeze the source graph (CSR backend) and drop the cache."""
        if self.backend == "csr":
            self.graph = freeze(self.base_graph)
        self._snapshot_version = self._source_version()
        self.clear_cache()

    # ------------------------------------------------------------------
    # Statement entry points
    # ------------------------------------------------------------------
    def define_pattern(self, pattern):
        """Register a :class:`Pattern` or parseable PATTERN text."""
        if isinstance(pattern, str):
            from repro.lang.parser import parse_pattern

            pattern = parse_pattern(pattern)
        if not isinstance(pattern, Pattern):
            raise QueryError(f"cannot register {type(pattern).__name__} as a pattern")
        return self.catalog.register(pattern)

    def execute_script(self, text):
        """Run a script of statements.

        Returns one ResultTable per SELECT / EXPLAIN statement (EXPLAIN
        yields a one-column ``plan`` table).
        """
        results = []
        for statement in parse_script(text):
            if isinstance(statement, Pattern):
                self.catalog.register(statement)
            elif isinstance(statement, ExplainStatement):
                if statement.analyze:
                    plan = self.explain_analyze(statement.query)
                else:
                    plan = self.explain(statement.query)
                results.append(
                    ResultTable(["plan"], [(line,) for line in plan.splitlines()])
                )
            else:
                results.append(self._execute_select(statement))
        return results

    def explain(self, query):
        """Describe the plan for ``query`` without executing it."""
        from repro.query.explain import explain_query

        return explain_query(self, query)

    def explain_analyze(self, query):
        """Execute ``query`` and annotate its plan with measured
        wall-times and operation counts (the ``EXPLAIN ANALYZE``
        statement)."""
        from repro.query.explain import explain_analyze

        return explain_analyze(self, query)

    def execute(self, query, budget=None, degrade=None):
        """Run one SELECT (text or parsed); returns a ResultTable.

        ``budget`` overrides the engine's default per-statement budget
        for this call only: an :class:`~repro.exec.budget.ExecutionBudget`
        spec mapping (``timeout`` / ``max_ops`` / ``max_results`` keys)
        or a ready budget instance.  ``degrade`` likewise overrides the
        engine-level degradation policy (``None`` keeps it).  The serving
        layer uses both to honor per-request limits from headers.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not isinstance(query, SelectQuery):
            raise QueryError(f"cannot execute {type(query).__name__}")
        return self._execute_select(query, budget=budget, degrade=degrade)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_select(self, query, budget=None, degrade=None):
        obs = self.obs if self.obs is not None else current_obs()
        if not obs.enabled:
            return self._run_select(query, obs, budget, degrade)
        with activate(obs):
            with obs.span("query.execute") as span:
                trace = current_request()
                if trace is not None:
                    span.set("request_id", trace.request_id)
                io_before = self._io_snapshot()
                try:
                    return self._run_select(query, obs, budget, degrade)
                finally:
                    self._record_io_deltas(obs, io_before)

    def _make_budget(self, override=None):
        """A fresh per-statement budget, or ``None`` when unconfigured.

        ``override`` (a spec mapping or an ExecutionBudget) replaces the
        engine defaults entirely for this statement.
        """
        if override is not None:
            if isinstance(override, ExecutionBudget):
                return override
            return ExecutionBudget(**override)
        if self.timeout is None and self.max_ops is None and self.max_results is None:
            return None
        return ExecutionBudget(
            timeout=self.timeout, max_ops=self.max_ops,
            max_results=self.max_results,
        )

    def _run_select(self, query, obs, budget_override=None, degrade=None):
        aliases = [t.alias for t in query.tables]
        with obs.span("query.bind"):
            self._validate_references(query, aliases)
        rng = random.Random(self.seed)

        # One budget per statement; entering it makes it ambient so the
        # matching/census hot loops pick it up.  Unconfigured engines
        # leave whatever budget the caller activated in force.
        budget = self._make_budget(budget_override)
        degrade = self.degrade if degrade is None else bool(degrade)
        with budget if budget is not None else nullcontext():
            with obs.span("query.scan") as scan_span:
                if query.is_pair_query:
                    bindings = self._pair_bindings(query, aliases, rng)
                else:
                    bindings = self._node_bindings(query, aliases[0], rng)
                scan_span.set("rows", len(bindings))
                obs.add("query.focal_bindings", len(bindings))

            aggregate_values = {}
            partial = False
            notes = []
            for agg in query.aggregates():
                with obs.span("query.aggregate", output=agg.output_name) as agg_span:
                    values, outcome = self._evaluate_aggregate(
                        agg, aliases, bindings, degrade
                    )
                    aggregate_values[id(agg)] = values
                    if outcome is not None and outcome.partial:
                        partial = True
                        notes.append(f"{agg.output_name}: {outcome.note}")
                        agg_span.set("partial", True)

        columns = []
        for item in query.columns:
            if isinstance(item, Aggregate):
                columns.append(item.output_name)
            else:
                columns.append(item.display_name())

        rows = []
        for binding in bindings:
            row = []
            for item in query.columns:
                if isinstance(item, Aggregate):
                    row.append(aggregate_values[id(item)][binding])
                else:
                    row.append(self._column_value(item, aliases, binding))
            rows.append(tuple(row))

        with obs.span("query.sort_limit"):
            table = ResultTable(columns, rows, partial=partial, notes=notes)
            for order in reversed(query.order_by):
                table = table.sorted_by(order.key, descending=not order.ascending)
            if query.limit is not None:
                table = table.head(query.limit)
        logger.debug("executed query: %d rows, %d columns", len(table.rows),
                     len(table.columns))
        return table

    def _io_snapshot(self):
        io_stats = getattr(self.graph, "io_stats", None)
        return dict(io_stats()) if io_stats is not None else None

    def _record_io_deltas(self, obs, before):
        """Attribute storage counters that moved during this statement."""
        if before is None:
            return
        after = self._io_snapshot()
        for key, value in after.items():
            delta = value - before.get(key, 0)
            if delta:
                obs.add("storage." + key, delta)

    def _validate_references(self, query, aliases):
        known = set(aliases)

        def check(ref):
            if ref.alias is not None and ref.alias not in known:
                raise QueryError(
                    f"unknown table alias {ref.alias!r}; query tables are {aliases}"
                )
            if ref.alias is None and len(aliases) > 1:
                raise QueryError(
                    f"column {ref.name!r} must be qualified in a pair query"
                )

        for item in query.columns:
            if isinstance(item, Aggregate):
                if item.pattern_name not in self.catalog:
                    raise QueryError(
                        f"unknown pattern {item.pattern_name!r}; defined: "
                        f"{self.catalog.names()}"
                    )
                pattern = self.catalog.get(item.pattern_name)
                if item.subpattern_name is not None:
                    if item.subpattern_name not in pattern.subpatterns:
                        raise QueryError(
                            f"pattern {item.pattern_name!r} has no subpattern "
                            f"{item.subpattern_name!r}"
                        )
                hood = item.neighborhood
                if hood.kind != "subgraph" and not query.is_pair_query:
                    raise QueryError(
                        f"{hood.kind} neighborhoods require a pair query "
                        "(FROM nodes AS n1, nodes AS n2)"
                    )
                for target in hood.targets:
                    check(target)
            else:
                check(item)
        if query.where is not None:
            for ref in expression_columns(query.where):
                check(ref)
        output_names = set()
        for item in query.columns:
            if isinstance(item, Aggregate):
                output_names.add(item.output_name.lower())
            else:
                output_names.add(item.display_name().lower())
        for order in query.order_by:
            if order.key.lower() not in output_names:
                raise QueryError(
                    f"ORDER BY key {order.key!r} matches no column of the "
                    f"output; available: {sorted(output_names)}"
                )

    def _node_bindings(self, query, alias, rng):
        out = []
        for node in self.graph.nodes():
            if evaluate_where(query.where, self.graph, {alias: node}, rng):
                out.append((node,))
        return out

    def _pair_bindings(self, query, aliases, rng):
        a1, a2 = aliases
        out = []
        nodes = list(self.graph.nodes())
        for n1, n2 in product(nodes, nodes):
            if evaluate_where(query.where, self.graph, {a1: n1, a2: n2}, rng):
                out.append((n1, n2))
        return out

    def _column_value(self, ref, aliases, binding):
        node = binding[self._alias_position(ref, aliases)]
        if ref.is_id:
            return node
        attrs = self.graph.node_attrs(node)
        if ref.name in attrs:
            return attrs[ref.name]
        return attrs.get(ref.name.lower())

    def _alias_position(self, ref, aliases):
        if ref.alias is None:
            return 0
        return aliases.index(ref.alias)

    def _evaluate_aggregate(self, agg, aliases, bindings, degrade=None):
        """Map each row binding to its aggregate count.

        Returns ``(values, outcome)``: ``values`` maps bindings to
        counts; ``outcome`` is the :class:`repro.exec.governor.CensusOutcome`
        of a governed single-node census (``None`` for pairwise
        aggregates, which never degrade — a budget failure there raises).
        """
        pattern = self.catalog.get(agg.pattern_name)
        hood = agg.neighborhood
        degrade = self.degrade if degrade is None else degrade

        if hood.kind == "subgraph":
            target = hood.targets[0]
            pos = self._alias_position(target, aliases)
            focal = {binding[pos] for binding in bindings}
            outcome = self._cached(
                ("subgraph", agg.pattern_name, agg.subpattern_name, hood.k,
                 self.algorithm, frozenset(focal)),
                lambda: governed_census(
                    self.graph,
                    pattern,
                    hood.k,
                    focal_nodes=sorted(focal, key=repr),
                    subpattern=agg.subpattern_name,
                    algorithm=self.algorithm,
                    matcher=self.matcher,
                    workers=self.workers,
                    degrade=degrade,
                    seed=self.seed,
                ),
            )
            counts = outcome.counts
            return {binding: counts[binding[pos]] for binding in bindings}, outcome

        pos1 = self._alias_position(hood.targets[0], aliases)
        pos2 = self._alias_position(hood.targets[1], aliases)
        pairs = sorted({(b[pos1], b[pos2]) for b in bindings}, key=repr)
        counts = self._cached(
            (hood.kind, agg.pattern_name, agg.subpattern_name, hood.k,
             self.pairwise_algorithm, frozenset(pairs)),
            lambda: pairwise_census(
                self.graph,
                pattern,
                hood.k,
                pairs=pairs,
                mode=hood.kind,
                subpattern=agg.subpattern_name,
                algorithm=self.pairwise_algorithm,
                matcher=self.matcher,
            ),
        )
        return {b: counts[(b[pos1], b[pos2])] for b in bindings}, None

    def _cached(self, key, compute):
        if not self.cache_enabled:
            return compute()
        # The catalog version invalidates on pattern redefinition; the
        # graph version invalidates on any in-place mutation, so
        # ``cache=True`` plus a mutation without ``refresh_snapshot()``
        # can no longer silently serve pre-mutation counts.
        key = key + (self.catalog.version, self.graph_version)
        obs = current_obs()
        try:
            value = self._cache[key]
            self.cache_hits += 1
            obs.add("query.aggregate_cache.hits", 1)
            return value
        except KeyError:
            self.cache_misses += 1
            obs.add("query.aggregate_cache.misses", 1)
            value = compute()
            # A degraded (partial) outcome is an estimate under one
            # particular budget failure; never serve it from the cache.
            if not getattr(value, "partial", False):
                self._cache[key] = value
            return value
