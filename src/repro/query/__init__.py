"""End-to-end query engine: parse, plan, and execute census queries."""

from repro.query.engine import QueryEngine
from repro.query.result import ResultTable

__all__ = ["QueryEngine", "ResultTable"]
