"""Graph statistics used for planning and benchmark reporting."""

from collections import Counter

from repro.graph.graph import LABEL_KEY


class GraphStatistics:
    """Cheap one-pass summary of a database graph."""

    def __init__(self, graph):
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        degrees = [graph.degree(n) for n in graph.nodes()]
        self.max_degree = max(degrees, default=0)
        self.avg_degree = (sum(degrees) / len(degrees)) if degrees else 0.0
        self.label_histogram = Counter(
            graph.node_attr(n, LABEL_KEY) for n in graph.nodes()
        )
        self.directed = graph.directed

    @property
    def num_labels(self):
        return len(self.label_histogram)

    def label_selectivity(self, label):
        """Fraction of nodes carrying ``label`` (0.0 when absent)."""
        if not self.num_nodes:
            return 0.0
        return self.label_histogram.get(label, 0) / self.num_nodes

    def summary(self):
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_degree": round(self.avg_degree, 2),
            "max_degree": self.max_degree,
            "labels": self.num_labels,
            "directed": self.directed,
        }

    def __repr__(self):
        inner = ", ".join(f"{k}={v}" for k, v in self.summary().items())
        return f"<GraphStatistics {inner}>"
