"""Tabular query results."""

import csv
import json

from repro.errors import QueryError


class ResultTable:
    """An ordered, named-column table of query results.

    Rows are tuples aligned with ``columns``.  Provides the small set of
    operations the examples and benchmarks need: column access, sorting,
    top-k, and plain-text rendering.

    ``partial`` marks a table whose aggregate values are estimates — a
    budget expired mid-census and the engine degraded to sampling —
    with one human-readable reason per affected aggregate in ``notes``.
    Both survive :meth:`sorted_by` / :meth:`top` / :meth:`head` and the
    JSON round-trip, so a partial result can never silently masquerade
    as an exact one downstream.
    """

    def __init__(self, columns, rows, partial=False, notes=()):
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]
        self.partial = bool(partial)
        self.notes = list(notes)
        for row in self.rows:
            if len(row) != len(self.columns):
                raise QueryError(
                    f"row width {len(row)} does not match {len(self.columns)} columns"
                )

    def column_index(self, name):
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.lower() == lowered:
                return i
        raise QueryError(f"no column {name!r}; columns are {self.columns}")

    def column(self, name):
        """All values of one column, in row order."""
        i = self.column_index(name)
        return [row[i] for row in self.rows]

    def to_dicts(self):
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def sorted_by(self, name, descending=False):
        i = self.column_index(name)
        rows = sorted(self.rows, key=lambda r: r[i], reverse=descending)
        return ResultTable(self.columns, rows, partial=self.partial, notes=self.notes)

    def top(self, n, by):
        """The ``n`` rows with the largest values of column ``by``."""
        return ResultTable(self.columns, self.sorted_by(by, descending=True).rows[:n],
                           partial=self.partial, notes=self.notes)

    def head(self, n):
        return ResultTable(self.columns, self.rows[:n], partial=self.partial,
                           notes=self.notes)

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, i):
        return self.rows[i]

    def __eq__(self, other):
        return (
            isinstance(other, ResultTable)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def to_csv(self, path):
        """Write the table as CSV with a header row."""
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.columns)
            writer.writerows(self.rows)

    def to_json(self, path=None):
        """Serialize as ``{"columns": [...], "rows": [...]}`` (plus
        ``partial``/``notes`` for degraded results); returns the JSON
        string, also writing it to ``path`` when given."""
        doc = {"columns": self.columns, "rows": [list(r) for r in self.rows]}
        if self.partial:
            doc["partial"] = True
            doc["notes"] = self.notes
        text = json.dumps(doc)
        if path is not None:
            with open(path, "w") as f:
                f.write(text)
        return text

    @classmethod
    def from_json(cls, text):
        doc = json.loads(text)
        return cls(doc["columns"], [tuple(r) for r in doc["rows"]],
                   partial=doc.get("partial", False), notes=doc.get("notes", ()))

    def render(self, max_rows=20):
        """Fixed-width text rendering (truncated at ``max_rows`` rows)."""
        shown = self.rows[:max_rows]
        cells = [[str(c) for c in self.columns]]
        cells.extend([str(v) for v in row] for row in shown)
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = []
        header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        if self.partial:
            lines.append("[partial result]")
            for note in self.notes:
                lines.append(f"  {note}")
        return "\n".join(lines)

    def __str__(self):
        return self.render()

    def __repr__(self):
        return f"<ResultTable columns={self.columns} rows={len(self.rows)}>"
