"""WHERE-clause expressions: AST nodes and evaluation.

Expressions are evaluated once per candidate row (a node, or a pair of
nodes for two-table queries).  ``RND()`` draws from the engine's seeded
random generator, making selectivity predicates like
``WHERE RND() < 0.2`` (Figure 4(e)) deterministic per engine seed.
"""

import operator

from repro.errors import QueryError
from repro.lang.ast import ColumnRef

_BINOPS = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

_COMPARISONS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


class EvalContext:
    """Row context: alias -> node bindings, the graph, and a seeded RNG."""

    __slots__ = ("graph", "bindings", "rng")

    def __init__(self, graph, bindings, rng):
        self.graph = graph
        self.bindings = bindings
        self.rng = rng

    def resolve(self, ref):
        if ref.alias is None:
            if len(self.bindings) != 1:
                raise QueryError(
                    f"column {ref.name!r} is ambiguous; qualify it with a table alias"
                )
            node = next(iter(self.bindings.values()))
        else:
            try:
                node = self.bindings[ref.alias]
            except KeyError:
                raise QueryError(f"unknown table alias {ref.alias!r}") from None
        if ref.is_id:
            return node
        attrs = self.graph.node_attrs(node)
        if ref.name in attrs:
            return attrs[ref.name]
        return attrs.get(ref.name.lower())


class Literal:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def evaluate(self, ctx):
        return self.value

    def __repr__(self):
        return f"Literal({self.value!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and type(self.value) is type(other.value)
            and self.value == other.value
        )


class Column:
    """A column reference used inside an expression."""

    __slots__ = ("ref",)

    def __init__(self, ref):
        self.ref = ref

    def evaluate(self, ctx):
        return ctx.resolve(self.ref)

    def __repr__(self):
        return f"Column({self.ref.display_name()})"

    def __eq__(self, other):
        return isinstance(other, Column) and self.ref == other.ref


class Rnd:
    """``RND()`` — a uniform draw in [0, 1) from the engine's RNG."""

    __slots__ = ()

    def evaluate(self, ctx):
        return ctx.rng.random()

    def __repr__(self):
        return "Rnd()"

    def __eq__(self, other):
        return isinstance(other, Rnd)


class Unary:
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        if op not in ("not", "-"):
            raise QueryError(f"bad unary operator {op!r}")
        self.op = op
        self.operand = operand

    def evaluate(self, ctx):
        value = self.operand.evaluate(ctx)
        if self.op == "not":
            return not value
        return -value

    def __repr__(self):
        return f"Unary({self.op}, {self.operand!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Unary)
            and self.op == other.op
            and self.operand == other.operand
        )


class Binary:
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _BINOPS and op not in ("and", "or"):
            raise QueryError(f"bad binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, ctx):
        if self.op == "and":
            return bool(self.left.evaluate(ctx)) and bool(self.right.evaluate(ctx))
        if self.op == "or":
            return bool(self.left.evaluate(ctx)) or bool(self.right.evaluate(ctx))
        lhs = self.left.evaluate(ctx)
        rhs = self.right.evaluate(ctx)
        try:
            return _BINOPS[self.op](lhs, rhs)
        except TypeError:
            if self.op in _COMPARISONS:
                # Incomparable values (None vs int, str vs int) fail the
                # comparison rather than aborting the query.
                return False
            raise QueryError(
                f"cannot apply {self.op!r} to {type(lhs).__name__} and {type(rhs).__name__}"
            ) from None
        except ZeroDivisionError:
            raise QueryError("division by zero in WHERE clause") from None

    def __repr__(self):
        return f"Binary({self.op}, {self.left!r}, {self.right!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Binary)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )


def evaluate_where(expr, graph, bindings, rng):
    """Evaluate a WHERE expression to a boolean for one row."""
    if expr is None:
        return True
    ctx = EvalContext(graph, bindings, rng)
    return bool(expr.evaluate(ctx))


def expression_columns(expr):
    """All :class:`ColumnRef` mentioned in ``expr`` (for validation)."""
    out = []

    def walk(e):
        if isinstance(e, Column):
            out.append(e.ref)
        elif isinstance(e, Unary):
            walk(e.operand)
        elif isinstance(e, Binary):
            walk(e.left)
            walk(e.right)

    walk(expr)
    return out


__all__ = [
    "EvalContext",
    "Literal",
    "Column",
    "Rnd",
    "Unary",
    "Binary",
    "evaluate_where",
    "expression_columns",
    "ColumnRef",
]
