"""Render query ASTs back into the census language's textual syntax.

The inverse of :mod:`repro.lang.parser` for the SELECT side (pattern
definitions already know how to render themselves via
:meth:`repro.matching.pattern.Pattern.unparse`).  The contract the fuzz
harness leans on::

    parse_query(unparse_query(q)) == q

for every query the parser can produce.  WHERE expressions are emitted
fully parenthesised, so operator precedence never has to be
reconstructed; aliases and output names are emitted explicitly, so the
parser's defaulting rules cannot change the tree.

Values the lexer has no spelling for — strings containing both quote
characters or a newline, non-finite floats, keyword-named aliases —
raise :class:`~repro.errors.QueryError` instead of producing text that
would tokenize into something else.
"""

import re

from repro.errors import QueryError
from repro.lang import ast
from repro.lang import expressions as ex
from repro.lang.lexer import KEYWORDS

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_NAME_PIECE_RE = re.compile(r"(?:[A-Za-z_][A-Za-z0-9_]*|[0-9]+(?:\.[0-9]+)?)\Z")


def _ident(name, what):
    """Validate ``name`` as a bare identifier the parser will re-read."""
    if not _IDENT_RE.match(name):
        raise QueryError(f"{what} {name!r} is not a lexable identifier")
    if name.lower() in KEYWORDS:
        raise QueryError(f"{what} {name!r} collides with a keyword")
    return name


def _name(name, what):
    """Validate a possibly-hyphenated pattern/subpattern name."""
    pieces = name.split("-")
    if not pieces[0] or not _IDENT_RE.match(pieces[0]):
        raise QueryError(f"{what} {name!r} is not a lexable name")
    for piece in pieces[1:]:
        if not _NAME_PIECE_RE.match(piece):
            raise QueryError(f"{what} {name!r} is not a lexable name")
    return name


def _float_text(value):
    """A NUMBER spelling (digits, one dot, no exponent) for ``value``."""
    if value != value or value in (float("inf"), float("-inf")):
        raise QueryError(f"cannot unparse non-finite float {value!r}")
    text = repr(value)
    if "e" not in text and "E" not in text:
        return text if "." in text else text + ".0"
    # repr chose scientific notation; expand to the shortest fixed-point
    # spelling that survives the round trip.
    for precision in range(1, 340):
        text = f"{value:.{precision}f}"
        if float(text) == value:
            return text
    raise QueryError(f"cannot unparse float {value!r} without an exponent")


def _literal_text(value):
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return _float_text(value)
    if isinstance(value, str):
        if "\n" in value:
            raise QueryError("cannot unparse a string containing a newline")
        if "'" not in value:
            return f"'{value}'"
        if '"' not in value:
            return f'"{value}"'
        raise QueryError("cannot unparse a string containing both quote characters")
    raise QueryError(f"cannot unparse literal of type {type(value).__name__}")


def unparse_expression(expr):
    """Render a WHERE expression, fully parenthesised."""
    if isinstance(expr, ex.Literal):
        return _literal_text(expr.value)
    if isinstance(expr, ex.Column):
        return _column_ref(expr.ref)
    if isinstance(expr, ex.Rnd):
        return "RND()"
    if isinstance(expr, ex.Unary):
        op = "NOT " if expr.op == "not" else "-"
        return f"({op}{unparse_expression(expr.operand)})"
    if isinstance(expr, ex.Binary):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({unparse_expression(expr.left)} {op} {unparse_expression(expr.right)})"
    raise QueryError(f"cannot unparse expression node {type(expr).__name__}")


def _table(table):
    # "nodes" is the parser's own default alias for a lone table; the
    # parser consumes the token after AS unconditionally, so spelling
    # it out round-trips even though it collides with the keyword.
    if table.alias == "nodes":
        return "nodes AS nodes"
    return f"nodes AS {_ident(table.alias, 'alias')}"


def _column_ref(ref):
    if ref.alias is None:
        return _ident(ref.name, "column")
    return f"{_ident(ref.alias, 'alias')}.{_ident(ref.name, 'column')}"


def _neighborhood(hood):
    args = ", ".join(_column_ref(t) for t in hood.targets)
    if hood.kind == "subgraph":
        return f"SUBGRAPH({args}, {hood.k})"
    return f"SUBGRAPH-{hood.kind.upper()}({args}, {hood.k})"


def _select_item(item):
    if isinstance(item, ast.ColumnRef):
        return _column_ref(item)
    if isinstance(item, ast.Aggregate):
        hood = _neighborhood(item.neighborhood)
        if item.subpattern_name is None:
            call = f"COUNTP({_name(item.pattern_name, 'pattern')}, {hood})"
            default = f"countp_{item.pattern_name}"
        else:
            call = (
                f"COUNTSP({_name(item.subpattern_name, 'subpattern')}, "
                f"{_name(item.pattern_name, 'pattern')}, {hood})"
            )
            default = f"countsp_{item.subpattern_name}_{item.pattern_name}"
        if item.output_name == default and not _IDENT_RE.match(item.output_name):
            # Hyphenated pattern names yield unlexable default output
            # names; omitting AS makes the parser re-derive the same one.
            return call
        return f"{call} AS {_ident(item.output_name, 'output name')}"
    raise QueryError(f"cannot unparse select item {type(item).__name__}")


def _order_item(item):
    parts = item.key.split(".")
    if len(parts) > 2 or not all(_IDENT_RE.match(p) for p in parts):
        raise QueryError(f"ORDER BY key {item.key!r} is not a lexable key")
    direction = "ASC" if item.ascending else "DESC"
    return f"{item.key} {direction}"


def unparse_query(query):
    """Render a :class:`~repro.lang.ast.SelectQuery` back into text."""
    parts = ["SELECT "]
    parts.append(", ".join(_select_item(c) for c in query.columns))
    parts.append(" FROM ")
    parts.append(", ".join(_table(t) for t in query.tables))
    if query.where is not None:
        parts.append(" WHERE ")
        parts.append(unparse_expression(query.where))
    if query.order_by:
        parts.append(" ORDER BY ")
        parts.append(", ".join(_order_item(item) for item in query.order_by))
    if query.limit is not None:
        parts.append(f" LIMIT {query.limit}")
    return "".join(parts)


def unparse_statement(statement):
    """Render any statement ``parse_script`` can return."""
    if isinstance(statement, ast.ExplainStatement):
        prefix = "EXPLAIN ANALYZE " if statement.analyze else "EXPLAIN "
        return prefix + unparse_query(statement.query)
    if isinstance(statement, ast.SelectQuery):
        return unparse_query(statement)
    unparse = getattr(statement, "unparse", None)
    if callable(unparse):
        return unparse()
    raise QueryError(f"cannot unparse statement {type(statement).__name__}")


def unparse_script(statements):
    """Render a statement list back into a parseable script."""
    return "\n".join(f"{unparse_statement(s)};" for s in statements)


__all__ = [
    "unparse_expression",
    "unparse_query",
    "unparse_statement",
    "unparse_script",
]
