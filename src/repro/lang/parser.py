"""Recursive-descent parser for the pattern census language.

Grammar (statements may be separated by optional semicolons)::

    script      := (pattern_def | select_stmt)*
    pattern_def := PATTERN name '{' item* '}'
    item        := VARIABLE ';'                              -- node decl
                 | VARIABLE ('!')? ('-' | '->') VARIABLE ';' -- edge
                 | '[' operand cmp_op operand ']' ';'?       -- predicate
                 | SUBPATTERN name '{' (VARIABLE ';')+ '}' ';'?
    operand     := VARIABLE '.' IDENT
                 | EDGE '(' VARIABLE ',' VARIABLE ')' '.' IDENT
                 | literal

    select_stmt := SELECT select_item (',' select_item)*
                   FROM table (',' table)*
                   (WHERE expr)? (ORDER BY order_item (',' order_item)*)?
                   (LIMIT NUMBER)? ';'?
    select_item := COUNTP '(' name ',' hood ')' (AS IDENT)?
                 | COUNTSP '(' name ',' name ',' hood ')' (AS IDENT)?
                 | column_ref
    hood        := SUBGRAPH '(' column_ref ',' NUMBER ')'
                 | SUBGRAPH-INTERSECTION '(' column_ref ',' column_ref ',' NUMBER ')'
                 | SUBGRAPH-UNION '(' column_ref ',' column_ref ',' NUMBER ')'
    table       := NODES (AS IDENT)?

Pattern names may contain hyphens (``clq3-unlb``); the parser joins the
pieces back together.
"""

from repro.errors import ParseError
from repro.lang import ast
from repro.lang import expressions as ex
from repro.lang.lexer import EOF, IDENT, NUMBER, STRING, SYMBOL, VARIABLE, tokenize
from repro.matching.pattern import Pattern
from repro.matching.predicates import Comparison, Const, EdgeAttr

_CMP_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}

# Recursive descent consumes a Python stack frame per nesting level; a
# pathological input like 4000 nested parentheses would otherwise
# surface as RecursionError instead of a ParseError.
_MAX_EXPR_DEPTH = 100


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0
        self.expr_depth = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self):
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def error(self, message, tok=None):
        tok = tok or self.peek()
        raise ParseError(message, line=tok.line, column=tok.column)

    def expect_symbol(self, sym):
        tok = self.peek()
        if not tok.is_symbol(sym):
            self.error(f"expected {sym!r}, found {tok.text!r}")
        return self.advance()

    def expect_keyword(self, word):
        tok = self.peek()
        if not tok.is_keyword(word):
            self.error(f"expected {word.upper()!r}, found {tok.text!r}")
        return self.advance()

    def accept_symbol(self, sym):
        if self.peek().is_symbol(sym):
            self.advance()
            return True
        return False

    def accept_keyword(self, word):
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def at_end(self):
        return self.peek().kind == EOF

    # -- names ----------------------------------------------------------
    def parse_name(self):
        """IDENT optionally extended by '-IDENT'/'-NUMBER' pieces."""
        tok = self.peek()
        if tok.kind != IDENT:
            self.error(f"expected a name, found {tok.text!r}")
        parts = [self.advance().text]
        while self.peek().is_symbol("-") and self.peek(1).kind in (IDENT, NUMBER):
            self.advance()
            parts.append(self.advance().text)
        return "-".join(parts)

    def parse_column_ref(self):
        tok = self.peek()
        if tok.kind != IDENT:
            self.error(f"expected a column reference, found {tok.text!r}")
        first = self.advance().text
        if self.accept_symbol("."):
            second = self.peek()
            if second.kind != IDENT:
                self.error(f"expected an attribute name after '.', found {second.text!r}")
            return ast.ColumnRef(first, self.advance().text)
        return ast.ColumnRef(None, first)

    # -- script ----------------------------------------------------------
    def parse_script(self):
        statements = []
        while not self.at_end():
            if self.accept_symbol(";"):
                continue
            tok = self.peek()
            if tok.is_keyword("pattern"):
                statements.append(self.parse_pattern_def())
            elif tok.is_keyword("select"):
                statements.append(self.parse_select())
            elif tok.is_keyword("explain"):
                self.advance()
                analyze = self.accept_keyword("analyze")
                statements.append(
                    ast.ExplainStatement(self.parse_select(), analyze=analyze)
                )
            else:
                self.error(f"expected PATTERN, SELECT or EXPLAIN, found {tok.text!r}")
        return statements

    # -- pattern definitions ----------------------------------------------
    def parse_pattern_def(self):
        self.expect_keyword("pattern")
        pattern = Pattern(self.parse_name())
        self.expect_symbol("{")
        while not self.accept_symbol("}"):
            tok = self.peek()
            if tok.kind == VARIABLE:
                self._parse_pattern_item(pattern)
            elif tok.is_symbol("["):
                pattern.add_predicate(self.parse_predicate())
                self.accept_symbol(";")
            elif tok.is_keyword("subpattern"):
                self._parse_subpattern(pattern)
                self.accept_symbol(";")
            elif tok.kind == EOF:
                self.error("unterminated PATTERN block (missing '}')")
            else:
                self.error(f"unexpected {tok.text!r} inside PATTERN block")
        self.accept_symbol(";")
        return pattern

    def _parse_pattern_item(self, pattern):
        u = self.advance().text
        tok = self.peek()
        if tok.is_symbol(";"):
            self.advance()
            pattern.add_node(u)
            return
        negated = False
        if tok.is_symbol("!-") or tok.is_symbol("!->"):
            negated = True
            directed = tok.text == "!->"
            self.advance()
        elif tok.is_symbol("-") or tok.is_symbol("->"):
            directed = tok.text == "->"
            self.advance()
        elif tok.is_symbol("!"):
            # '!' immediately followed by an edge symbol (tolerated form).
            self.advance()
            arrow = self.peek()
            if arrow.is_symbol("-") or arrow.is_symbol("->"):
                negated = True
                directed = arrow.text == "->"
                self.advance()
            else:
                self.error(f"expected '-' or '->' after '!', found {arrow.text!r}")
        else:
            self.error(f"expected ';', '-', '->', '!-' or '!->', found {tok.text!r}")
        vtok = self.peek()
        if vtok.kind != VARIABLE:
            self.error(f"expected a variable, found {vtok.text!r}")
        v = self.advance().text
        self.expect_symbol(";")
        pattern.add_edge(u, v, directed=directed, negated=negated)

    def _parse_subpattern(self, pattern):
        self.expect_keyword("subpattern")
        name = self.parse_name()
        self.expect_symbol("{")
        members = []
        while not self.accept_symbol("}"):
            tok = self.peek()
            if tok.kind != VARIABLE:
                self.error(f"expected a variable inside SUBPATTERN, found {tok.text!r}")
            members.append(self.advance().text)
            self.accept_symbol(";")
        pattern.add_subpattern(name, members)

    def parse_predicate(self):
        self.expect_symbol("[")
        lhs = self.parse_pattern_operand()
        op_tok = self.peek()
        if not (op_tok.kind == SYMBOL and op_tok.text in _CMP_OPS):
            self.error(f"expected a comparison operator, found {op_tok.text!r}")
        op = self.advance().text
        rhs = self.parse_pattern_operand()
        self.expect_symbol("]")
        return Comparison(lhs, op, rhs)

    def parse_pattern_operand(self):
        tok = self.peek()
        if tok.kind == VARIABLE:
            var = self.advance().text
            self.expect_symbol(".")
            attr_tok = self.peek()
            if attr_tok.kind != IDENT:
                self.error(f"expected an attribute name, found {attr_tok.text!r}")
            from repro.matching.predicates import Attr

            return Attr(var, self.advance().text)
        if tok.is_keyword("edge"):
            self.advance()
            self.expect_symbol("(")
            u_tok = self.peek()
            if u_tok.kind != VARIABLE:
                self.error(f"expected a variable, found {u_tok.text!r}")
            u = self.advance().text
            self.expect_symbol(",")
            v_tok = self.peek()
            if v_tok.kind != VARIABLE:
                self.error(f"expected a variable, found {v_tok.text!r}")
            v = self.advance().text
            self.expect_symbol(")")
            self.expect_symbol(".")
            attr_tok = self.peek()
            if attr_tok.kind != IDENT:
                self.error(f"expected an attribute name, found {attr_tok.text!r}")
            return EdgeAttr(u, v, self.advance().text)
        return Const(self.parse_literal())

    def parse_literal(self):
        tok = self.peek()
        if tok.kind == NUMBER:
            self.advance()
            return float(tok.text) if "." in tok.text else int(tok.text)
        if tok.kind == STRING:
            self.advance()
            return tok.text
        if tok.is_keyword("true"):
            self.advance()
            return True
        if tok.is_keyword("false"):
            self.advance()
            return False
        if tok.is_keyword("null"):
            self.advance()
            return None
        if tok.is_symbol("-") and self.peek(1).kind == NUMBER:
            self.advance()
            num = self.advance().text
            return -(float(num) if "." in num else int(num))
        self.error(f"expected a literal, found {tok.text!r}")

    # -- SELECT ------------------------------------------------------------
    def parse_select(self):
        self.expect_keyword("select")
        columns = [self.parse_select_item()]
        while self.accept_symbol(","):
            columns.append(self.parse_select_item())
        self.expect_keyword("from")
        tables = [self.parse_table()]
        while self.accept_symbol(","):
            tables.append(self.parse_table())
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        order_by = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self.parse_order_item())
        limit = None
        if self.accept_keyword("limit"):
            tok = self.peek()
            if tok.kind != NUMBER or "." in tok.text:
                self.error(f"expected an integer after LIMIT, found {tok.text!r}")
            limit = int(self.advance().text)
        self.accept_symbol(";")
        self._fill_default_aliases(tables)
        return ast.SelectQuery(columns, tables, where=where, order_by=order_by, limit=limit)

    def _fill_default_aliases(self, tables):
        if len(tables) == 1 and tables[0].alias is None:
            tables[0].alias = "nodes"
        names = [t.alias for t in tables]
        if None in names or len(set(names)) != len(names):
            self.error("pair queries require distinct table aliases (e.g. AS n1, AS n2)")

    def parse_table(self):
        self.expect_keyword("nodes")
        alias = None
        if self.accept_keyword("as"):
            tok = self.peek()
            if tok.kind != IDENT:
                self.error(f"expected an alias, found {tok.text!r}")
            alias = self.advance().text
        return ast.TableRef(alias)

    def parse_select_item(self):
        tok = self.peek()
        if tok.is_keyword("countp"):
            self.advance()
            self.expect_symbol("(")
            pattern_name = self.parse_name()
            self.expect_symbol(",")
            hood = self.parse_neighborhood()
            self.expect_symbol(")")
            output = self._parse_optional_as()
            return ast.Aggregate(pattern_name, hood, output_name=output)
        if tok.is_keyword("countsp"):
            self.advance()
            self.expect_symbol("(")
            sub_name = self.parse_name()
            self.expect_symbol(",")
            pattern_name = self.parse_name()
            self.expect_symbol(",")
            hood = self.parse_neighborhood()
            self.expect_symbol(")")
            output = self._parse_optional_as()
            return ast.Aggregate(pattern_name, hood, subpattern_name=sub_name, output_name=output)
        return self.parse_column_ref()

    def _parse_optional_as(self):
        if self.accept_keyword("as"):
            tok = self.peek()
            if tok.kind != IDENT:
                self.error(f"expected an output name, found {tok.text!r}")
            return self.advance().text
        return None

    def parse_neighborhood(self):
        tok = self.peek()
        lowered = tok.lowered
        if lowered == "subgraph":
            self.advance()
            self.expect_symbol("(")
            target = self.parse_column_ref()
            self.expect_symbol(",")
            k = self._parse_radius()
            self.expect_symbol(")")
            return ast.Neighborhood("subgraph", [target], k)
        if lowered in ("subgraph-intersection", "subgraph-union"):
            self.advance()
            kind = "intersection" if lowered.endswith("intersection") else "union"
            self.expect_symbol("(")
            t1 = self.parse_column_ref()
            self.expect_symbol(",")
            t2 = self.parse_column_ref()
            self.expect_symbol(",")
            k = self._parse_radius()
            self.expect_symbol(")")
            return ast.Neighborhood(kind, [t1, t2], k)
        self.error(
            f"expected SUBGRAPH, SUBGRAPH-INTERSECTION or SUBGRAPH-UNION, found {tok.text!r}"
        )

    def _parse_radius(self):
        tok = self.peek()
        if tok.kind != NUMBER or "." in tok.text:
            self.error(f"expected an integer radius, found {tok.text!r}")
        return int(self.advance().text)

    def parse_order_item(self):
        tok = self.peek()
        if tok.kind != IDENT:
            self.error(f"expected a column name in ORDER BY, found {tok.text!r}")
        key = self.advance().text
        if self.accept_symbol("."):
            attr = self.peek()
            if attr.kind != IDENT:
                self.error(f"expected an attribute after '.', found {attr.text!r}")
            key = f"{key}.{self.advance().text}"
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        elif self.accept_keyword("asc"):
            ascending = True
        return ast.OrderItem(key, ascending)

    # -- WHERE expressions ---------------------------------------------------
    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = ex.Binary("or", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = ex.Binary("and", left, self._parse_not())
        return left

    def _nest(self):
        self.expr_depth += 1
        if self.expr_depth > _MAX_EXPR_DEPTH:
            self.error("expression nesting too deep")

    def _parse_not(self):
        if self.accept_keyword("not"):
            self._nest()
            try:
                return ex.Unary("not", self._parse_not())
            finally:
                self.expr_depth -= 1
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        tok = self.peek()
        if tok.kind == SYMBOL and tok.text in _CMP_OPS:
            op = self.advance().text
            right = self._parse_additive()
            return ex.Binary(op, left, right)
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            tok = self.peek()
            if tok.is_symbol("+") or tok.is_symbol("-"):
                op = self.advance().text
                left = ex.Binary(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.is_symbol("*") or tok.is_symbol("/") or tok.is_symbol("%"):
                op = self.advance().text
                left = ex.Binary(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        if self.accept_symbol("-"):
            self._nest()
            try:
                return ex.Unary("-", self._parse_unary())
            finally:
                self.expr_depth -= 1
        return self._parse_primary()

    def _parse_primary(self):
        tok = self.peek()
        if tok.kind == NUMBER:
            self.advance()
            value = float(tok.text) if "." in tok.text else int(tok.text)
            return ex.Literal(value)
        if tok.kind == STRING:
            self.advance()
            return ex.Literal(tok.text)
        if tok.is_keyword("true"):
            self.advance()
            return ex.Literal(True)
        if tok.is_keyword("false"):
            self.advance()
            return ex.Literal(False)
        if tok.is_keyword("null"):
            self.advance()
            return ex.Literal(None)
        if tok.is_keyword("rnd"):
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol(")")
            return ex.Rnd()
        if tok.is_symbol("("):
            self.advance()
            self._nest()
            try:
                inner = self.parse_expression()
            finally:
                self.expr_depth -= 1
            self.expect_symbol(")")
            return inner
        if tok.kind == IDENT:
            return ex.Column(self.parse_column_ref())
        self.error(f"unexpected {tok.text!r} in expression")


def parse_script(text):
    """Parse a sequence of PATTERN and SELECT statements."""
    return _Parser(tokenize(text)).parse_script()


def parse_pattern(text):
    """Parse exactly one PATTERN definition."""
    parser = _Parser(tokenize(text))
    pattern = parser.parse_pattern_def()
    if not parser.at_end():
        parser.error("trailing input after PATTERN definition")
    return pattern


def parse_query(text):
    """Parse exactly one SELECT statement."""
    parser = _Parser(tokenize(text))
    query = parser.parse_select()
    if not parser.at_end():
        parser.error("trailing input after SELECT statement")
    return query
