"""Named pattern registry and the paper's standard patterns.

:class:`PatternCatalog` is the namespace SELECT statements resolve
pattern names against.  :func:`standard_patterns` builds the query
patterns of Figure 3 (labeled triangle ``clq3``, 4-clique ``clq4``,
square ``sqr``, plus paths and stars) together with their unlabeled
variants (``*-unlb``) and the Table I example patterns.
"""

from repro.errors import QueryError
from repro.matching.pattern import Pattern


class PatternCatalog:
    """A name -> :class:`Pattern` registry."""

    def __init__(self, patterns=()):
        self._patterns = {}
        #: bumped on every (re)registration; caches key on it so a
        #: redefined pattern invalidates dependent results.
        self.version = 0
        for p in patterns:
            self.register(p)

    def register(self, pattern, replace=True):
        if not replace and pattern.name in self._patterns:
            raise QueryError(f"pattern {pattern.name!r} is already defined")
        pattern.validate()
        self._patterns[pattern.name] = pattern
        self.version += 1
        return pattern

    def get(self, name):
        try:
            return self._patterns[name]
        except KeyError:
            raise QueryError(
                f"unknown pattern {name!r}; defined patterns: {sorted(self._patterns)}"
            ) from None

    def __contains__(self, name):
        return name in self._patterns

    def names(self):
        return sorted(self._patterns)

    def __len__(self):
        return len(self._patterns)


def _clique(name, labels):
    p = Pattern(name)
    variables = [chr(ord("A") + i) for i in range(len(labels))]
    for var, label in zip(variables, labels):
        p.add_node(var, label=label)
    for i in range(len(variables)):
        for j in range(i + 1, len(variables)):
            p.add_edge(variables[i], variables[j])
    return p


def _cycle(name, labels):
    p = Pattern(name)
    variables = [chr(ord("A") + i) for i in range(len(labels))]
    for var, label in zip(variables, labels):
        p.add_node(var, label=label)
    for i, var in enumerate(variables):
        p.add_edge(var, variables[(i + 1) % len(variables)])
    return p


def _path(name, labels):
    p = Pattern(name)
    variables = [chr(ord("A") + i) for i in range(len(labels))]
    for var, label in zip(variables, labels):
        p.add_node(var, label=label)
    for a, b in zip(variables, variables[1:]):
        p.add_edge(a, b)
    return p


def _star(name, leaf_labels, hub_label):
    p = Pattern(name)
    p.add_node("A", label=hub_label)
    for i, label in enumerate(leaf_labels):
        leaf = chr(ord("B") + i)
        p.add_node(leaf, label=label)
        p.add_edge("A", leaf)
    return p


def standard_patterns():
    """The Figure 3 query patterns + unlabeled variants + Table I basics.

    Labeled patterns use the paper's 4-letter label alphabet A–D.
    Returns a fresh list of :class:`Pattern` objects.
    """
    patterns = [
        _clique("clq3", ["A", "B", "C"]),
        _clique("clq4", ["A", "B", "C", "D"]),
        _cycle("sqr", ["A", "B", "C", "D"]),
        _path("path2", ["A", "B", "C"]),
        _path("path3", ["A", "B", "C", "D"]),
        _star("star3", ["B", "C", "D"], "A"),
        _clique("clq3-unlb", [None, None, None]),
        _clique("clq4-unlb", [None, None, None, None]),
        _cycle("sqr-unlb", [None, None, None, None]),
        _path("path2-unlb", [None, None, None]),
        _star("star3-unlb", [None, None, None], None),
    ]

    single_node = Pattern("single_node")
    single_node.add_node("A")
    patterns.append(single_node)

    single_edge = Pattern("single_edge")
    single_edge.add_edge("A", "B")
    patterns.append(single_edge)

    square = Pattern("square")
    square.add_edge("A", "B")
    square.add_edge("B", "C")
    square.add_edge("C", "D")
    square.add_edge("D", "A")
    patterns.append(square)

    return patterns


def standard_catalog():
    """A fresh catalog preloaded with :func:`standard_patterns`."""
    return PatternCatalog(standard_patterns())
