"""The declarative pattern census language (Section II).

Two statement families, matching the paper's Table I:

- ``PATTERN name { ... }`` — defines a named pattern graph (edges with
  optional direction and negation, bracketed attribute predicates,
  ``SUBPATTERN`` blocks),
- ``SELECT ... FROM nodes [AS n1[, nodes AS n2]] [WHERE ...]`` — runs a
  census with the ``COUNTP`` / ``COUNTSP`` aggregates over ``SUBGRAPH``,
  ``SUBGRAPH-INTERSECTION`` or ``SUBGRAPH-UNION`` neighborhoods.
  ``ORDER BY`` / ``LIMIT`` are supported as an extension (the paper
  lists top-k evaluation as future work).

Use :func:`parse_script` for mixed statement sequences,
:func:`parse_pattern` / :func:`parse_query` for single statements, and
:data:`repro.lang.catalog.standard_patterns` for the Figure 3 patterns.
"""

from repro.lang.ast import (
    Aggregate,
    ColumnRef,
    Neighborhood,
    OrderItem,
    SelectQuery,
    TableRef,
)
from repro.lang.catalog import PatternCatalog, standard_patterns
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_pattern, parse_query, parse_script
from repro.lang.unparse import (
    unparse_expression,
    unparse_query,
    unparse_script,
    unparse_statement,
)

__all__ = [
    "tokenize",
    "Token",
    "parse_pattern",
    "parse_query",
    "parse_script",
    "unparse_expression",
    "unparse_query",
    "unparse_script",
    "unparse_statement",
    "SelectQuery",
    "TableRef",
    "ColumnRef",
    "Aggregate",
    "Neighborhood",
    "OrderItem",
    "PatternCatalog",
    "standard_patterns",
]
