"""AST node types for census SQL queries.

Pattern definitions parse directly into
:class:`repro.matching.pattern.Pattern` (the pattern object *is* the
AST); the classes here model the SELECT side.
"""

from repro.errors import QueryError


class TableRef:
    """``nodes [AS alias]`` — one scan of the logical nodes relation."""

    __slots__ = ("alias",)

    def __init__(self, alias):
        self.alias = alias

    def __repr__(self):
        return f"TableRef(nodes AS {self.alias})"

    def __eq__(self, other):
        return isinstance(other, TableRef) and self.alias == other.alias


class ColumnRef:
    """``[alias.]name`` — a node id (``ID``) or node attribute reference."""

    __slots__ = ("alias", "name")

    def __init__(self, alias, name):
        self.alias = alias  # None means "the only table"
        self.name = name

    @property
    def is_id(self):
        return self.name.lower() == "id"

    def display_name(self):
        return f"{self.alias}.{self.name}" if self.alias else self.name

    def __repr__(self):
        return f"ColumnRef({self.display_name()})"

    def __eq__(self, other):
        return (
            isinstance(other, ColumnRef)
            and self.alias == other.alias
            and self.name.lower() == other.name.lower()
        )

    def __hash__(self):
        return hash((self.alias, self.name.lower()))


class Neighborhood:
    """A search neighborhood: SUBGRAPH / -INTERSECTION / -UNION.

    ``kind`` is 'subgraph', 'intersection' or 'union'; ``targets`` is a
    tuple of one or two :class:`ColumnRef` (must be ID references);
    ``k`` the radius.
    """

    __slots__ = ("kind", "targets", "k")

    def __init__(self, kind, targets, k):
        if kind not in ("subgraph", "intersection", "union"):
            raise QueryError(f"bad neighborhood kind {kind!r}")
        want = 1 if kind == "subgraph" else 2
        if len(targets) != want:
            raise QueryError(f"{kind} neighborhood takes {want} node argument(s)")
        for t in targets:
            if not t.is_id:
                raise QueryError("neighborhood arguments must be ID references")
        if k < 0:
            raise QueryError("neighborhood radius must be >= 0")
        self.kind = kind
        self.targets = tuple(targets)
        self.k = k

    def __repr__(self):
        inner = ", ".join(t.display_name() for t in self.targets)
        return f"Neighborhood({self.kind}, {inner}, k={self.k})"

    def __eq__(self, other):
        return (
            isinstance(other, Neighborhood)
            and (self.kind, self.targets, self.k) == (other.kind, other.targets, other.k)
        )


class Aggregate:
    """``COUNTP(pattern, S)`` or ``COUNTSP(sub, pattern, S)``."""

    __slots__ = ("pattern_name", "subpattern_name", "neighborhood", "output_name")

    def __init__(self, pattern_name, neighborhood, subpattern_name=None, output_name=None):
        self.pattern_name = pattern_name
        self.subpattern_name = subpattern_name
        self.neighborhood = neighborhood
        if output_name is None:
            if subpattern_name is None:
                output_name = f"countp_{pattern_name}"
            else:
                output_name = f"countsp_{subpattern_name}_{pattern_name}"
        self.output_name = output_name

    def __repr__(self):
        if self.subpattern_name is None:
            return f"Aggregate(COUNTP({self.pattern_name}, {self.neighborhood!r}))"
        return (
            f"Aggregate(COUNTSP({self.subpattern_name}, {self.pattern_name}, "
            f"{self.neighborhood!r}))"
        )

    def __eq__(self, other):
        return (
            isinstance(other, Aggregate)
            and self.pattern_name == other.pattern_name
            and self.subpattern_name == other.subpattern_name
            and self.neighborhood == other.neighborhood
            and self.output_name == other.output_name
        )


class OrderItem:
    """One ORDER BY key: a column name or aggregate output name."""

    __slots__ = ("key", "ascending")

    def __init__(self, key, ascending=True):
        self.key = key
        self.ascending = ascending

    def __repr__(self):
        direction = "ASC" if self.ascending else "DESC"
        return f"OrderItem({self.key} {direction})"

    def __eq__(self, other):
        return (
            isinstance(other, OrderItem)
            and self.key.lower() == other.key.lower()
            and self.ascending == other.ascending
        )


class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>`` — describe the plan.

    With ``analyze=True`` the statement also *executes* the query and
    annotates the plan with measured wall-times and operation counts.
    """

    __slots__ = ("query", "analyze")

    def __init__(self, query, analyze=False):
        self.query = query
        self.analyze = analyze

    def __repr__(self):
        if self.analyze:
            return f"ExplainAnalyze({self.query!r})"
        return f"Explain({self.query!r})"

    def __eq__(self, other):
        return (
            isinstance(other, ExplainStatement)
            and self.analyze == other.analyze
            and self.query == other.query
        )


class SelectQuery:
    """A parsed census SELECT statement."""

    __slots__ = ("columns", "tables", "where", "order_by", "limit")

    def __init__(self, columns, tables, where=None, order_by=(), limit=None):
        if not tables:
            raise QueryError("a query needs at least one table")
        if len(tables) > 2:
            raise QueryError("at most two node scans (a pair query) are supported")
        self.columns = list(columns)
        self.tables = list(tables)
        self.where = where
        self.order_by = list(order_by)
        self.limit = limit

    @property
    def is_pair_query(self):
        return len(self.tables) == 2

    def aggregates(self):
        return [c for c in self.columns if isinstance(c, Aggregate)]

    def plain_columns(self):
        return [c for c in self.columns if isinstance(c, ColumnRef)]

    def __repr__(self):
        return (
            f"SelectQuery(columns={self.columns!r}, tables={self.tables!r}, "
            f"where={self.where!r}, order_by={self.order_by!r}, limit={self.limit})"
        )

    def __eq__(self, other):
        return (
            isinstance(other, SelectQuery)
            and self.columns == other.columns
            and self.tables == other.tables
            and self.where == other.where
            and self.order_by == other.order_by
            and self.limit == other.limit
        )
