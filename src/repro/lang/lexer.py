"""Tokenizer for the pattern census language.

Hand-rolled single-pass lexer producing :class:`Token` objects with
1-based line/column positions for error reporting.  Keywords are
case-insensitive; identifiers keep their original spelling.  The
compound neighborhood names ``SUBGRAPH-INTERSECTION`` and
``SUBGRAPH-UNION`` are folded into single identifier tokens here so the
parser never has to disambiguate their hyphens from minus/edge syntax.
"""

from repro.errors import ParseError

# Token kinds.
IDENT = "IDENT"
VARIABLE = "VARIABLE"  # ?A
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
EOF = "EOF"

KEYWORDS = {
    "pattern", "subpattern", "select", "from", "where", "as",
    "and", "or", "not", "order", "by", "limit", "asc", "desc",
    "countp", "countsp", "subgraph", "rnd", "edge",
    "true", "false", "null", "nodes", "explain", "analyze",
}

_COMPOUND_SUFFIXES = {"intersection", "union"}

_TWO_CHAR_SYMBOLS = ("->", "!-", "<=", ">=", "!=", "<>", "==")
_ONE_CHAR_SYMBOLS = set("(){}[];,.*-+/<>=!%")


class Token:
    """A lexical token: ``kind``, source ``text``, and position."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind, text, line, column):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    @property
    def lowered(self):
        return self.text.lower()

    def is_keyword(self, word):
        return self.kind == IDENT and self.text.lower() == word

    def is_symbol(self, sym):
        return self.kind == SYMBOL and self.text == sym

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(text):
    """Tokenize ``text`` into a list of tokens ending with an EOF token."""
    tokens = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def error(msg):
        raise ParseError(msg, line=line, column=col)

    while i < n:
        ch = text[i]
        # Whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Comments: -- to end of line (SQL style) and # to end of line.
        if ch == "#" or text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        # Variables: ?Name
        if ch == "?":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                error("expected a variable name after '?'")
            tokens.append(Token(VARIABLE, text[i + 1 : j], start_line, start_col))
            col += j - i
            i = j
            continue
        # Strings
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    error("unterminated string literal")
                buf.append(text[j])
                j += 1
            if j >= n:
                error("unterminated string literal")
            tokens.append(Token(STRING, "".join(buf), start_line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        # Numbers (unsigned; unary minus handled by the parser)
        if ch.isdigit():
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # Don't swallow a trailing dot (attribute access).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(NUMBER, text[i:j], start_line, start_col))
            col += j - i
            i = j
            continue
        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            # Fold SUBGRAPH-INTERSECTION / SUBGRAPH-UNION.
            if word.lower() == "subgraph" and j < n and text[j] == "-":
                j2 = j + 1
                while j2 < n and (text[j2].isalnum() or text[j2] == "_"):
                    j2 += 1
                suffix = text[j + 1 : j2]
                if suffix.lower() in _COMPOUND_SUFFIXES:
                    word = f"{word}-{suffix}"
                    j = j2
            tokens.append(Token(IDENT, word, start_line, start_col))
            col += j - i
            i = j
            continue
        # Symbols (two-char first)
        two = text[i : i + 2]
        if two in _TWO_CHAR_SYMBOLS:
            if two == "!-" and text[i : i + 3] == "!->":
                tokens.append(Token(SYMBOL, "!->", start_line, start_col))
                i += 3
                col += 3
                continue
            tokens.append(Token(SYMBOL, two, start_line, start_col))
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            tokens.append(Token(SYMBOL, ch, start_line, start_col))
            i += 1
            col += 1
            continue
        error(f"unexpected character {ch!r}")

    tokens.append(Token(EOF, "", line, col))
    return tokens
