"""Resource-governed execution: budgets, degradation, fault injection.

The production-hardening layer around the census algorithms.  Three
pieces:

- :mod:`repro.exec.budget` — :class:`ExecutionBudget`, an ambient
  wall-clock / work / result-size allowance checked cooperatively at
  algorithm loop boundaries (errors in :mod:`repro.errors`:
  :class:`~repro.errors.BudgetExceeded`,
  :class:`~repro.errors.Cancelled`,
  :class:`~repro.errors.WorkerCrashed`);
- :mod:`repro.exec.governor` — :func:`governed_census`, the
  catch-and-degrade policy that falls back from exact counting to the
  sampling estimator and marks results partial;
- :mod:`repro.exec.faults` — deterministic fault injection (delays,
  exceptions, worker deaths) at named sites, so the retry and timeout
  paths are testable instead of theoretical.
"""

from repro.errors import BudgetExceeded, Cancelled, ExecutionError, WorkerCrashed
from repro.exec.budget import (
    SPEC_KEYS,
    ExecutionBudget,
    activate_budget,
    current_budget,
    validate_spec,
)
from repro.exec.faults import (
    SITES,
    Fault,
    FaultPlan,
    active_plan,
    fault_point,
    install_faults,
    mark_worker_process,
)
from repro.exec.governor import (
    DEFAULT_DEGRADE_GRACE,
    DEFAULT_DEGRADE_SAMPLE,
    CensusOutcome,
    governed_census,
)

__all__ = [
    "ExecutionBudget",
    "activate_budget",
    "current_budget",
    "validate_spec",
    "SPEC_KEYS",
    "ExecutionError",
    "BudgetExceeded",
    "Cancelled",
    "WorkerCrashed",
    "CensusOutcome",
    "governed_census",
    "DEFAULT_DEGRADE_SAMPLE",
    "DEFAULT_DEGRADE_GRACE",
    "Fault",
    "FaultPlan",
    "SITES",
    "fault_point",
    "install_faults",
    "active_plan",
    "mark_worker_process",
]
