"""Budget-governed census execution with a degradation policy.

:func:`governed_census` is the engine's entry point for a ``COUNTP`` /
``COUNTSP`` aggregate: it runs the exact census under the ambient
:class:`~repro.exec.budget.ExecutionBudget` and, when the budget is
exhausted mid-run, optionally *degrades* instead of failing — falling
back to the sampling estimator of :mod:`repro.census.approx` under a
bounded grace budget and marking the outcome partial.  Callers surface
the partial flag on :class:`repro.query.result.ResultTable` and in
``EXPLAIN ANALYZE``.

The exact-to-approximate fallback is honest about what it can promise:
the estimator still needs one matching pass, so the grace budget bounds
it too; if even sampling cannot finish, the *original* budget error
propagates.  (For top-k workloads, :func:`repro.census.topk.census_topk`
is the other existing degradation target — it shares the same ambient
budget checks, so callers can apply the same catch-and-degrade policy
around it.)
"""

from repro.errors import BudgetExceeded
from repro.exec.budget import ExecutionBudget, activate_budget, current_budget
from repro.obs import current_obs

#: Matches sampled by the approximate fallback.
DEFAULT_DEGRADE_SAMPLE = 200

#: Grace multiplier: the fallback gets ``grace * timeout`` wall-clock.
DEFAULT_DEGRADE_GRACE = 4.0

#: Floor on the grace window, seconds.  A 50 ms deadline grants the
#: fallback 200 ms, which cannot even fit one matching pass on midsize
#: graphs; degradation under tiny deadlines is only useful if the
#: estimator gets a fighting chance.
GRACE_FLOOR_SECONDS = 1.0


class CensusOutcome:
    """Result of a governed census: counts plus partiality metadata."""

    __slots__ = ("counts", "partial", "degraded", "note")

    def __init__(self, counts, partial=False, degraded=False, note=None):
        self.counts = counts
        self.partial = partial
        self.degraded = degraded
        self.note = note

    def __repr__(self):
        flag = " partial" if self.partial else ""
        return f"<CensusOutcome rows={len(self.counts)}{flag}>"


def governed_census(graph, pattern, k, focal_nodes=None, subpattern=None,
                    algorithm="auto", matcher="cn", workers=1, degrade=False,
                    degrade_sample=DEFAULT_DEGRADE_SAMPLE,
                    degrade_grace=DEFAULT_DEGRADE_GRACE, seed=0):
    """Run a census under the ambient budget, degrading when allowed.

    Returns a :class:`CensusOutcome`.  Without an ambient budget this is
    exactly ``repro.census.census``.  With one, a
    :class:`~repro.errors.BudgetExceeded` from the exact run either
    propagates (``degrade=False``) or triggers the sampling fallback
    (``degrade=True``): estimate counts from ``degrade_sample`` sampled
    matches under a fresh grace budget of ``degrade_grace`` times the
    original timeout, returned with ``partial=True``.
    """
    from repro.census import census

    obs = current_obs()
    budget = current_budget()
    try:
        counts = census(
            graph, pattern, k, focal_nodes=focal_nodes, subpattern=subpattern,
            algorithm=algorithm, matcher=matcher, workers=workers,
        )
        return CensusOutcome(counts)
    except BudgetExceeded as exc:
        if obs.enabled:
            obs.add(f"exec.budget.{exc.reason}_exceeded", 1)
        if not degrade:
            raise
        return _degrade_to_approx(
            graph, pattern, k, focal_nodes, subpattern, matcher,
            degrade_sample, degrade_grace, seed, budget, exc, obs,
        )


def _degrade_to_approx(graph, pattern, k, focal_nodes, subpattern, matcher,
                       sample, grace, seed, budget, original, obs):
    from repro.census.approx import approximate_census

    grace_budget = None
    if budget is not None and budget.timeout is not None:
        grace_budget = ExecutionBudget(
            timeout=max(grace * budget.timeout, GRACE_FLOOR_SECONDS)
        )
    try:
        # The exhausted primary budget must not govern the fallback;
        # activate the grace budget (or nothing) in its place.
        with activate_budget(grace_budget):
            estimates = approximate_census(
                graph, pattern, k, sample, focal_nodes=focal_nodes,
                subpattern=subpattern, matcher=matcher, seed=seed,
            )
    except BudgetExceeded:
        # Even sampling could not finish: report the primary failure.
        raise original from None
    if obs.enabled:
        obs.add("exec.degraded", 1)
    note = (
        f"approximate: {original.reason} budget exceeded, "
        f"estimated from up to {sample} sampled matches"
    )
    return CensusOutcome(estimates, partial=True, degraded=True, note=note)
