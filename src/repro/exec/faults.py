"""Deterministic fault injection at named execution sites.

Retry and timeout behavior is only trustworthy if the failure paths are
exercised on purpose.  This module plants *fault points* at the places
failures actually happen in production — matcher expansion, BFS
frontier processing, parallel chunk boundaries — and lets tests arm
them with deterministic faults:

- ``delay`` — sleep a fixed duration (drives deadline expiry),
- ``raise`` — raise a picklable exception,
- ``die``   — hard-kill the current *process-pool worker* via
  ``os._exit`` (exercises ``BrokenProcessPool`` recovery).

Sites (see :data:`SITES`):

- ``match.expand`` — once per extension step of each matcher's
  backtracking loop;
- ``census.bfs`` — once per focal-node neighborhood expansion (or per
  traversal wave for the pattern-driven algorithms);
- ``parallel.chunk`` — at the start of every parallel census chunk, in
  whichever executor runs it.

A :class:`FaultPlan` is armed with :func:`install_faults`; each
:class:`Fault` names its site, the 1-based hit index at which it fires
(``at``; ``None`` fires on every hit), and a ``scope``: ``"any"``
(default) or ``"worker"`` — worker-scoped faults only fire inside a
process-pool worker, so a ``die`` fault kills workers but never the
parent retrying the chunk serially.  Hit counters are per process and
deliberately excluded from pickling: a plan shipped to a worker starts
counting from zero there, which makes "every worker dies on its first
chunk" expressible and deterministic.

The disarmed fast path is a single module-global ``None`` check —
``fault_point`` costs nothing measurable in production.
"""

import os
import time

_PLAN = None
_IN_WORKER = False

#: The named fault sites planted across the execution layers.
SITES = ("match.expand", "census.bfs", "parallel.chunk")


class Fault:
    """One armed fault: where, when, and what to do."""

    __slots__ = ("site", "action", "at", "delay", "exc", "scope")

    def __init__(self, site, action, at=1, delay=0.0, exc=None, scope="any"):
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}; expected one of {SITES}")
        if action not in ("delay", "raise", "die"):
            raise ValueError(f"unknown fault action {action!r}")
        if scope not in ("any", "worker"):
            raise ValueError(f"unknown fault scope {scope!r}")
        if action == "raise" and exc is None:
            exc = RuntimeError(f"injected fault at {site}")
        self.site = site
        self.action = action
        self.at = at  # 1-based hit index; None -> every hit
        self.delay = delay
        self.exc = exc
        self.scope = scope

    def __repr__(self):
        when = "always" if self.at is None else f"at={self.at}"
        return f"<Fault {self.site} {self.action} {when} scope={self.scope}>"


class FaultPlan:
    """A set of faults plus per-process hit counters."""

    def __init__(self, faults=()):
        self.faults = list(faults)
        self.hits = {}
        self.fired = 0

    def add(self, *args, **kwargs):
        self.faults.append(Fault(*args, **kwargs))
        return self

    def hit(self, site, in_worker):
        """Record one hit of ``site`` and perform any armed fault."""
        count = self.hits.get(site, 0) + 1
        self.hits[site] = count
        for fault in self.faults:
            if fault.site != site:
                continue
            if fault.at is not None and fault.at != count:
                continue
            if fault.scope == "worker" and not in_worker:
                continue
            self.fired += 1
            _obs_count(fault)
            if fault.action == "delay":
                time.sleep(fault.delay)
            elif fault.action == "raise":
                raise fault.exc
            elif fault.action == "die":
                # A real worker crash: no exception propagation, no
                # cleanup — the pool sees the process vanish.
                os._exit(86)

    def __getstate__(self):
        # Hit counters are per process: a plan shipped to a pool worker
        # starts fresh there.
        return {"faults": self.faults}

    def __setstate__(self, state):
        self.faults = state["faults"]
        self.hits = {}
        self.fired = 0

    def __repr__(self):
        return f"<FaultPlan {self.faults!r} hits={self.hits}>"


def _obs_count(fault):
    from repro.obs import current_obs

    obs = current_obs()
    if obs.enabled:
        obs.add("exec.faults.injected", 1)
        obs.add(f"exec.faults.{fault.action}", 1)


class install_faults:
    """Context manager arming ``plan`` for the current process.

    The plan is process-global (not a contextvar): thread-pool chunks
    must see the same armed plan as the parent, and tests are the only
    intended user.  ``install_faults(None)`` disarms.
    """

    __slots__ = ("_plan", "_prev")

    def __init__(self, plan):
        self._plan = plan
        self._prev = None

    def __enter__(self):
        global _PLAN
        self._prev = _PLAN
        _PLAN = self._plan
        return self._plan

    def __exit__(self, *exc):
        global _PLAN
        _PLAN = self._prev
        return False


def active_plan():
    """The armed :class:`FaultPlan`, or ``None``."""
    return _PLAN


def arm_process(plan):
    """Arm ``plan`` for the lifetime of this process, no scoping.

    Pool initializers use this to re-arm a pickled plan inside a fresh
    worker; the worker exits with the pool, so nothing needs unwinding.
    """
    global _PLAN
    _PLAN = plan


def mark_worker_process(flag=True):
    """Tag this process as a pool worker (set by the pool initializer);
    worker-scoped faults fire only where this flag is set."""
    global _IN_WORKER
    _IN_WORKER = flag


def fault_point(site):
    """Hit the named site; no-op unless a plan is armed."""
    if _PLAN is not None:
        _PLAN.hit(site, _IN_WORKER)
