"""Execution budgets: cooperative resource governance for census runs.

An :class:`ExecutionBudget` bounds one census/matching run along three
independent axes:

- **wall-clock deadline** (``timeout`` seconds from activation),
- **work budget** (``max_ops`` cooperative "operations" — candidate
  scans, binding attempts, BFS layer expansions, queue pops), and
- **result-size cap** (``max_results`` matches/rows materialized).

Enforcement is *cooperative*: the algorithm hot loops call
:meth:`ExecutionBudget.tick` (work + deadline) and
:meth:`ExecutionBudget.count_result` at their loop boundaries, and the
budget raises :class:`repro.errors.BudgetExceeded` (or
:class:`repro.errors.Cancelled` after :meth:`ExecutionBudget.cancel`)
the moment a limit is crossed.  Loop boundaries are chosen so that the
interval between consecutive checks is small relative to any realistic
deadline — one focal node, one BFS layer, one candidate binding — which
is what bounds termination latency to a small multiple of the deadline.

The ambient-budget protocol mirrors :mod:`repro.obs`: instrumented code
asks :func:`current_budget` for the active budget (``None`` when
ungoverned — the common case costs one contextvar read per *call*, and
the hot loops guard every tick with a plain ``is not None`` test)::

    budget = ExecutionBudget(timeout=0.050, max_ops=1_000_000)
    with budget:
        census(graph, pattern, k)      # raises BudgetExceeded at 50 ms

Budgets do not cross process boundaries (deadlines are absolute
``perf_counter`` values and the cancel flag is a ``threading.Event``);
:meth:`ExecutionBudget.spec` captures the *remaining* allowance as a
picklable dict and :meth:`ExecutionBudget.from_spec` rebuilds a fresh
budget from it on the far side — :mod:`repro.census.parallel` ships one
spec per chunk, so every worker enforces the same deadline while work
and result budgets apply per worker.
"""

import threading
import time
from contextvars import ContextVar

from repro.errors import BudgetExceeded, Cancelled

_CURRENT_BUDGET = ContextVar("repro_exec_budget", default=None)


def current_budget():
    """The ambient :class:`ExecutionBudget`, or ``None`` when ungoverned."""
    return _CURRENT_BUDGET.get()


#: The keys a budget spec mapping may carry (see :meth:`ExecutionBudget.spec`).
SPEC_KEYS = ("timeout", "max_ops", "max_results")


def validate_spec(spec):
    """Normalize an untrusted budget-spec mapping.

    The serving layer builds per-request budgets from client-supplied
    values (headers or JSON body); this funnels them through one
    validator so a bad request fails *before* a budget is constructed
    mid-statement.  Returns a clean ``{timeout, max_ops, max_results}``
    dict, or ``None`` when no limit is set.  Raises :class:`ValueError`
    on unknown keys, non-numeric values, or non-positive limits.
    """
    if spec is None:
        return None
    unknown = set(spec) - set(SPEC_KEYS)
    if unknown:
        raise ValueError(f"unknown budget keys {sorted(unknown)}; expected {list(SPEC_KEYS)}")
    out = {}
    for key in SPEC_KEYS:
        value = spec.get(key)
        if value is None:
            out[key] = None
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"budget {key} must be a number, got {value!r}")
        if key != "timeout":
            if value != int(value):
                raise ValueError(f"budget {key} must be an integer, got {value!r}")
            value = int(value)
        if value <= 0:
            raise ValueError(f"budget {key} must be positive, got {value!r}")
        out[key] = value
    if all(v is None for v in out.values()):
        return None
    return out


class activate_budget:
    """Context manager making ``budget`` the ambient execution budget.

    ``activate_budget(None)`` suspends governance for the scope — the
    degradation fallback uses this to run its (cheap) approximate pass
    after the primary budget is already exhausted.
    """

    __slots__ = ("_budget", "_token")

    def __init__(self, budget):
        self._budget = budget
        self._token = None

    def __enter__(self):
        self._token = _CURRENT_BUDGET.set(self._budget)
        return self._budget

    def __exit__(self, *exc):
        _CURRENT_BUDGET.reset(self._token)
        return False


class ExecutionBudget:
    """A single-use allowance of wall-clock time, work, and result size.

    The deadline clock starts at construction.  All three limits are
    optional; an all-``None`` budget never raises but still counts work
    (useful for measuring a run's cost in budget units).
    """

    __slots__ = ("timeout", "max_ops", "max_results", "started", "deadline",
                 "ops", "results", "_cancel", "_activation")

    def __init__(self, timeout=None, max_ops=None, max_results=None):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_ops is not None and max_ops <= 0:
            raise ValueError(f"max_ops must be positive, got {max_ops}")
        if max_results is not None and max_results <= 0:
            raise ValueError(f"max_results must be positive, got {max_results}")
        self.timeout = timeout
        self.max_ops = max_ops
        self.max_results = max_results
        self.started = time.perf_counter()
        self.deadline = self.started + timeout if timeout is not None else None
        self.ops = 0
        self.results = 0
        self._cancel = threading.Event()
        self._activation = None

    # -- enforcement ----------------------------------------------------
    def tick(self, n=1):
        """Spend ``n`` work operations; raise when any limit is crossed."""
        self.ops += n
        if self._cancel.is_set():
            raise Cancelled("execution cancelled")
        if self.max_ops is not None and self.ops > self.max_ops:
            raise BudgetExceeded("work", self.ops, self.max_ops)
        if self.deadline is not None:
            now = time.perf_counter()
            if now > self.deadline:
                raise BudgetExceeded("deadline", now - self.started, self.timeout)

    def count_result(self, n=1):
        """Account ``n`` materialized results against the result cap."""
        self.results += n
        if self.max_results is not None and self.results > self.max_results:
            raise BudgetExceeded("results", self.results, self.max_results)

    def check(self):
        """A zero-cost-work checkpoint (deadline + cancellation only)."""
        self.tick(0)

    # -- cancellation ---------------------------------------------------
    def cancel(self):
        """Flag the run for cancellation; the next tick raises
        :class:`repro.errors.Cancelled`.  Thread-safe; does not cross
        process boundaries."""
        self._cancel.set()

    @property
    def cancelled(self):
        return self._cancel.is_set()

    # -- introspection --------------------------------------------------
    def elapsed(self):
        return time.perf_counter() - self.started

    def remaining_time(self):
        """Seconds until the deadline (``None`` when unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def remaining_ops(self):
        if self.max_ops is None:
            return None
        return max(0, self.max_ops - self.ops)

    # -- process-boundary transfer --------------------------------------
    def spec(self):
        """The *remaining* allowance as a picklable dict.

        A worker rebuilds an equivalent budget with :meth:`from_spec`;
        the deadline carries over as remaining seconds (every chunk of a
        run shares one deadline), while work and result allowances are
        granted per worker — a deliberate approximation that keeps chunks
        independent.  An already-exhausted deadline is clamped to a
        microsecond so the worker fails on its first tick instead of
        failing to construct the budget.
        """
        remaining = self.remaining_time()
        if remaining is not None:
            remaining = max(remaining, 1e-6)
        remaining_ops = self.remaining_ops()
        if remaining_ops == 0:
            # The constructor rejects non-positive limits; a one-op
            # allowance makes the worker fail on its first real tick.
            remaining_ops = 1
        return {
            "timeout": remaining,
            "max_ops": remaining_ops,
            "max_results": self.max_results,
        }

    @classmethod
    def from_spec(cls, spec):
        """Rebuild a budget from :meth:`spec` output (``None`` -> ``None``)."""
        if spec is None:
            return None
        return cls(**spec)

    # -- activation -----------------------------------------------------
    def __enter__(self):
        self._activation = activate_budget(self)
        self._activation.__enter__()
        return self

    def __exit__(self, *exc):
        activation, self._activation = self._activation, None
        return activation.__exit__(*exc)

    def __repr__(self):
        parts = []
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}s")
        if self.max_ops is not None:
            parts.append(f"ops={self.ops}/{self.max_ops}")
        if self.max_results is not None:
            parts.append(f"results={self.results}/{self.max_results}")
        return f"<ExecutionBudget {' '.join(parts) or 'unlimited'}>"
