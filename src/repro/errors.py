"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems raise the more specific
subclasses below.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Invalid graph operation (missing node, duplicate edge, ...)."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, u, v):
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class StorageError(ReproError):
    """Disk storage engine failure (corrupt page, bad magic, ...)."""


class PatternError(ReproError):
    """Malformed pattern graph (unknown variable, empty pattern, ...)."""


class ParseError(ReproError):
    """Syntax error in the pattern census language.

    Carries the 1-based line and column of the offending token when known.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class QueryError(ReproError):
    """Semantic error while binding or executing a query."""


class CensusError(ReproError):
    """A census algorithm was invoked with unusable arguments."""


class ExecutionError(ReproError):
    """Base class for resource-governance failures (:mod:`repro.exec`)."""


class BudgetExceeded(ExecutionError):
    """An :class:`repro.exec.ExecutionBudget` limit was hit.

    ``reason`` is ``'deadline'``, ``'work'``, or ``'results'``; ``spent``
    and ``limit`` quantify the exhausted dimension (seconds for
    deadlines, operation/result counts otherwise).  Kept picklable so the
    error crosses process-pool boundaries intact.
    """

    def __init__(self, reason, spent, limit):
        if reason == "deadline":
            detail = f"deadline of {limit:.3f}s exceeded after {spent:.3f}s"
        elif reason == "work":
            detail = f"work budget of {limit} operations exhausted ({spent} spent)"
        else:
            detail = f"result-size cap of {limit} exceeded ({spent} produced)"
        super().__init__(detail)
        self.reason = reason
        self.spent = spent
        self.limit = limit

    def __reduce__(self):
        return (type(self), (self.reason, self.spent, self.limit))


class Cancelled(ExecutionError):
    """The run was cancelled from outside (``ExecutionBudget.cancel()``)."""


class WorkerCrashed(ExecutionError):
    """A parallel worker process died and the work could not be recovered."""
