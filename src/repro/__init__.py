"""Ego-centric graph pattern census.

A reproduction of *Ego-centric Graph Pattern Census* (Moustafa, Deshpande,
Getoor — ICDE 2012).  The package provides:

- :mod:`repro.graph` — an attributed, directed/undirected graph core with
  k-hop neighborhood machinery and synthetic graph generators,
- :mod:`repro.storage` — a paged, disk-resident adjacency-list storage
  engine (the Neo4j stand-in used by the paper's prototype),
- :mod:`repro.matching` — the paper's candidate-neighbor (CN) subgraph
  matcher plus GQL-style and brute-force baselines,
- :mod:`repro.census` — the node-driven (ND-BAS / ND-DIFF / ND-PVOT) and
  pattern-driven (PT-BAS / PT-OPT / PT-RND) census evaluation algorithms,
- :mod:`repro.lang` — the declarative SQL-based pattern census language,
- :mod:`repro.query` — the end-to-end query engine,
- :mod:`repro.analysis` — applications (ego measures, link prediction,
  brokerage, structural balance),
- :mod:`repro.datasets` — synthetic DBLP-style collaboration networks and
  benchmark workloads.

Quickstart::

    from repro import Graph, QueryEngine

    g = Graph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(1, 3)

    engine = QueryEngine(g)
    engine.execute_script('PATTERN tri {?A-?B; ?B-?C; ?A-?C;}')
    rows = engine.execute('SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes')
"""

from repro._version import __version__
from repro.errors import (
    CensusError,
    GraphError,
    ParseError,
    PatternError,
    QueryError,
    ReproError,
    StorageError,
)

__all__ = [
    "__version__",
    "Graph",
    "Pattern",
    "PatternEdge",
    "find_matches",
    "census",
    "pairwise_census",
    "QueryEngine",
    "ResultTable",
    "ReproError",
    "GraphError",
    "StorageError",
    "PatternError",
    "ParseError",
    "QueryError",
    "CensusError",
]

# Heavier subsystems are imported lazily (PEP 562) so that low-level
# modules remain importable in isolation and plain `import repro` stays
# cheap.
_LAZY = {
    "Graph": ("repro.graph", "Graph"),
    "Pattern": ("repro.matching", "Pattern"),
    "PatternEdge": ("repro.matching", "PatternEdge"),
    "find_matches": ("repro.matching", "find_matches"),
    "census": ("repro.census", "census"),
    "pairwise_census": ("repro.census", "pairwise_census"),
    "QueryEngine": ("repro.query", "QueryEngine"),
    "ResultTable": ("repro.query", "ResultTable"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
