"""Shared census machinery.

A census algorithm receives the database graph, a pattern, a radius
``k``, a focal node set, and (optionally) a subpattern name, and returns
``{focal_node: count}``.  The counting unit is a *census match*:

- without a subpattern: a distinct match subgraph of the pattern, all of
  whose nodes lie in ``S(n, k)``;
- with a subpattern: a pair (match subgraph, subpattern image) whose
  subpattern image lies in ``S(n, k)`` — two automorphic embeddings
  placing the subpattern on different nodes count separately, which is
  what "triads in which ?B is the coordinator" requires.
"""

from repro.errors import CensusError
from repro.matching import find_matches
from repro.obs import current_obs


class CensusMatch:
    """One counting unit of a census.

    ``nodes`` is the containment set (the subpattern image, or all match
    nodes), ``match`` the underlying representative embedding.
    """

    __slots__ = ("match", "nodes", "index")

    def __init__(self, match, nodes, index):
        self.match = match
        self.nodes = nodes
        self.index = index

    def __repr__(self):
        return f"<CensusMatch #{self.index} nodes={sorted(map(repr, self.nodes))}>"


class CensusRequest:
    """Validated, normalized census arguments shared by all algorithms."""

    def __init__(self, graph, pattern, k, focal_nodes=None, subpattern=None):
        if k < 0:
            raise CensusError(f"neighborhood radius must be >= 0, got {k}")
        pattern.validate()
        if subpattern is not None and subpattern not in pattern.subpatterns:
            raise CensusError(
                f"pattern {pattern.name!r} has no subpattern {subpattern!r} "
                f"(has: {sorted(pattern.subpatterns)})"
            )
        self.graph = graph
        self.pattern = pattern
        self.k = k
        if focal_nodes is None:
            self.focal_nodes = list(graph.nodes())
        else:
            self.focal_nodes = list(focal_nodes)
            missing = [n for n in self.focal_nodes if not graph.has_node(n)]
            if missing:
                raise CensusError(f"focal nodes not in graph: {missing[:5]}")
        self.subpattern = subpattern

    def containment_vars(self):
        """Pattern variables whose images must lie in the neighborhood."""
        if self.subpattern is None:
            return tuple(self.pattern.nodes)
        return self.pattern.subpatterns[self.subpattern]

    def zero_counts(self):
        return {n: 0 for n in self.focal_nodes}


def prepare_matches(request, matcher="cn", matches=None):
    """Find (or adopt) global pattern matches and convert them into
    census counting units, deduplicated appropriately.

    With a subpattern, embeddings are deduplicated by (subgraph,
    subpattern image); without one, by subgraph.
    """
    pattern = request.pattern
    if matches is None:
        # Distinct embeddings are needed when a subpattern is present so
        # that automorphic placements of the subpattern survive.
        distinct = request.subpattern is None
        matches = find_matches(request.graph, pattern, method=matcher, distinct=distinct)

    containment = request.containment_vars()
    units = []
    if request.subpattern is None:
        # Adopted match lists may contain automorphic embeddings of the
        # same subgraph; the census counting unit is the subgraph.
        seen_subgraphs = set()
        for m in matches:
            if m.canonical_key in seen_subgraphs:
                continue
            seen_subgraphs.add(m.canonical_key)
            units.append(CensusMatch(m, m.nodes(), len(units)))
        current_obs().add("census.match_units", len(units))
        return units

    seen = set()
    for m in matches:
        image = frozenset(m.mapping[v] for v in containment)
        key = (m.canonical_key, image)
        if key in seen:
            continue
        seen.add(key)
        units.append(CensusMatch(m, image, len(units)))
    current_obs().add("census.match_units", len(units))
    return units


def containment_distances(request):
    """Pattern hop distances restricted to the containment variables.

    Used by ND-PVOT's pivot selection and check avoidance: returns
    ``(pivot_var, max_v, {var: d(pivot, var)})`` where distances are in
    the pattern graph and ``max_v`` is the largest distance from the
    pivot to any containment variable.
    """
    pattern = request.pattern
    containment = request.containment_vars()
    dists = pattern.distances()
    best_pivot = None
    best_ecc = None
    for x in containment:
        ecc = max(dists[x][y] for y in containment)
        if best_ecc is None or (ecc, x) < (best_ecc, best_pivot):
            best_pivot, best_ecc = x, ecc
    pivot_dists = {y: dists[best_pivot][y] for y in containment}
    return best_pivot, best_ecc, pivot_dists
