"""PT-OPT / PT-RND: the optimized pattern-driven algorithm (Section IV-B).

Combines every optimization of the paper on top of PT-BAS's idea:

1. *Simultaneous traversal* — one relaxation wave per match (or per
   match cluster) instead of one BFS per match node; ``PMD_m[n]`` holds
   the current upper bound on ``d(m, n)`` for every match node ``m``.
2. *Distance shortcuts* — ``PMD`` among a match's own nodes is seeded
   with pattern distances, which upper-bound graph distances.
3. *Best-first ordering* — the queue pops the node with the smallest
   ``sum_m PMD_m[n]``, implemented with the O(1) array/bucket priority
   queue; ``order='random'`` is PT-RND, ``order='fifo'`` the plain
   breadth-first variant.
4. *Center-based expansion* — high-degree centers enter the queue with
   exact precomputed distances (never reinserted) and tighten the
   initial bounds of newly touched nodes via the triangle inequality.
5. *Pattern match clustering* — K-means over center-distance feature
   vectors groups nearby matches so one traversal serves all of them.

The relaxation is order-independent (values only decrease and every
improvement re-queues the node), so all orderings return identical
counts; ordering only changes the amount of work — which is exactly
what Figures 4(d), 4(f) and 4(g) measure.
"""

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.census.base import CensusRequest, prepare_matches
from repro.census.bucket_queue import BucketQueue, FIFOQueue, RandomQueue
from repro.census.centers import CenterIndex, select_centers
from repro.census.clustering import cluster_matches
from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.obs import current_obs


@dataclass
class PTOptions:
    """Tuning knobs of the pattern-driven algorithm.

    The defaults are the paper's PT-OPT configuration: best-first order,
    distance shortcuts on, 12 degree-chosen centers, K-means clustering
    with ``#matches / 4`` clusters and 10 Lloyd iterations.
    """

    order: str = "best"  # 'best' | 'random' | 'fifo'
    distance_shortcuts: bool = True
    num_centers: int = 12
    center_strategy: str = "degree"  # 'degree' | 'random'
    clustering: str = "kmeans"  # 'kmeans' | 'random' | 'none'
    num_clusters: Optional[int] = None  # None -> #matches / 4
    clustering_centers: Optional[int] = None  # None -> num_centers
    kmeans_iterations: int = 10
    seed: int = 0
    center_index: Optional[CenterIndex] = None  # precomputed override
    stats: Optional[dict] = field(default=None, repr=False)


def pt_opt_census(graph, pattern, k, focal_nodes=None, subpattern=None,
                  matcher="cn", options=None, matches=None, **overrides):
    """Per-node census with the fully optimized pattern-driven algorithm.

    Keyword overrides are applied on top of ``options`` (or the default
    :class:`PTOptions`), e.g. ``pt_opt_census(g, p, 2, num_centers=4)``.
    ``matches`` adopts an existing global match list instead of running
    the matcher.
    """
    opts = options or PTOptions()
    if overrides:
        opts = PTOptions(**{**_as_dict(opts), **overrides})
    obs = current_obs()
    with obs.span("census.pt_opt", k=k, pattern=pattern.name, order=opts.order):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            return counts

        bound_centers, cluster_centers = _build_center_indexes(graph, opts)

        num_clusters = opts.num_clusters
        if num_clusters is None:
            num_clusters = max(1, len(units) // 4)
        clusters = cluster_matches(
            units,
            cluster_centers,
            num_clusters,
            strategy=opts.clustering,
            iterations=opts.kmeans_iterations,
            seed=opts.seed,
        )

        focal = set(request.focal_nodes)
        pattern_dists = pattern.distances()
        stats = {"pops": 0, "relaxations": 0, "clusters": len(clusters), "touched": 0,
                 "edge_visits": 0}
        for cluster in clusters:
            _process_cluster(
                graph,
                [units[i] for i in cluster],
                request.k,
                focal,
                counts,
                pattern_dists,
                bound_centers,
                opts,
                stats,
            )
        if opts.stats is not None:
            opts.stats.update(stats)
        if obs.enabled:
            # Mirror the ad-hoc stats dict onto the registry; bucket-queue
            # pops are the paper's "operations" axis for PT variants.
            obs.add("census.pt_opt.queue_pops", stats["pops"])
            obs.add("census.pt_opt.relaxations", stats["relaxations"])
            obs.add("census.pt_opt.clusters", stats["clusters"])
            obs.add("census.pt_opt.nodes_touched", stats["touched"])
            obs.add("census.pt_opt.edge_visits", stats["edge_visits"])
        return counts


def pt_rnd_census(graph, pattern, k, focal_nodes=None, subpattern=None,
                  matcher="cn", options=None, matches=None, **overrides):
    """PT-OPT with random instead of best-first traversal order."""
    opts = options or PTOptions()
    merged = {**_as_dict(opts), **overrides, "order": "random"}
    return pt_opt_census(
        graph, pattern, k, focal_nodes=focal_nodes, subpattern=subpattern,
        matcher=matcher, options=PTOptions(**merged), matches=matches,
    )


def _as_dict(opts):
    return {
        "order": opts.order,
        "distance_shortcuts": opts.distance_shortcuts,
        "num_centers": opts.num_centers,
        "center_strategy": opts.center_strategy,
        "clustering": opts.clustering,
        "num_clusters": opts.num_clusters,
        "clustering_centers": opts.clustering_centers,
        "kmeans_iterations": opts.kmeans_iterations,
        "seed": opts.seed,
        "center_index": opts.center_index,
        "stats": opts.stats,
    }


def _build_center_indexes(graph, opts):
    """Center indexes for (a) PMD bounds and (b) clustering features.

    Figure 4(f) varies the number of bound centers while holding the
    clustering feature space fixed; ``clustering_centers`` supports
    that isolation.
    """
    if opts.center_index is not None:
        return opts.center_index, opts.center_index
    n_bounds = max(0, opts.num_centers)
    n_cluster = opts.clustering_centers if opts.clustering_centers is not None else n_bounds
    total = max(n_bounds, n_cluster)
    if total == 0:
        empty = CenterIndex(graph, [])
        return empty, empty
    centers = select_centers(graph, total, strategy=opts.center_strategy, seed=opts.seed)
    full = CenterIndex(graph, centers)
    bound_idx = full if n_bounds == total else CenterIndex(graph, centers[:n_bounds])
    cluster_idx = full if n_cluster == total else CenterIndex(graph, centers[:n_cluster])
    return bound_idx, cluster_idx


def _make_queue(order, max_score, seed):
    if order == "best":
        return BucketQueue(max_score)
    if order == "fifo":
        return FIFOQueue(max_score)
    if order == "random":
        return RandomQueue(max_score, rng=random.Random(seed))
    raise ValueError(f"unknown traversal order {order!r}")


def _process_cluster(graph, cluster_units, k, focal, counts, pattern_dists,
                     centers, opts, stats):
    """One simultaneous traversal around all matches of a cluster."""
    fault_point("census.bfs")
    budget = current_budget()
    inf = k + 1
    sources = sorted({m for unit in cluster_units for m in unit.nodes}, key=repr)
    src_pos = {m: i for i, m in enumerate(sources)}
    num_sources = len(sources)
    max_score = inf * num_sources

    pmd = {}

    # Only centers within k of a source can ever tighten a bound to a
    # useful (<= k) value; restrict the per-source bound lists up front
    # so first-touch initialization stays O(useful centers).
    if centers:
        bound_lists = [centers.useful_for(m, k) for m in sources]
        have_bounds = any(bound_lists)
    else:
        bound_lists = [()] * num_sources
        have_bounds = False

    def ensure(node):
        """First-touch initialization with center triangle bounds."""
        vec = pmd.get(node)
        if vec is None:
            if have_bounds:
                vec = []
                for lst in bound_lists:
                    best = inf
                    for dist_map, d_cm in lst:
                        d_cn = dist_map.get(node)
                        if d_cn is not None and d_cm + d_cn < best:
                            best = d_cm + d_cn
                    vec.append(best)
            else:
                vec = [inf] * num_sources
            pmd[node] = vec
            stats["touched"] += 1
        return vec

    queue = _make_queue(opts.order, max_score, opts.seed)

    # Seed the match nodes (distance shortcuts: pattern distances are
    # upper bounds on graph distances between a match's own nodes).
    for unit in cluster_units:
        inverse = {node: var for var, node in unit.match.mapping.items()}
        for m in unit.nodes:
            vec = ensure(m)
            i = src_pos[m]
            if vec[i] > 0:
                vec[i] = 0
            if opts.distance_shortcuts:
                var_m = inverse[m]
                for other, var_o in inverse.items():
                    j = src_pos.get(other)
                    if j is None:
                        continue
                    d = pattern_dists[var_o].get(var_m)
                    if d is not None and d <= k and d < vec[j]:
                        vec[j] = d
            queue.push(m, sum(vec))

    # Seed the centers with exact distances; they are never reinserted
    # because exact values cannot improve.
    if centers:
        for c in centers.centers:
            vec = ensure(c)
            for i, m in enumerate(sources):
                d = centers.distance(c, m)
                if d is not None and d < vec[i]:
                    vec[i] = min(d, inf)
            queue.push(c, sum(vec))

    while queue:
        node, _score = queue.pop()
        stats["pops"] += 1
        if budget is not None:
            budget.tick()
        vec = pmd[node]
        if min(vec) >= k:
            # 'far' for every source: relaxing neighbors could only
            # produce values > k, which never affect counts.
            continue
        stats["edge_visits"] += len(graph.neighbors(node))
        for nbr in graph.neighbors(node):
            # First touch must enqueue even without an improvement: the
            # center bounds installed by ensure() may already be small
            # enough to propagate further (Algorithm 4 treats PMD=NULL
            # as a change).
            first_touch = nbr not in pmd
            nvec = ensure(nbr)
            changed = False
            for i, v in enumerate(vec):
                cand = v + 1
                if cand <= k and cand < nvec[i]:
                    nvec[i] = cand
                    changed = True
            if changed or first_touch:
                stats["relaxations"] += 1
                queue.push(nbr, sum(nvec))

    # Harvest: a node counts a match when it is within k of every node
    # of that match.
    per_unit_pos = [[src_pos[m] for m in unit.nodes] for unit in cluster_units]
    for node, vec in pmd.items():
        if node not in focal:
            continue
        gained = 0
        for positions in per_unit_pos:
            if all(vec[i] <= k for i in positions):
                gained += 1
        if gained:
            counts[node] += gained
