"""ND-BAS: the node-driven baseline (Section IV-A).

For each focal node, extract the induced k-hop subgraph ``S(n, k)`` and
run the pattern matcher inside it.  Because an induced subgraph keeps
every edge among its nodes, a match inside ``S(n, k)`` is exactly a
global match whose nodes all lie in ``N_k(n)`` — including negated-edge
and predicate semantics — so ND-BAS is the correctness reference every
other algorithm is tested against.

With a subpattern, only the subpattern's image must lie in the
neighborhood while the rest of the match may fall outside ``S(n, k)``;
extraction-based matching can't see those matches, so this module falls
back to one global matching pass plus explicit containment checks.
"""

from repro.census.base import CensusRequest, prepare_matches
from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.graph.traversal import ego_subgraph, k_hop_nodes
from repro.matching import find_matches
from repro.obs import current_obs


def nd_bas_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn"):
    """Per-node census by extract-and-match (the paper's ND-BAS)."""
    obs = current_obs()
    with obs.span("census.nd_bas", k=k, pattern=pattern.name):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()

        budget = current_budget()
        if subpattern is not None:
            units = prepare_matches(request, matcher=matcher)
            for n in request.focal_nodes:
                fault_point("census.bfs")
                region = k_hop_nodes(graph, n, k)
                if budget is not None:
                    budget.tick(len(region) + len(units))
                counts[n] = sum(1 for unit in units if unit.nodes <= region)
            obs.add("census.nd_bas.containment_checks",
                    len(units) * len(request.focal_nodes))
            return counts

        extracted_nodes = 0
        for n in request.focal_nodes:
            fault_point("census.bfs")
            sub = ego_subgraph(graph, n, k)
            extracted_nodes += sub.num_nodes
            if budget is not None:
                budget.tick(sub.num_nodes)
            counts[n] = len(find_matches(sub, pattern, method=matcher, distinct=True))
        if obs.enabled:
            obs.add("census.nd_bas.subgraphs_extracted", len(request.focal_nodes))
            obs.add("census.nd_bas.extracted_nodes", extracted_nodes)
        return counts
