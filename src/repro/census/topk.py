"""Top-k census evaluation (the paper's future work, Section VII).

Find the K egos with the highest pattern census counts without paying
for an exact count at every node.  Threshold-algorithm structure:

1. Find all matches once and index them by the pivot variable; let
   ``a(n')`` be the number of matches anchored at node ``n'``.
2. Diffuse anchor masses: ``ub(n) = sum of a(n') over n' in N_k(n)``.
   Every match counted at ``n`` has its pivot image inside ``N_k(n)``,
   so ``ub`` is a true upper bound on the census count.  Computed with
   one bounded BFS per *anchor* (there are usually far fewer anchors
   than nodes).
3. Walk candidates in decreasing ``ub``, computing exact counts in
   batches (via ND-PVOT on just those focal nodes).  Stop as soon as
   the K-th best exact count reaches the next candidate's upper bound —
   no unexamined node can beat it.

Exactness is a property test: the result always equals the top-K of a
full census.
"""

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.nd_pvot import nd_pvot_census
from repro.census.pmi import PatternMatchIndex
from repro.graph.traversal import k_hop_nodes
from repro.matching import find_matches
from repro.obs import current_obs


def census_topk(graph, pattern, k, K, focal_nodes=None, subpattern=None,
                matcher="cn", batch_size=None, collect_stats=None):
    """The ``K`` focal nodes with the largest census counts.

    Returns a list of ``(node, count)`` sorted by descending count.
    The returned *counts* always equal the top-K counts of a full
    census; when several nodes tie at the K-th count, any of the tied
    nodes may be returned (early termination cannot distinguish members
    of a tie without evaluating all of them).  ``collect_stats``, if a
    dict, receives ``exact_evaluations`` — how many nodes needed an
    exact count (the saving over a full census is
    ``len(focal) - exact_evaluations``).
    """
    obs = current_obs()
    if collect_stats is None and obs.enabled:
        collect_stats = {}
    with obs.span("census.topk", k=k, K=K, pattern=pattern.name):
        result = _census_topk(graph, pattern, k, K, focal_nodes, subpattern,
                              matcher, batch_size, collect_stats)
        if obs.enabled:
            obs.add("census.topk.exact_evaluations",
                    collect_stats.get("exact_evaluations", 0))
            obs.add("census.topk.candidates_total",
                    collect_stats.get("candidates_total", 0))
        return result


def _census_topk(graph, pattern, k, K, focal_nodes, subpattern, matcher,
                 batch_size, collect_stats):
    request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
    focal = list(request.focal_nodes)
    if K <= 0 or not focal:
        if collect_stats is not None:
            collect_stats["exact_evaluations"] = 0
        return []

    # One matching pass, shared by the upper-bound diffusion and every
    # exact batch evaluation below.
    raw_matches = find_matches(
        graph, pattern, method=matcher, distinct=request.subpattern is None
    )
    units = prepare_matches(request, matches=raw_matches)
    if not units:
        if collect_stats is not None:
            collect_stats["exact_evaluations"] = 0
        ranked = sorted(focal, key=repr)[:K]
        return [(n, 0) for n in ranked]

    pivot_var, _max_v, _dists = containment_distances(request)
    pmi = PatternMatchIndex(units, pivot_var=pivot_var)

    # Step 2: anchor-mass diffusion.  ub[n] counts matches whose pivot
    # image lies within k hops of n — a superset of the true count.
    ub = {}
    for anchor in pmi.anchored_nodes():
        mass = len(pmi.matches_at(anchor))
        for node in k_hop_nodes(graph, anchor, k):
            ub[node] = ub.get(node, 0) + mass

    focal_set = set(focal)
    ordered = sorted(
        ((n, ub.get(n, 0)) for n in focal),
        key=lambda t: (-t[1], repr(t[0])),
    )

    if batch_size is None:
        batch_size = max(K, 16)

    exact = {}
    results = []
    i = 0
    while i < len(ordered):
        # Termination: the K-th best exact count already matches or
        # beats every unexamined upper bound.
        if len(results) >= K:
            results.sort(key=lambda t: (-t[1], repr(t[0])))
            kth = results[K - 1][1]
            if kth >= ordered[i][1]:
                break
        batch = [n for n, _u in ordered[i : i + batch_size] if n in focal_set]
        counts = nd_pvot_census(
            graph, pattern, k, focal_nodes=batch, subpattern=subpattern,
            matcher=matcher, matches=raw_matches,
        )
        for n in batch:
            exact[n] = counts[n]
            results.append((n, counts[n]))
        i += batch_size

    results.sort(key=lambda t: (-t[1], repr(t[0])))
    if collect_stats is not None:
        collect_stats["exact_evaluations"] = len(exact)
        collect_stats["candidates_total"] = len(ordered)
    return results[:K]
