"""Pairwise census over SUBGRAPH-INTERSECTION / SUBGRAPH-UNION
neighborhoods (Section II and the appendix extensions).

For a pair ``(n1, n2)`` the search region is ``N_k(n1) ∩ N_k(n2)``
(intersection) or ``N_k(n1) ∪ N_k(n2)`` (union); a census match counts
for the pair when its containment node set lies inside the region.

Two strategies:

- ``algorithm='nd'`` — node-driven: per pair, materialize the region and
  probe the pivot-keyed pattern match index (the Algorithm 2 adaptation:
  iterate the region, check containment).  Neighborhoods are cached
  across pairs since pair lists reuse nodes heavily.
- ``algorithm='pt'`` — pattern-driven: per match, compute the coverage
  set ``N[M]`` (nodes within k of *all* match nodes) and the per-node
  partial coverage; a pair covers the match when the union of the two
  nodes' coverage is complete (union mode) or both nodes fully cover it
  (intersection mode — they are then both in ``N[M]``, the paper's
  ``N[M] x N[M]`` construction).
"""

from itertools import combinations

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.pmi import PatternMatchIndex
from repro.errors import CensusError
from repro.graph.traversal import k_hop_distances
from repro.obs import current_obs


def pairwise_census(graph, pattern, k, pairs=None, mode="intersection",
                    subpattern=None, algorithm="nd", matcher="cn"):
    """Count pattern matches in pairwise combined neighborhoods.

    Parameters
    ----------
    pairs:
        Iterable of ``(n1, n2)`` node pairs.  With ``pairs=None``:
        the node-driven strategy enumerates all unordered node pairs
        (quadratic — small graphs only), and the pattern-driven
        *intersection* strategy emits exactly the pairs with non-zero
        counts; pattern-driven *union* requires explicit pairs.
    mode:
        ``'intersection'`` or ``'union'``.
    algorithm:
        ``'nd'`` or ``'pt'``.

    Returns
    -------
    dict mapping each requested ``(n1, n2)`` pair to its count.  With
    ``pairs=None`` under the pattern-driven intersection strategy, only
    non-zero pairs appear, keyed in sorted-by-repr order.
    """
    if mode not in ("intersection", "union"):
        raise CensusError(f"mode must be 'intersection' or 'union', got {mode!r}")
    if algorithm not in ("nd", "pt"):
        raise CensusError(f"unknown pairwise algorithm {algorithm!r}")
    obs = current_obs()
    with obs.span("census.pairwise", k=k, pattern=pattern.name, mode=mode,
                  algorithm=algorithm):
        request = CensusRequest(graph, pattern, k, focal_nodes=(), subpattern=subpattern)
        units = prepare_matches(request, matcher=matcher)

        if algorithm == "nd":
            if pairs is None:
                nodes = sorted(graph.nodes(), key=repr)
                pairs = list(combinations(nodes, 2))
            return _pairwise_nd(graph, request, units, list(pairs), mode, obs)
        return _pairwise_pt(graph, request, units, pairs, mode)


def _pairwise_nd(graph, request, units, pairs, mode, obs):
    """Node-driven pairwise census with the appendix's distance
    arithmetic: the Algorithm 2 adaptation replaces ``d(n, n')`` with
    ``max(d(n1, n'), d(n2, n'))`` for intersections and ``min(...)``
    for unions, so a match anchored close enough to *both* (resp.
    *either*) focal node is bulk-counted without a containment check.
    """
    k = request.k
    counts = {pair: 0 for pair in pairs}
    if not units:
        return counts
    pivot_var, max_v, _dists = containment_distances(request)
    pmi = PatternMatchIndex(units, pivot_var=pivot_var)

    dist_cache = {}

    def dists(n):
        d = dist_cache.get(n)
        if d is None:
            d = k_hop_distances(graph, n, k)
            dist_cache[n] = d
        return d

    combine = max if mode == "intersection" else min
    bulk = checked = 0
    for pair in pairs:
        n1, n2 = pair
        d1, d2 = dists(n1), dists(n2)
        if mode == "intersection":
            region = set(d1) & set(d2)
        else:
            region = set(d1) | set(d2)
        total = 0
        for n_prime in region:
            anchored = pmi.matches_at(n_prime)
            if not anchored:
                continue
            eff = combine(d1.get(n_prime, k + 1), d2.get(n_prime, k + 1))
            if eff + max_v <= k:
                # Every anchored match lies within k of the combined
                # criterion: bulk add, no containment checks.
                total += len(anchored)
                bulk += len(anchored)
            else:
                checked += len(anchored)
                for unit in anchored:
                    if unit.nodes <= region:
                        total += 1
        counts[pair] = total
    if obs.enabled:
        obs.add("census.pairwise.bulk_added", bulk)
        obs.add("census.pairwise.containment_checks", checked)
    return counts


def _pairwise_pt(graph, request, units, pairs, mode):
    k = request.k
    if pairs is None:
        if mode == "union":
            raise CensusError(
                "pattern-driven union census requires an explicit pair list"
            )
        counts = {}
        for unit in units:
            coverage = _full_coverage(graph, unit, k)
            for a, b in combinations(sorted(coverage, key=repr), 2):
                counts[(a, b)] = counts.get((a, b), 0) + 1
        return counts

    pairs = list(pairs)
    counts = {pair: 0 for pair in pairs}
    if not units:
        return counts
    for unit in units:
        dist_maps = [k_hop_distances(graph, m, k) for m in unit.nodes]
        if mode == "intersection":
            coverage = set(dist_maps[0])
            for d in dist_maps[1:]:
                coverage &= set(d)
            for pair in pairs:
                if pair[0] in coverage and pair[1] in coverage:
                    counts[pair] += 1
        else:
            num_sources = len(dist_maps)
            partial = {}
            for i, d in enumerate(dist_maps):
                for n in d:
                    partial.setdefault(n, set()).add(i)
            complete = set(range(num_sources))
            for pair in pairs:
                got = partial.get(pair[0], set()) | partial.get(pair[1], set())
                if got == complete:
                    counts[pair] += 1
    return counts


def _full_coverage(graph, unit, k):
    """Nodes within k hops of every node of the match (``N[M]``)."""
    it = iter(unit.nodes)
    coverage = set(k_hop_distances(graph, next(it), k))
    for m in it:
        coverage &= set(k_hop_distances(graph, m, k))
        if not coverage:
            break
    return coverage
