"""Center selection and the center distance index (Section IV-B.4).

Centers are a small set of nodes whose exact distances to every node are
precomputed.  At query time they (a) seed the traversal queue with exact
distances so they are never reinserted, (b) tighten initial distance
upper bounds via the triangle inequality, and (c) provide the feature
space for K-means match clustering.  The paper picks the highest-degree
nodes (DEG-CNTR); RND-CNTR is the random baseline of Figure 4(f).
"""

import random

from repro.graph.traversal import bfs_distances


def select_centers(graph, count, strategy="degree", seed=0):
    """Pick ``count`` center nodes by ``strategy`` ('degree' or 'random')."""
    if count <= 0:
        return []
    nodes = list(graph.nodes())
    if strategy == "degree":
        nodes.sort(key=lambda n: (-graph.degree(n), repr(n)))
        return nodes[:count]
    if strategy == "random":
        rng = random.Random(seed)
        rng.shuffle(nodes)
        return nodes[:count]
    raise ValueError(f"unknown center strategy {strategy!r}")


class CenterIndex:
    """Precomputed exact distances from each center to every node."""

    def __init__(self, graph, centers):
        self.centers = list(centers)
        self._dist = {c: bfs_distances(graph, c) for c in self.centers}

    def distance(self, center, node):
        """Exact hop distance or ``None`` when unreachable."""
        return self._dist[center].get(node)

    def bound(self, m, node, cap):
        """Triangle-inequality upper bound ``min_c d(m,c) + d(c,node)``,
        capped at ``cap`` (``cap`` returned when no center helps)."""
        best = cap
        for c in self.centers:
            dm = self._dist[c].get(m)
            if dm is None or dm >= best:
                continue
            dn = self._dist[c].get(node)
            if dn is None:
                continue
            total = dm + dn
            if total < best:
                best = total
        return best

    def useful_for(self, node, cap):
        """Centers that can possibly bound a distance from ``node`` at or
        under ``cap``: pairs ``(center_distance_map, d(center, node))``
        with ``d(center, node) <= cap``.  A center farther than ``cap``
        from ``node`` can never produce a bound within ``cap`` because
        ``d(node, x) <= d(node, c) + d(c, x)`` starts above it."""
        out = []
        for c in self.centers:
            d = self._dist[c].get(node)
            if d is not None and d <= cap:
                out.append((self._dist[c], d))
        return out

    def feature_vector(self, nodes, missing):
        """Distances from every center to each of ``nodes`` (flattened),
        with unreachable entries replaced by ``missing``.  The K-means
        feature map F(M) of Section IV-B.5."""
        vec = []
        for c in self.centers:
            dist_c = self._dist[c]
            for m in nodes:
                d = dist_c.get(m)
                vec.append(missing if d is None else d)
        return vec

    def __len__(self):
        return len(self.centers)

    def __bool__(self):
        return bool(self.centers)
