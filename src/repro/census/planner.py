"""Census algorithm selection, distilled from the paper's findings.

Section V observes:

- unselective patterns (unlabeled, many matches) favor the node-driven
  pivot algorithm (Figure 4(c));
- selective patterns (labeled) favor the pattern-driven family
  (Figure 4(d));
- node-driven cost scales with focal-node selectivity while
  pattern-driven cost does not (Figure 4(e)).

The planner turns those findings into a cheap cost model: the expected
match count is estimated from label frequencies and average degree (the
classic independence estimate — each pattern edge survives with
probability ``avg_degree / n``, each label constraint with the label's
frequency), and the estimate decides between the two families.  No
matcher is ever run during planning.
"""

from repro.graph.graph import LABEL_KEY


def estimate_matches(graph, pattern):
    """Independence estimate of the number of match subgraphs.

    ``n^|V| x prod(label selectivities) x prod(deg/n per positive edge)
    / |Aut|-ish`` — with the automorphism factor approximated by 1
    (cheap and irrelevant to the ordering the planner needs).  Returns
    a float; 0.0 when a required label is absent.
    """
    n = graph.num_nodes
    if n == 0:
        return 0.0
    # Label histogram (one pass; planners run once per query).
    label_counts = {}
    for node in graph.nodes():
        label = graph.node_attr(node, LABEL_KEY)
        label_counts[label] = label_counts.get(label, 0) + 1
    total_degree = sum(graph.degree(node) for node in graph.nodes())
    avg_degree = total_degree / n if n else 0.0
    edge_prob = min(1.0, avg_degree / n) if n > 1 else 0.0

    estimate = 1.0
    for var in pattern.nodes:
        want = pattern.label_of(var)
        if want is None:
            estimate *= n
        else:
            estimate *= label_counts.get(want, 0)
        if estimate == 0.0:
            return 0.0
    for _edge in pattern.positive_edges():
        estimate *= edge_prob
    # Non-label predicates prune further; a flat discount per predicate
    # keeps the estimate conservative without attribute statistics.
    non_label_predicates = max(0, len(pattern.predicates) - sum(
        1 for v in pattern.nodes if pattern.label_of(v) is not None
    ))
    estimate *= 0.5 ** non_label_predicates
    return estimate


def choose_algorithm(graph, pattern, k, focal_nodes=None, subpattern=None,
                     match_threshold_fraction=0.05, workers=1):
    """Pick a census algorithm name for :func:`repro.census.census`.

    Pattern-driven evaluation pays per match; node-driven pays per
    focal node.  The estimated match count is compared against the
    focal-node count: few expected matches -> pattern-driven (PT-OPT),
    otherwise node-driven (ND-PVOT).  Very small focal sets always go
    node-driven — touching only those nodes beats any global strategy.

    ``workers > 1`` biases toward node-driven: focal chunks partition
    node-driven work cleanly, while pattern-driven traversals repeat
    per-cluster setup in every chunk, so parallel speedup favors
    ND-PVOT even where a serial plan would pick PT-OPT.
    """
    num_nodes = max(1, graph.num_nodes)
    if focal_nodes is None:
        focal_count = num_nodes
    else:
        focal = focal_nodes if hasattr(focal_nodes, "__len__") else list(focal_nodes)
        focal_count = len(focal)

    if focal_count <= max(2, match_threshold_fraction * num_nodes):
        return "nd-pvot"

    if workers is None or workers > 1:
        return "nd-pvot"

    # Pattern-driven work per match (a bounded multi-source traversal)
    # costs several times node-driven work per focal node (one BFS with
    # bulk-added index hits), so pattern-driven only wins when matches
    # are several times scarcer than focal nodes.
    expected_matches = estimate_matches(graph, pattern)
    if 4 * expected_matches <= focal_count:
        return "pt-opt"
    return "nd-pvot"
