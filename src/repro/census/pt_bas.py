"""PT-BAS: the pattern-driven baseline (Section IV-B).

Processes each match independently: BFS to depth ``k`` from every node
of the match, then intersect the k-hop neighborhoods (smallest first) —
the surviving focal nodes each count the match.  Each edge around a
match may be traversed once per match node — the redundancy PT-OPT's
simultaneous traversal removes.
"""

from repro.census.base import CensusRequest, prepare_matches
from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.graph.traversal import bfs_layer_sets
from repro.obs import current_obs


def pt_bas_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn",
                  collect_stats=None, matches=None):
    """Per-node census, one independent BFS bundle per match.

    ``collect_stats``, if a dict, receives ``edge_visits``: the number
    of adjacency-list entries scanned across all per-match BFS runs —
    the disk-I/O proxy the pattern-driven optimizations target.
    ``matches`` adopts an existing match list instead of running the
    matcher; unlike ND-PVOT, PT-BAS makes no pattern-distance
    assumptions about the adopted matches, so it also serves relaxed
    semantics such as distance-join matches.
    """
    obs = current_obs()
    with obs.span("census.pt_bas", k=k, pattern=pattern.name):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            if collect_stats is not None:
                collect_stats["edge_visits"] = 0
            return counts

        # Counting edge visits walks every BFS frontier a second time, so
        # it stays opt-in: explicit collect_stats or an active obs context.
        want_stats = collect_stats is not None or obs.enabled
        budget = current_budget()
        edge_visits = 0
        focal = set(request.focal_nodes)
        for unit in units:
            fault_point("census.bfs")
            hoods = []
            for m in unit.nodes:
                hood = set()
                for d, layer in enumerate(bfs_layer_sets(graph, m, k)):
                    if budget is not None:
                        budget.tick(len(layer))
                    hood |= layer
                    if want_stats and d < k:
                        edge_visits += sum(graph.degree(x) for x in layer)
                hoods.append(hood)
            # A node counts the match when it lies within k of *every*
            # match node: the intersection of the k-hop neighborhoods,
            # built smallest-first.
            hoods.sort(key=len)
            covered = hoods[0]
            for hood in hoods[1:]:
                covered &= hood
            for n in covered & focal:
                counts[n] += 1
        if collect_stats is not None:
            collect_stats["edge_visits"] = edge_visits
        if obs.enabled:
            obs.add("census.pt_bas.edge_visits", edge_visits)
        return counts
