"""PT-BAS: the pattern-driven baseline (Section IV-B).

Processes each match independently: BFS to depth ``k`` from every node
of the match, take the match node with the fewest k-hop neighbors, and
for each of its neighbors check reachability within ``k`` hops from
every other match node.  Each edge around a match may be traversed once
per match node — the redundancy PT-OPT's simultaneous traversal removes.
"""

from repro.census.base import CensusRequest, prepare_matches
from repro.graph.traversal import k_hop_distances
from repro.obs import current_obs


def pt_bas_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn",
                  collect_stats=None, matches=None):
    """Per-node census, one independent BFS bundle per match.

    ``collect_stats``, if a dict, receives ``edge_visits``: the number
    of adjacency-list entries scanned across all per-match BFS runs —
    the disk-I/O proxy the pattern-driven optimizations target.
    ``matches`` adopts an existing match list instead of running the
    matcher; unlike ND-PVOT, PT-BAS makes no pattern-distance
    assumptions about the adopted matches, so it also serves relaxed
    semantics such as distance-join matches.
    """
    obs = current_obs()
    with obs.span("census.pt_bas", k=k, pattern=pattern.name):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            if collect_stats is not None:
                collect_stats["edge_visits"] = 0
            return counts

        # Counting edge visits walks every BFS frontier a second time, so
        # it stays opt-in: explicit collect_stats or an active obs context.
        want_stats = collect_stats is not None or obs.enabled
        edge_visits = 0
        focal = set(request.focal_nodes)
        for unit in units:
            dist_maps = {m: k_hop_distances(graph, m, k) for m in unit.nodes}
            if want_stats:
                for d in dist_maps.values():
                    edge_visits += sum(
                        graph.degree(n) for n, dist in d.items() if dist < k
                    )
            m_min = min(dist_maps, key=lambda m: len(dist_maps[m]))
            others = [d for m, d in dist_maps.items() if m is not m_min]
            for n in dist_maps[m_min]:
                if n in focal and all(n in d for d in others):
                    counts[n] += 1
        if collect_stats is not None:
            collect_stats["edge_visits"] = edge_visits
        if obs.enabled:
            obs.add("census.pt_bas.edge_visits", edge_visits)
        return counts
