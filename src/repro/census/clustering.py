"""K-means clustering of pattern matches (Section IV-B.5).

Each match is embedded as its vector of center distances
``F(M) = <d(c_1, m_1), ..., d(c_|C|, m_|V_P|)>``; K-means over these
vectors groups matches that sit in the same graph region so PT-OPT can
expand around a whole group in one simultaneous traversal.  A tiny
seeded Lloyd's-iterations implementation is included (no external
dependency); ``strategy='random'`` gives the RND-CLUST baseline of
Figure 4(g) and ``strategy='none'`` disables grouping (NO-CLUST).
"""

import random


def kmeans(vectors, num_clusters, iterations=10, seed=0):
    """Cluster ``vectors`` into at most ``num_clusters`` groups.

    Returns a list of clusters, each a list of vector indices.  Empty
    clusters are dropped.  Deterministic given ``seed``.
    """
    n = len(vectors)
    if n == 0:
        return []
    num_clusters = max(1, min(num_clusters, n))
    rng = random.Random(seed)
    centroids = _farthest_point_init(vectors, num_clusters, rng)
    assignment = [0] * n

    for _ in range(max(1, iterations)):
        changed = False
        for i, vec in enumerate(vectors):
            best_c, best_d = 0, None
            for c, centroid in enumerate(centroids):
                d = _sqdist(vec, centroid)
                if best_d is None or d < best_d:
                    best_c, best_d = c, d
            if assignment[i] != best_c:
                assignment[i] = best_c
                changed = True
        # Recompute centroids; keep the old centroid for empty clusters.
        sums = [None] * len(centroids)
        counts = [0] * len(centroids)
        for i, vec in enumerate(vectors):
            c = assignment[i]
            if sums[c] is None:
                sums[c] = list(vec)
            else:
                s = sums[c]
                for j, x in enumerate(vec):
                    s[j] += x
            counts[c] += 1
        for c, s in enumerate(sums):
            if s is not None:
                centroids[c] = [x / counts[c] for x in s]
        if not changed:
            break

    clusters = {}
    for i, c in enumerate(assignment):
        clusters.setdefault(c, []).append(i)
    return list(clusters.values())


def _sqdist(a, b):
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _farthest_point_init(vectors, num_clusters, rng):
    """Greedy k-center initialization (a deterministic kmeans++ cousin).

    Random initialization collapses when many vectors are identical
    (duplicate seeds leave clusters empty); picking each next centroid
    as the point farthest from the chosen ones guarantees distinct
    centroids whenever distinct vectors exist.
    """
    first = rng.randrange(len(vectors))
    centroids = [list(vectors[first])]
    min_dist = [_sqdist(v, centroids[0]) for v in vectors]
    while len(centroids) < num_clusters:
        best = max(range(len(vectors)), key=lambda i: min_dist[i])
        if min_dist[best] == 0.0:
            break  # fewer distinct vectors than requested clusters
        centroids.append(list(vectors[best]))
        for i, v in enumerate(vectors):
            d = _sqdist(v, centroids[-1])
            if d < min_dist[i]:
                min_dist[i] = d
    return centroids


def cluster_matches(units, center_index, num_clusters, strategy="kmeans",
                    iterations=10, seed=0, missing_distance=None):
    """Group census matches for simultaneous processing.

    Parameters
    ----------
    units:
        List of :class:`repro.census.base.CensusMatch`.
    center_index:
        A :class:`repro.census.centers.CenterIndex`; required for the
        'kmeans' strategy (its distances define the feature space).
    strategy:
        'kmeans' (OPT-CLUST), 'random' (RND-CLUST) or 'none' (NO-CLUST).

    Returns a list of clusters, each a list of unit indices.
    """
    n = len(units)
    if n == 0:
        return []
    if strategy == "none" or num_clusters >= n:
        return [[i] for i in range(n)]
    if strategy == "random":
        rng = random.Random(seed)
        order = list(range(n))
        rng.shuffle(order)
        num_clusters = max(1, num_clusters)
        clusters = [[] for _ in range(num_clusters)]
        for pos, i in enumerate(order):
            clusters[pos % num_clusters].append(i)
        return [c for c in clusters if c]
    if strategy == "kmeans":
        if not center_index:
            # Without centers there is no feature space; fall back to
            # processing matches independently.
            return [[i] for i in range(n)]
        if missing_distance is None:
            missing_distance = 2 * max(len(u.nodes) for u in units) + 16
        vectors = [
            center_index.feature_vector(sorted(u.nodes, key=repr), missing_distance)
            for u in units
        ]
        return kmeans(vectors, num_clusters, iterations=iterations, seed=seed)
    raise ValueError(f"unknown clustering strategy {strategy!r}")
