"""Multi-pattern census with shared neighborhood traversal.

Analyses routinely census *several* patterns over the same egos — the
paper's link-prediction experiment runs node, edge, and triangle counts
over identical neighborhoods, and the graphlet profiles run one query
per orbit.  Running ND-PVOT per pattern repeats the per-ego BFS once
per pattern; this module hoists it: one bounded BFS per focal node
serves every pattern's pivot index simultaneously.

Counts are identical to running :func:`repro.census.census` per pattern
(property-tested); the saving is a factor approaching the number of
patterns on BFS-dominated workloads.
"""

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.pmi import PatternMatchIndex
from repro.errors import CensusError
from repro.graph.traversal import bfs_layers


def multi_census(graph, patterns, k, focal_nodes=None, subpatterns=None,
                 matcher="cn"):
    """Census every pattern in one pass over the focal neighborhoods.

    Parameters
    ----------
    patterns:
        A list of :class:`repro.matching.Pattern` with distinct names.
    subpatterns:
        Optional ``{pattern_name: subpattern_name}`` for COUNTSP
        semantics on individual patterns.

    Returns
    -------
    ``{pattern_name: {focal_node: count}}``.
    """
    if not patterns:
        return {}
    names = [p.name for p in patterns]
    if len(set(names)) != len(names):
        raise CensusError(f"patterns must have distinct names, got {names}")
    subpatterns = subpatterns or {}

    # Per-pattern preparation: matches, pivot index, distance tables.
    prepared = []
    request = None
    for pattern in patterns:
        request = CensusRequest(graph, pattern, k, focal_nodes,
                                subpatterns.get(pattern.name))
        units = prepare_matches(request, matcher=matcher)
        if units:
            pivot, max_v, pivot_dists = containment_distances(request)
            pmi = PatternMatchIndex(units, pivot_var=pivot)
            distant = {
                i: [v for v, d in pivot_dists.items() if d >= i]
                for i in range(1, max_v + 1)
            }
        else:
            pmi, max_v, distant = None, 0, {}
        prepared.append((pattern.name, pmi, max_v, distant))
    focal = request.focal_nodes

    results = {name: {n: 0 for n in focal} for name, _p, _m, _d in prepared}
    active = [(name, pmi, max_v, distant)
              for name, pmi, max_v, distant in prepared if pmi is not None]
    if not active:
        return results

    for n in focal:
        hood = {}
        deferred = []
        totals = {name: 0 for name, _pmi, _m, _d in active}
        # One BFS serves every pattern.
        for n_prime, d in bfs_layers(graph, n, max_depth=k):
            hood[n_prime] = d
            for name, pmi, max_v, distant in active:
                anchored = pmi.matches_at(n_prime)
                if not anchored:
                    continue
                if d + max_v <= k:
                    totals[name] += len(anchored)
                else:
                    deferred.append((name, d, distant, anchored))
        for name, d, distant, anchored in deferred:
            need = distant.get(k - d + 1, ())
            for unit in anchored:
                if all(unit.match.image(v) in hood for v in need):
                    totals[name] += 1
        for name, total in totals.items():
            results[name][n] = total
    return results
