"""Incremental census maintenance under graph updates.

The paper's group followed this work with declarative analysis of
evolving/noisy networks; this module maintains a census result as the
graph changes, with work proportional to the affected region instead of
the whole graph.  Two structures are maintained:

- the **embedding set** (all match embeddings, kept in a dict with a
  per-node inverted index).  Updates touch it locally:

  - edge insertion: embeddings containing both endpoints are
    *revalidated* (a negated-edge constraint may now be violated), and
    new embeddings are found by *seeded matching* anchored on the new
    edge (every new match must use it);
  - edge deletion: embeddings containing both endpoints are
    revalidated (matches using the edge die), and for patterns with
    negated edges, embeddings newly enabled by the absence are found by
    seeding the negated edge's endpoints on the deleted pair;
  - attribute change: embeddings containing the node are revalidated
    (labels/predicates), and new embeddings through the node are found
    by node-seeded matching.

- the **counts**, refreshed only for focal nodes within the affected
  radius (``k``, widened by the pattern diameter when a subpattern lets
  matches extend beyond the neighborhood) via ND-PVOT over the
  maintained embeddings — no global re-matching ever happens after
  construction.

Correctness is property-tested against full recomputation on random
update sequences.
"""

from repro.census.nd_pvot import nd_pvot_census
from repro.errors import CensusError
from repro.graph.traversal import k_hop_nodes
from repro.matching import find_matches
from repro.matching.seeded import (
    matches_using_edge,
    matches_using_node,
    seeded_matches,
    validate_embedding,
)


def _key(match):
    return frozenset(match.mapping.items())


class IncrementalCensus:
    """A census result kept current under graph updates.

    Parameters mirror :func:`repro.census.census`.  Mutate the graph
    *through this class* (``add_edge`` / ``remove_edge`` / ``add_node``)
    so the maintained embeddings and counts stay in step.
    """

    def __init__(self, graph, pattern, k, focal_nodes=None, subpattern=None,
                 matcher="cn"):
        pattern.validate()
        self.graph = graph
        self.pattern = pattern
        self.k = k
        self.subpattern = subpattern
        self.matcher = matcher
        self._focal = list(focal_nodes) if focal_nodes is not None else None

        self._embeddings = {}
        self._by_node = {}
        for m in find_matches(graph, pattern, method=matcher, distinct=False):
            self._add_embedding(m)

        self.counts = self._census(focal=self._focal)
        self.refreshed_nodes = 0  # cumulative work statistic

    # ------------------------------------------------------------------
    # Embedding bookkeeping
    # ------------------------------------------------------------------
    def _add_embedding(self, match):
        key = _key(match)
        if key in self._embeddings:
            return
        self._embeddings[key] = match
        for node in match.mapping.values():
            self._by_node.setdefault(node, set()).add(key)

    def _drop_embedding(self, key):
        match = self._embeddings.pop(key, None)
        if match is None:
            return
        for node in match.mapping.values():
            bucket = self._by_node.get(node)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_node[node]

    def _revalidate_touching(self, nodes):
        """Re-check every embedding containing any of ``nodes``."""
        keys = set()
        for node in nodes:
            keys |= self._by_node.get(node, set())
        for key in keys:
            match = self._embeddings[key]
            if not validate_embedding(self.graph, self.pattern, match.mapping):
                self._drop_embedding(key)

    def num_embeddings(self):
        return len(self._embeddings)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_node(self, node, **attrs):
        """Add a node or update its attributes."""
        existed = self.graph.has_node(node)
        self.graph.add_node(node, **attrs)
        if not existed:
            # A brand-new isolated node can still host single-node
            # pattern matches.
            for m in matches_using_node(self.graph, self.pattern, node):
                self._add_embedding(m)
            if self._focal is None:
                self.counts[node] = 0
                self._refresh({node})
            return
        if attrs:
            self._revalidate_touching([node])
            for m in matches_using_node(self.graph, self.pattern, node):
                self._add_embedding(m)
            self._refresh(self._affected(node, node))

    def add_edge(self, u, v, **attrs):
        """Insert an edge (or merge attributes onto an existing one)."""
        existed = self.graph.has_edge(u, v)
        new_nodes = {x for x in (u, v) if not self.graph.has_node(x)}
        self.graph.add_edge(u, v, **attrs)
        if self._focal is None:
            for x in new_nodes:
                self.counts.setdefault(x, 0)

        if existed:
            if attrs:  # edge-attribute predicates may flip either way
                self._revalidate_touching([u, v])
                for m in matches_using_edge(self.graph, self.pattern, u, v):
                    self._add_embedding(m)
                self._refresh(self._affected(u, v))
            return

        # Negated-edge constraints may now be violated.
        if self.pattern.negative_edges():
            self._revalidate_touching([u, v])
        # Every genuinely new match uses the new edge.
        for m in matches_using_edge(self.graph, self.pattern, u, v):
            self._add_embedding(m)
        self._refresh(self._affected(u, v))

    def remove_edge(self, u, v):
        """Delete an edge and refresh the affected counts."""
        region = self._affected(u, v)  # pre-deletion adjacency
        self.graph.remove_edge(u, v)
        self._revalidate_touching([u, v])
        # Patterns with negated edges may gain matches where the deleted
        # pair realizes the forbidden edge.
        for e in self.pattern.negative_edges():
            for nu, nv in ((u, v), (v, u)):
                for m in seeded_matches(self.graph, self.pattern, {e.u: nu, e.v: nv}):
                    self._add_embedding(m)
        self._refresh(region | self._affected(u, v))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _affected(self, u, v):
        """Focal nodes whose count can see a change at (u, v).

        Without a subpattern, a changed match always contains the
        changed element, so radius ``k`` suffices; with a subpattern the
        match may extend beyond the containment set, so the radius
        widens by the pattern diameter.
        """
        radius = self.k
        if self.subpattern is not None:
            radius += self.pattern.diameter()
        region = set()
        for endpoint in {u, v}:
            if self.graph.has_node(endpoint):
                region |= k_hop_nodes(self.graph, endpoint, radius)
        if self._focal is not None:
            region &= set(self._focal)
        else:
            region &= set(self.counts)
        return region

    def _census(self, focal):
        return nd_pvot_census(
            self.graph, self.pattern, self.k, focal_nodes=focal,
            subpattern=self.subpattern, matcher=self.matcher,
            matches=list(self._embeddings.values()),
        )

    def _refresh(self, nodes):
        nodes = [n for n in nodes if self.graph.has_node(n)]
        if not nodes:
            return
        self.counts.update(self._census(focal=nodes))
        self.refreshed_nodes += len(nodes)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def count(self, node):
        try:
            return self.counts[node]
        except KeyError:
            raise CensusError(f"{node!r} is not a maintained focal node") from None

    def snapshot(self):
        """A copy of the current counts."""
        return dict(self.counts)

    def __getitem__(self, node):
        return self.count(node)

    def __len__(self):
        return len(self.counts)
