"""Approximate census evaluation (the paper's future work, Section VII).

For graphs where even one pass over all matches is too expensive, the
census can be *estimated* by match sampling: draw ``s`` matches
uniformly (without replacement) from the full match set ``M``, count
how many of the sample fall inside each ego's neighborhood, and scale
by ``|M| / s``.  The estimator is unbiased for every node; its standard
error follows the hypergeometric distribution and shrinks as the sample
grows, reaching zero at ``s = |M|`` (where the estimate is exact).

The per-node standard error estimate uses the normal approximation
``|M| * sqrt(p(1-p)/s * (1 - s/|M|))`` with ``p`` the sampled fraction.
"""

import math
import random

from repro.census.base import CensusRequest, prepare_matches
from repro.exec.budget import current_budget
from repro.graph.traversal import bfs_layer_sets


def approximate_census(graph, pattern, k, sample_size, focal_nodes=None,
                       subpattern=None, matcher="cn", seed=0,
                       with_stderr=False):
    """Sampling-based census estimate.

    Returns ``{node: estimate}`` (floats), or ``{node: (estimate,
    stderr)}`` when ``with_stderr`` is true.  With ``sample_size >=
    |M|`` the estimate is exact (stderr 0).
    """
    request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
    units = prepare_matches(request, matcher=matcher)
    total = len(units)
    focal = request.focal_nodes

    if total == 0 or sample_size <= 0:
        zero = (0.0, 0.0) if with_stderr else 0.0
        return {n: zero for n in focal}

    rng = random.Random(seed)
    s = min(sample_size, total)
    sample = rng.sample(units, s) if s < total else units
    scale = total / s

    budget = current_budget()
    hits = {n: 0 for n in focal}
    focal_set = set(focal)
    for unit in sample:
        coverage = None
        for m in unit.nodes:
            # Charge the budget layer by layer *inside* the k-hop
            # expansion (like the other census hot loops) so a deadline
            # is overshot by at most one BFS layer, never by a whole
            # hub neighborhood.
            reach = set()
            for layer in bfs_layer_sets(graph, m, max_depth=k):
                if budget is not None:
                    budget.tick(len(layer))
                reach |= layer
            coverage = reach if coverage is None else coverage & reach
            if not coverage:
                break
        if not coverage:
            continue
        for n in coverage & focal_set:
            hits[n] += 1

    if not with_stderr:
        return {n: hits[n] * scale for n in focal}

    fpc = max(0.0, 1.0 - s / total)  # finite population correction
    out = {}
    for n in focal:
        p = hits[n] / s
        stderr = total * math.sqrt(max(0.0, p * (1.0 - p)) / s * fpc)
        out[n] = (hits[n] * scale, stderr)
    return out


def sample_size_for_error(total_matches, target_stderr, worst_p=0.5):
    """Smallest sample size whose worst-case standard error is at or
    below ``target_stderr`` (ignoring the finite population correction,
    so the answer is conservative)."""
    if total_matches <= 0 or target_stderr <= 0:
        return max(0, total_matches)
    variance = worst_p * (1.0 - worst_p)
    s = math.ceil(variance * (total_matches / target_stderr) ** 2)
    return min(total_matches, max(1, s))
