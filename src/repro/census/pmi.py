"""Pattern match indexes (Section IV-A).

``PatternMatchIndex`` supports the two indexing modes the paper uses:

- *pivot mode* (ND-PVOT): each census match is indexed under the image
  of a designated pivot variable, so a BFS from a focal node can pull
  exactly the matches anchored at each visited node.
- *all-nodes mode* (ND-DIFF): each census match is indexed under every
  node of its containment set, so differential updates can find the
  matches touching a symmetric-difference region.
"""

from collections import defaultdict


class PatternMatchIndex:
    """Index from database nodes to the census matches anchored at them."""

    def __init__(self, units, pivot_var=None):
        """``units`` — list of :class:`repro.census.base.CensusMatch`.

        With ``pivot_var`` set, each unit is indexed once, under
        ``unit.match.image(pivot_var)``.  Without it, each unit is
        indexed under every node in ``unit.nodes``.
        """
        self.pivot_var = pivot_var
        self._buckets = defaultdict(list)
        self.num_units = len(units)
        if pivot_var is not None:
            for unit in units:
                self._buckets[unit.match.image(pivot_var)].append(unit)
        else:
            for unit in units:
                for node in unit.nodes:
                    self._buckets[node].append(unit)

    def matches_at(self, node):
        """Census matches anchored at ``node`` (empty list if none)."""
        return self._buckets.get(node, _EMPTY)

    def anchored_nodes(self):
        """Nodes with at least one anchored match."""
        return self._buckets.keys()

    def __len__(self):
        return self.num_units

    def __repr__(self):
        mode = f"pivot=?{self.pivot_var}" if self.pivot_var else "all-nodes"
        return f"<PatternMatchIndex {mode} units={self.num_units} anchors={len(self._buckets)}>"


_EMPTY = ()
