"""ND-DIFF: differential counting (Section IV-A.2, Algorithm 3).

Exploits overlap between the k-hop neighborhoods of successive focal
nodes.  Matches are found once globally and indexed by *every* node of
their containment set.  Focal nodes are then processed in an order that
keeps successive neighborhoods similar; moving from ``prev`` to
``current``:

1. matches touching ``N_k(prev) - N_k(current)`` are evicted, and
2. matches anchored in ``N_k(current) - N_k(prev)`` and fully contained
   in ``N_k(current)`` are admitted.

Matches entirely inside the shared region carry over for free.

Orders (the paper's §IV-A.2 discussion):

- ``'neighbor'`` (default) — walk chains of adjacent focal nodes,
  restarting from scratch when a chain dies out (Algorithm 3);
- ``'shingle'`` — sort focal nodes by a min-hash (shingle) of their
  neighborhoods, so nodes with similar neighborhoods are adjacent in
  the order (the heuristic of Chierichetti et al. the paper tried;
  they found it performed the same as neighbor chains);
- ``'given'`` — process focal nodes exactly in the order supplied.
"""

from repro.census.base import CensusRequest, prepare_matches
from repro.census.pmi import PatternMatchIndex
from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.graph.traversal import k_hop_nodes
from repro.obs import current_obs

_SHINGLE_SALT = 0x9E3779B9


def _shingle(graph, node):
    """Min-hash of the closed 1-hop neighborhood of ``node``."""
    best = hash((node, _SHINGLE_SALT))
    for nbr in graph.neighbors(node):
        h = hash((nbr, _SHINGLE_SALT))
        if h < best:
            best = h
    return best


def nd_diff_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn",
                   order="neighbor", matches=None):
    """Per-node census by differential counting.

    ``matches`` adopts an existing global match list instead of running
    the matcher (one matching pass amortized over many census calls —
    see :mod:`repro.census.parallel`).
    """
    if order not in ("neighbor", "shingle", "given"):
        raise ValueError(f"unknown ND-DIFF order {order!r}")
    obs = current_obs()
    with obs.span("census.nd_diff", k=k, pattern=pattern.name, order=order):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            return counts
        pmi = PatternMatchIndex(units)

        stats = {"restarts": 0, "diff_steps": 0}
        if order == "neighbor":
            counts = _neighbor_chain(graph, request, pmi, counts, stats)
        else:
            if order == "shingle":
                sequence = sorted(
                    request.focal_nodes, key=lambda n: (_shingle(graph, n), repr(n))
                )
            else:
                sequence = list(request.focal_nodes)
            counts = _sequential(graph, request, pmi, counts, sequence, stats)
        if obs.enabled:
            obs.add("census.nd_diff.restarts", stats["restarts"])
            obs.add("census.nd_diff.diff_steps", stats["diff_steps"])
        return counts


def _compute_from_scratch(graph, k, pmi, node):
    fault_point("census.bfs")
    hood = k_hop_nodes(graph, node, k)
    budget = current_budget()
    if budget is not None:
        budget.tick(len(hood))
    ids = {
        unit.index
        for n in hood
        for unit in pmi.matches_at(n)
        if unit.nodes <= hood
    }
    return hood, ids


def _differential_step(graph, k, pmi, current, prev_hood, prev_ids):
    fault_point("census.bfs")
    hood = k_hop_nodes(graph, current, k)
    budget = current_budget()
    if budget is not None:
        budget.tick(len(hood))
    entering = hood - prev_hood
    leaving = prev_hood - hood
    ids = set(prev_ids)
    for n in leaving:
        for unit in pmi.matches_at(n):
            ids.discard(unit.index)
    for n in entering:
        for unit in pmi.matches_at(n):
            if unit.index not in ids and unit.nodes <= hood:
                ids.add(unit.index)
    return hood, ids


def _sequential(graph, request, pmi, counts, sequence, stats):
    """Differential counting along an arbitrary node sequence."""
    k = request.k
    prev_hood = prev_ids = None
    for current in sequence:
        if prev_hood is None:
            stats["restarts"] += 1
            prev_hood, prev_ids = _compute_from_scratch(graph, k, pmi, current)
        else:
            stats["diff_steps"] += 1
            prev_hood, prev_ids = _differential_step(
                graph, k, pmi, current, prev_hood, prev_ids
            )
        counts[current] = len(prev_ids)
    return counts


def _neighbor_chain(graph, request, pmi, counts, stats):
    """Algorithm 3: chains of adjacent focal nodes with restarts."""
    k = request.k
    todo = set(request.focal_nodes)
    restart_order = list(request.focal_nodes)
    restart_pos = 0

    prev = None
    prev_hood = None
    prev_ids = None

    while todo:
        if prev is None:
            while restart_order[restart_pos] not in todo:
                restart_pos += 1
            current = restart_order[restart_pos]
        else:
            current = next((x for x in graph.neighbors(prev) if x in todo), None)
            if current is None:
                prev = None
                continue
        todo.discard(current)

        if prev is None:
            stats["restarts"] += 1
            hood, ids = _compute_from_scratch(graph, k, pmi, current)
        else:
            stats["diff_steps"] += 1
            hood, ids = _differential_step(graph, k, pmi, current, prev_hood, prev_ids)
        counts[current] = len(ids)
        prev, prev_hood, prev_ids = current, hood, ids
    return counts
