"""Ego-centric pattern census evaluation algorithms (Section IV).

Node-driven (start from focal nodes, search their neighborhoods):

- :func:`nd_bas_census` — extract ``S(n, k)`` per node and match inside;
  the paper's correctness baseline, "computationally infeasible" at scale.
- :func:`nd_diff_census` — differential counting along chains of
  neighboring focal nodes (GADDI-style shared-neighborhood reuse).
- :func:`nd_pvot_census` — pivot indexing: one global pattern-match pass,
  a pattern-match index keyed by a min-eccentricity pivot, and
  distance-arithmetic short-circuits for containment checks.

Pattern-driven (start from matches, find the nodes that contain them):

- :func:`pt_bas_census` — independent per-match BFS from every match node.
- :func:`pt_opt_census` — simultaneous traversal + distance shortcuts +
  best-first bucket-queue ordering + center-based expansion + K-means
  match clustering (the paper's PT-OPT).  ``PTOptions(order="random")``
  yields PT-RND; other toggles ablate individual optimizations.

All algorithms share one signature and one result shape
(``{focal_node: count}``) and agree exactly — property tests enforce it.
"""

from repro.census.approx import approximate_census, sample_size_for_error
from repro.census.base import CensusMatch, CensusRequest, prepare_matches
from repro.census.incremental import IncrementalCensus
from repro.census.multi import multi_census
from repro.census.centers import CenterIndex, select_centers
from repro.census.clustering import cluster_matches, kmeans
from repro.census.nd_bas import nd_bas_census
from repro.census.nd_diff import nd_diff_census
from repro.census.nd_pvot import nd_pvot_census
from repro.census.pairwise import pairwise_census
from repro.census.parallel import chunk_focal_nodes, default_workers, parallel_census
from repro.census.planner import choose_algorithm
from repro.census.pmi import PatternMatchIndex
from repro.census.pt_bas import pt_bas_census
from repro.census.pt_opt import PTOptions, pt_opt_census, pt_rnd_census
from repro.census.topk import census_topk

ALGORITHMS = {
    "nd-bas": nd_bas_census,
    "nd-diff": nd_diff_census,
    "nd-pvot": nd_pvot_census,
    "pt-bas": pt_bas_census,
    "pt-opt": pt_opt_census,
    "pt-rnd": pt_rnd_census,
}


def census(graph, pattern, k, focal_nodes=None, subpattern=None, algorithm="auto",
           workers=1, **options):
    """Count matches of ``pattern`` in every focal node's k-hop neighborhood.

    Parameters
    ----------
    graph, pattern, k:
        The database graph, the pattern to count, and the neighborhood
        radius (``k >= 0``).
    focal_nodes:
        Iterable of nodes to report counts for (default: every node).
    subpattern:
        Name of a subpattern of ``pattern``; when given, only the
        subpattern's image must fall inside the neighborhood
        (the ``COUNTSP`` semantics).
    algorithm:
        One of ``"auto"``, ``"nd-bas"``, ``"nd-diff"``, ``"nd-pvot"``,
        ``"pt-bas"``, ``"pt-opt"``, ``"pt-rnd"``.
    workers:
        Number of parallel workers for the counting phase.  ``1``
        (the default) runs the classic serial algorithm; larger values
        (or ``None`` for the CPU count) chunk the focal nodes across a
        worker pool via :func:`repro.census.parallel.parallel_census`
        (pass ``executor=`` / ``chunks=`` to tune it).

    Returns
    -------
    dict mapping each focal node to its count (zeros included).
    """
    if algorithm == "auto":
        algorithm = choose_algorithm(
            graph, pattern, k, focal_nodes, subpattern, workers=workers
        )
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown census algorithm {algorithm!r}; expected one of "
            f"{sorted(ALGORITHMS)} or 'auto'"
        )
    if workers is None or workers > 1:
        return parallel_census(
            graph, pattern, k, focal_nodes=focal_nodes, subpattern=subpattern,
            algorithm=algorithm, workers=workers, **options
        )
    fn = ALGORITHMS[algorithm]
    return fn(graph, pattern, k, focal_nodes=focal_nodes, subpattern=subpattern, **options)


__all__ = [
    "census",
    "ALGORITHMS",
    "CensusMatch",
    "CensusRequest",
    "prepare_matches",
    "PatternMatchIndex",
    "CenterIndex",
    "select_centers",
    "cluster_matches",
    "kmeans",
    "nd_bas_census",
    "nd_diff_census",
    "nd_pvot_census",
    "pt_bas_census",
    "pt_opt_census",
    "pt_rnd_census",
    "PTOptions",
    "pairwise_census",
    "parallel_census",
    "chunk_focal_nodes",
    "default_workers",
    "choose_algorithm",
    "census_topk",
    "approximate_census",
    "sample_size_for_error",
    "IncrementalCensus",
    "multi_census",
]
