"""ND-PVOT: pivot indexing (Section IV-A.1, Algorithm 2).

One global matching pass builds the match set; a pattern match index
keyed on a *pivot* variable (the containment variable of minimum
eccentricity among containment variables) lets a BFS from each focal
node pull only the matches anchored at visited nodes.  Containment
checks are then short-circuited with distance arithmetic:

- if ``d(n, n') + max_v <= k``, every anchored match is fully inside
  ``S(n, k)`` — add ``|PMI_v(n')|`` wholesale;
- otherwise only the match nodes whose pattern distance from the pivot
  exceeds ``k - d(n, n')`` need an explicit membership test, because
  pattern distances upper-bound graph distances between match nodes.
"""

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.pmi import PatternMatchIndex
from repro.graph.traversal import bfs_layers
from repro.obs import current_obs


def nd_pvot_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn",
                   pivot_var=None, collect_stats=None, matches=None):
    """Per-node census by pivot indexing (the paper's best node-driven
    algorithm).

    ``pivot_var`` overrides the min-eccentricity pivot (used by the
    pivot-selection ablation benchmark).  ``collect_stats``, if a dict,
    receives counters for bulk-added vs explicitly-checked matches.
    ``matches`` adopts an existing global match list instead of running
    the matcher (callers such as top-k evaluation amortize one matching
    pass over many census calls).
    """
    obs = current_obs()
    with obs.span("census.nd_pvot", k=k, pattern=pattern.name):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            return counts

        auto_pivot, max_v, pivot_dists = containment_distances(request)
        if pivot_var is None:
            pivot_var = auto_pivot
        else:
            if pivot_var not in request.containment_vars():
                raise ValueError(f"pivot ?{pivot_var} is not a containment variable")
            dists = pattern.distances()[pivot_var]
            pivot_dists = {y: dists[y] for y in request.containment_vars()}
            max_v = max(pivot_dists.values())

        pmi = PatternMatchIndex(units, pivot_var=pivot_var)

        # distant[i] = containment variables at pattern distance >= i from the
        # pivot; only their images need explicit checks when the BFS frontier
        # is i-or-more hops short of guaranteeing containment.
        distant = {
            i: [v for v, d in pivot_dists.items() if d >= i]
            for i in range(1, max_v + 1)
        }

        bulk = checked = visited = 0
        for n in request.focal_nodes:
            total = 0
            hood = {}
            deferred = []
            for n_prime, d in bfs_layers(graph, n, max_depth=k):
                visited += 1
                hood[n_prime] = d
                anchored = pmi.matches_at(n_prime)
                if not anchored:
                    continue
                if d + max_v <= k:
                    total += len(anchored)
                    bulk += len(anchored)
                else:
                    deferred.append((d, anchored))
            # Explicit checks need the complete N_k(n), so they run after the
            # BFS has finished.
            for d, anchored in deferred:
                need = distant.get(k - d + 1, ())
                for unit in anchored:
                    checked += 1
                    if all(unit.match.image(v) in hood for v in need):
                        total += 1
            counts[n] = total
        if collect_stats is not None:
            collect_stats["bulk_added"] = bulk
            collect_stats["explicitly_checked"] = checked
            collect_stats["bfs_visited"] = visited
            collect_stats["pivot"] = pivot_var
            collect_stats["max_v"] = max_v
        if obs.enabled:
            # checks avoided = matches added wholesale via distance arithmetic.
            obs.add("census.nd_pvot.bulk_added", bulk)
            obs.add("census.nd_pvot.containment_checks", checked)
            obs.add("census.nd_pvot.bfs_expansions", visited)
        return counts
