"""ND-PVOT: pivot indexing (Section IV-A.1, Algorithm 2).

One global matching pass builds the match set; a pattern match index
keyed on a *pivot* variable (the containment variable of minimum
eccentricity among containment variables) lets a BFS from each focal
node pull only the matches anchored at visited nodes.  Containment
checks are then short-circuited with distance arithmetic:

- if ``d(n, n') + max_v <= k``, every anchored match is fully inside
  ``S(n, k)`` — add ``|PMI_v(n')|`` wholesale;
- otherwise only the match nodes whose pattern distance from the pivot
  exceeds ``k - d(n, n')`` need an explicit membership test, because
  pattern distances upper-bound graph distances between match nodes.
"""

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.indexed import pvot_indexed_counts
from repro.census.pmi import PatternMatchIndex
from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.graph.traversal import bfs_layer_sets
from repro.obs import current_obs


def nd_pvot_census(graph, pattern, k, focal_nodes=None, subpattern=None, matcher="cn",
                   pivot_var=None, collect_stats=None, matches=None):
    """Per-node census by pivot indexing (the paper's best node-driven
    algorithm).

    ``pivot_var`` overrides the min-eccentricity pivot (used by the
    pivot-selection ablation benchmark).  ``collect_stats``, if a dict,
    receives counters for bulk-added vs explicitly-checked matches.
    ``matches`` adopts an existing global match list instead of running
    the matcher (callers such as top-k evaluation amortize one matching
    pass over many census calls).
    """
    obs = current_obs()
    with obs.span("census.nd_pvot", k=k, pattern=pattern.name):
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        counts = request.zero_counts()
        units = prepare_matches(request, matcher=matcher, matches=matches)
        if not units:
            return counts

        auto_pivot, max_v, pivot_dists = containment_distances(request)
        if pivot_var is None:
            pivot_var = auto_pivot
        else:
            if pivot_var not in request.containment_vars():
                raise ValueError(f"pivot ?{pivot_var} is not a containment variable")
            dists = pattern.distances()[pivot_var]
            pivot_dists = {y: dists[y] for y in request.containment_vars()}
            max_v = max(pivot_dists.values())

        pmi = PatternMatchIndex(units, pivot_var=pivot_var)

        # The images of containment variables at pattern distance >= 1
        # from the pivot, sorted by decreasing distance: an explicit
        # check for a frontier d hops short only tests images whose
        # pivot distance reaches the threshold ``k - d + 1``, and with
        # the images distance-sorted that is a prefix of the tuple —
        # ``prefix_at[d]`` images, precomputed per deferred depth.
        far_vars = [(dv, v) for v, dv in pivot_dists.items() if dv >= 1]
        far_vars.sort(key=lambda p: -p[0])
        far_names = [v for _, v in far_vars]
        # Layers at depth <= k - max_v are guaranteed fully contained;
        # their anchored matches are added wholesale, no checks.
        bulk_depth = k - max_v
        prefix_at = {
            d: sum(1 for dv, _ in far_vars if dv >= k - d + 1)
            for d in range(max(bulk_depth + 1, 0), k + 1)
        }

        # The vectorized kernel processes every focal node in one shot
        # with no cooperative checkpoints; under an active budget the
        # per-node loop below runs instead so deadlines are honored at
        # focal/BFS-layer granularity.
        budget = current_budget()
        indexed = None
        if budget is None:
            indexed = pvot_indexed_counts(
                graph, request.focal_nodes, pmi, far_names, k, bulk_depth, prefix_at
            )
        if indexed is not None:
            counts.update(indexed.counts)
            bulk, checked, visited = indexed.bulk, indexed.checked, indexed.visited
        else:
            # Per anchor node, the far-image tuples of its anchored units
            # (aligned with pmi.matches_at order): the containment loop
            # walks plain tuples, no per-unit indirection.
            matches_at = pmi.matches_at
            images_at = {
                n_prime: [
                    tuple(unit.match.mapping[v] for v in far_names)
                    for unit in matches_at(n_prime)
                ]
                for n_prime in pmi.anchored_nodes()
            }
            anchors = set(images_at)
            n_far = len(far_names)

            bulk = checked = visited = 0
            for n in request.focal_nodes:
                fault_point("census.bfs")
                total = 0
                hood = set()
                deferred = []
                for d, layer in enumerate(bfs_layer_sets(graph, n, max_depth=k)):
                    if budget is not None:
                        budget.tick(len(layer))
                    visited += len(layer)
                    hood |= layer
                    hits = layer & anchors
                    if not hits:
                        continue
                    if d <= bulk_depth:
                        for n_prime in hits:
                            added = len(images_at[n_prime])
                            total += added
                            bulk += added
                    else:
                        for n_prime in hits:
                            deferred.append((d, images_at[n_prime]))
                # Explicit checks need the complete N_k(n), so they run
                # after the BFS has finished.
                for d, image_tuples in deferred:
                    m = prefix_at[d]
                    checked += len(image_tuples)
                    if budget is not None:
                        budget.tick(len(image_tuples))
                    if m == n_far:
                        for images in image_tuples:
                            for image in images:
                                if image not in hood:
                                    break
                            else:
                                total += 1
                    else:
                        for images in image_tuples:
                            for image in images[:m]:
                                if image not in hood:
                                    break
                            else:
                                total += 1
                counts[n] = total
        if collect_stats is not None:
            collect_stats["bulk_added"] = bulk
            collect_stats["explicitly_checked"] = checked
            collect_stats["bfs_visited"] = visited
            collect_stats["pivot"] = pivot_var
            collect_stats["max_v"] = max_v
        if obs.enabled:
            # checks avoided = matches added wholesale via distance arithmetic.
            obs.add("census.nd_pvot.bulk_added", bulk)
            obs.add("census.nd_pvot.containment_checks", checked)
            obs.add("census.nd_pvot.bfs_expansions", visited)
        return counts
