"""Parallel census execution: focal-node chunks over a shared snapshot.

A census is embarrassingly parallel in its focal nodes: every algorithm
returns ``{focal_node: count}`` and focal subsets partition the work.
:func:`parallel_census` chunks the focal list contiguously, runs one
census call per chunk on a pool of workers, and merges the per-chunk
counts and observability counters deterministically (chunks are merged
in chunk order regardless of completion order).

Execution modes:

- ``"process"`` — ``concurrent.futures.ProcessPoolExecutor``.  The
  graph is shipped to each worker once, via the pool initializer;
  :class:`repro.graph.csr.CSRGraph` snapshots are built for exactly
  this (pickling keeps only the canonical arrays and rebuilds derived
  caches lazily), so prefer ``freeze()``-ing the graph first.
- ``"thread"`` — ``ThreadPoolExecutor``.  GIL-bound for the pure-Python
  loops, useful for tests and for numpy-heavy paths that release the
  GIL; also the automatic fallback when process pools are unavailable.
- ``"serial"`` — run the chunks in-process, one after another (the
  degenerate pool; ``workers=1`` uses it automatically).

The matching pass is *not* parallelized: matches are found once in the
parent (for every algorithm that supports ``matches=`` adoption) and
shared with all chunks, so adding workers scales the per-focal-node
counting phase — the part the paper's algorithms differ on.
"""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.census.base import CensusRequest
from repro.errors import CensusError
from repro.matching import find_matches
from repro.obs import ObsContext, current_obs

# nd-bas matches inside each extracted ego subgraph, so there is no
# global match list to share; every other algorithm adopts ``matches=``.
_ADOPTS_MATCHES = {"nd-pvot", "nd-diff", "pt-bas", "pt-opt", "pt-rnd"}

# Worker-process state, installed once per worker by _init_worker.
_WORKER = {}


def chunk_focal_nodes(focal_nodes, chunks):
    """Split ``focal_nodes`` into ``chunks`` contiguous, near-equal parts.

    Contiguity matters: census algorithms (ND-DIFF especially) exploit
    locality between successive focal nodes, and contiguous slices of a
    node ordering preserve it.  Returns only non-empty chunks.
    """
    focal = list(focal_nodes)
    if chunks <= 0:
        raise CensusError(f"chunk count must be positive, got {chunks}")
    size, extra = divmod(len(focal), chunks)
    out = []
    pos = 0
    for i in range(chunks):
        take = size + (1 if i < extra else 0)
        if take:
            out.append(focal[pos:pos + take])
            pos += take
    return out


def _run_chunk_inline(graph, pattern, k, algorithm_fn, chunk, subpattern,
                      matcher, matches, options):
    """Run one chunk under a private ObsContext; return (counts, counters)."""
    import time

    ctx = ObsContext()
    start = time.perf_counter()
    with ctx:
        kwargs = dict(options)
        if matches is not None:
            kwargs["matches"] = matches
        counts = algorithm_fn(
            graph, pattern, k, focal_nodes=chunk, subpattern=subpattern,
            matcher=matcher, **kwargs
        )
    elapsed = time.perf_counter() - start
    counters = dict(ctx.registry.snapshot()["counters"])
    return counts, counters, elapsed


def _init_worker(payload):
    """Process-pool initializer: unpack the shared census state once."""
    (graph, pattern, k, subpattern, matcher, algorithm, matches, options) = (
        pickle.loads(payload)
    )
    from repro.census import ALGORITHMS

    _WORKER["args"] = (
        graph, pattern, k, ALGORITHMS[algorithm], subpattern, matcher,
        matches, options,
    )


def _run_chunk_in_worker(chunk):
    """Process-pool task: run one focal chunk against the shared state."""
    graph, pattern, k, fn, subpattern, matcher, matches, options = _WORKER["args"]
    return _run_chunk_inline(
        graph, pattern, k, fn, chunk, subpattern, matcher, matches, options
    )


def default_workers():
    """Worker count used for ``workers=None``: the CPU count, capped."""
    return min(os.cpu_count() or 1, 8)


def parallel_census(graph, pattern, k, focal_nodes=None, subpattern=None,
                    algorithm="nd-pvot", matcher="cn", workers=None,
                    executor="process", chunks=None, matches=None, **options):
    """Count matches of ``pattern`` around every focal node, in parallel.

    Parameters beyond :func:`repro.census.census`:

    workers:
        Worker count (``None`` → :func:`default_workers`).  ``1`` runs
        the chunks serially in-process.
    executor:
        ``"process"``, ``"thread"``, or ``"serial"``.  Process pools
        fall back to threads when the platform cannot fork/spawn.
    chunks:
        Number of focal chunks (default: one per worker).
    matches:
        Adopt an existing global match list.  When omitted, matching
        runs once in the parent and is shared with every chunk (except
        for ``nd-bas``, which has no global matching pass).

    Returns ``{focal_node: count}``, identical to the serial census.
    """
    from repro.census import ALGORITHMS

    if algorithm not in ALGORITHMS:
        raise CensusError(
            f"unknown census algorithm {algorithm!r}; expected one of "
            f"{sorted(ALGORITHMS)}"
        )
    fn = ALGORITHMS[algorithm]
    obs = current_obs()
    with obs.span("census.parallel", algorithm=algorithm, k=k) as span:
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        if workers is None:
            workers = default_workers()
        workers = max(1, int(workers))
        if chunks is None:
            chunks = workers
        focal_chunks = chunk_focal_nodes(request.focal_nodes, chunks)
        if not focal_chunks:
            return {}

        if matches is None and algorithm in _ADOPTS_MATCHES:
            # One matching pass, shared by every chunk.  Subpattern
            # censuses need raw (non-distinct) embeddings, mirroring
            # prepare_matches.
            distinct = subpattern is None
            matches = find_matches(graph, pattern, method=matcher, distinct=distinct)

        workers = min(workers, len(focal_chunks))
        if workers <= 1 or len(focal_chunks) == 1:
            executor = "serial"

        results = _execute(
            executor, workers, graph, pattern, k, fn, algorithm, focal_chunks,
            subpattern, matcher, matches, options,
        )

        counts = {}
        merged = {}
        chunk_seconds = []
        for chunk_counts, counters, elapsed in results:
            counts.update(chunk_counts)
            chunk_seconds.append(elapsed)
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        if obs.enabled:
            for name in sorted(merged):
                obs.add(name, merged[name])
            obs.add("census.parallel.chunks", len(focal_chunks))
            obs.add("census.parallel.workers", workers)
            for elapsed in chunk_seconds:
                obs.observe("census.parallel.chunk_seconds", elapsed)
            span.set("chunks", len(focal_chunks))
            span.set("workers", workers)
        return counts


def _execute(executor, workers, graph, pattern, k, fn, algorithm, focal_chunks,
             subpattern, matcher, matches, options):
    """Run the chunks on the requested executor, in chunk order."""
    if executor == "serial":
        return [
            _run_chunk_inline(
                graph, pattern, k, fn, chunk, subpattern, matcher, matches, options
            )
            for chunk in focal_chunks
        ]
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk_inline, graph, pattern, k, fn, chunk,
                    subpattern, matcher, matches, options,
                )
                for chunk in focal_chunks
            ]
            return [f.result() for f in futures]
    if executor == "process":
        payload = pickle.dumps(
            (graph, pattern, k, subpattern, matcher, algorithm, matches, options)
        )
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker, initargs=(payload,)
            ) as pool:
                futures = [
                    pool.submit(_run_chunk_in_worker, chunk)
                    for chunk in focal_chunks
                ]
                return [f.result() for f in futures]
        except (OSError, PermissionError):
            # Sandboxes without fork/spawn: degrade to threads.
            return _execute(
                "thread", workers, graph, pattern, k, fn, algorithm,
                focal_chunks, subpattern, matcher, matches, options,
            )
    raise CensusError(
        f"unknown executor {executor!r}; expected 'process', 'thread', or 'serial'"
    )
