"""Parallel census execution: focal-node chunks over a shared snapshot.

A census is embarrassingly parallel in its focal nodes: every algorithm
returns ``{focal_node: count}`` and focal subsets partition the work.
:func:`parallel_census` chunks the focal list contiguously, runs one
census call per chunk on a pool of workers, and merges the per-chunk
counts and observability counters deterministically (chunks are merged
in chunk order regardless of completion order).

Execution modes:

- ``"process"`` — ``concurrent.futures.ProcessPoolExecutor``.  The
  graph is shipped to each worker once, via the pool initializer;
  :class:`repro.graph.csr.CSRGraph` snapshots are built for exactly
  this (pickling keeps only the canonical arrays and rebuilds derived
  caches lazily), so prefer ``freeze()``-ing the graph first.
- ``"thread"`` — ``ThreadPoolExecutor``.  GIL-bound for the pure-Python
  loops, useful for tests and for numpy-heavy paths that release the
  GIL; also the automatic fallback when process pools are unavailable.
- ``"serial"`` — run the chunks in-process, one after another (the
  degenerate pool; ``workers=1`` uses it automatically).

The matching pass is *not* parallelized: matches are found once in the
parent (for every algorithm that supports ``matches=`` adoption) and
shared with all chunks, so adding workers scales the per-focal-node
counting phase — the part the paper's algorithms differ on.

Resource governance and fault tolerance:

- an ambient :class:`repro.exec.budget.ExecutionBudget` in the parent is
  shipped to thread and process chunks as a :meth:`spec` (serial chunks
  see the parent's live budget directly), so a deadline governs every
  executor mode;
- an armed :class:`repro.exec.faults.FaultPlan` travels to process
  workers (hit counters reset per process) and workers are tagged via
  :func:`repro.exec.faults.mark_worker_process`;
- a chunk lost to a dead worker (``BrokenProcessPool``) is retried
  *serially in the parent* — worker-scoped faults do not fire there —
  so counts converge to the serial result even when every worker dies;
- the process pool is always shut down (``cancel_futures=True``), even
  when a chunk raises, so no worker processes leak.
"""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext

from repro.census.base import CensusRequest
from repro.errors import CensusError
from repro.exec.budget import ExecutionBudget, activate_budget, current_budget
from repro.exec.faults import active_plan, arm_process, fault_point, mark_worker_process
from repro.matching import find_matches
from repro.obs import ObsContext, Span, current_obs, detach_spans

# nd-bas matches inside each extracted ego subgraph, so there is no
# global match list to share; every other algorithm adopts ``matches=``.
_ADOPTS_MATCHES = {"nd-pvot", "nd-diff", "pt-bas", "pt-opt", "pt-rnd"}

# collect_stats keys that describe the census plan rather than count
# work; every chunk reports the same value, so merging keeps the first
# instead of summing.
_PLAN_STATS = {"pivot", "max_v"}

# Worker-process state, installed once per worker by _init_worker.
_WORKER = {}


def chunk_focal_nodes(focal_nodes, chunks):
    """Split ``focal_nodes`` into ``chunks`` contiguous, near-equal parts.

    Contiguity matters: census algorithms (ND-DIFF especially) exploit
    locality between successive focal nodes, and contiguous slices of a
    node ordering preserve it.  Returns only non-empty chunks.
    """
    focal = list(focal_nodes)
    if chunks <= 0:
        raise CensusError(f"chunk count must be positive, got {chunks}")
    size, extra = divmod(len(focal), chunks)
    out = []
    pos = 0
    for i in range(chunks):
        take = size + (1 if i < extra else 0)
        if take:
            out.append(focal[pos:pos + take])
            pos += take
    return out


def _run_chunk_inline(graph, pattern, k, algorithm_fn, chunk, subpattern,
                      matcher, matches, options, want_stats,
                      budget_spec=None):
    """Run one chunk under a private ObsContext.

    Returns ``(counts, counters, elapsed, stats, spans)``; ``stats`` is
    the chunk's private ``collect_stats`` dict (``None`` unless
    requested) and ``spans`` the chunk's serialized span roots
    (:meth:`~repro.obs.trace.Span.to_dict` documents, so they survive
    the process boundary).  A mutable dict from the caller cannot be
    written to directly — it would never cross a process boundary, and
    successive chunks would overwrite each other — so each chunk fills
    a fresh one and the parent merges them.  ``detach_spans`` suspends
    any open parent span for the same reason: a serial (same-thread)
    chunk must record into its private context exactly like a pool
    worker, so the parent can stitch every executor's chunks uniformly.

    ``budget_spec`` rebuilds and activates a fresh budget around the
    chunk (thread and process chunks do not see the parent's ambient
    contextvar); ``None`` leaves the ambient budget — the parent's own,
    for serial chunks — in force.
    """
    import time

    fault_point("parallel.chunk")
    governed = (
        activate_budget(ExecutionBudget.from_spec(budget_spec))
        if budget_spec is not None
        else nullcontext()
    )
    ctx = ObsContext()
    start = time.perf_counter()
    with governed, detach_spans(), ctx:
        kwargs = dict(options)
        if matches is not None:
            kwargs["matches"] = matches
        stats = None
        if want_stats:
            stats = {}
            kwargs["collect_stats"] = stats
        counts = algorithm_fn(
            graph, pattern, k, focal_nodes=chunk, subpattern=subpattern,
            matcher=matcher, **kwargs
        )
    elapsed = time.perf_counter() - start
    counters = dict(ctx.registry.snapshot()["counters"])
    spans = [root.to_dict() for root in ctx.roots]
    return counts, counters, elapsed, stats, spans


def _merge_stats(target, chunk_stats):
    """Merge per-chunk ``collect_stats`` dicts into the caller's dict.

    Work counters (numeric values) sum across chunks; plan-describing
    keys and non-numeric values are identical per chunk, so the first
    occurrence wins.
    """
    for stats in chunk_stats:
        for key, value in stats.items():
            if (key in _PLAN_STATS or isinstance(value, bool)
                    or not isinstance(value, (int, float))):
                target.setdefault(key, value)
            else:
                target[key] = target.get(key, 0) + value


def _init_worker(payload):
    """Process-pool initializer: unpack the shared census state once.

    Also tags the process as a pool worker (worker-scoped faults fire
    here and nowhere else) and re-arms the parent's fault plan with
    fresh per-process hit counters.
    """
    (graph, pattern, k, subpattern, matcher, algorithm, matches, options,
     want_stats, budget_spec, fault_plan) = pickle.loads(payload)
    from repro.census import ALGORITHMS

    mark_worker_process()
    if fault_plan is not None:
        arm_process(fault_plan)
    _WORKER["args"] = (
        graph, pattern, k, ALGORITHMS[algorithm], subpattern, matcher,
        matches, options, want_stats,
    )
    _WORKER["budget_spec"] = budget_spec


def _run_chunk_in_worker(chunk):
    """Process-pool task: run one focal chunk against the shared state."""
    (graph, pattern, k, fn, subpattern, matcher, matches, options,
     want_stats) = _WORKER["args"]
    return _run_chunk_inline(
        graph, pattern, k, fn, chunk, subpattern, matcher, matches, options,
        want_stats, budget_spec=_WORKER["budget_spec"],
    )


def default_workers():
    """Worker count used for ``workers=None``: the CPU count, capped."""
    return min(os.cpu_count() or 1, 8)


def parallel_census(graph, pattern, k, focal_nodes=None, subpattern=None,
                    algorithm="nd-pvot", matcher="cn", workers=None,
                    executor="process", chunks=None, matches=None, **options):
    """Count matches of ``pattern`` around every focal node, in parallel.

    Parameters beyond :func:`repro.census.census`:

    workers:
        Worker count (``None`` → :func:`default_workers`).  ``1`` runs
        the chunks serially in-process.
    executor:
        ``"process"``, ``"thread"``, or ``"serial"``.  Process pools
        fall back to threads when the platform cannot fork/spawn.
    chunks:
        Number of focal chunks (default: one per worker).
    matches:
        Adopt an existing global match list.  When omitted, matching
        runs once in the parent and is shared with every chunk (except
        for ``nd-bas``, which has no global matching pass).

    A ``collect_stats`` dict in ``options`` works as in the serial
    census: each chunk fills a private dict and the merged totals
    (numeric stats summed, plan-describing keys like ``pivot`` kept)
    land in the caller's dict after all chunks finish.

    Returns ``{focal_node: count}``, identical to the serial census.
    """
    from repro.census import ALGORITHMS

    if algorithm not in ALGORITHMS:
        raise CensusError(
            f"unknown census algorithm {algorithm!r}; expected one of "
            f"{sorted(ALGORITHMS)}"
        )
    fn = ALGORITHMS[algorithm]
    # A caller-supplied collect_stats dict cannot be shared with the
    # chunks (it would not survive pickling, and chunks would clobber
    # each other's keys); each chunk fills its own and they merge back
    # into the caller's dict at the end.
    collect_stats = options.pop("collect_stats", None)
    obs = current_obs()
    with obs.span("census.parallel", algorithm=algorithm, k=k) as span:
        request = CensusRequest(graph, pattern, k, focal_nodes, subpattern)
        if workers is None:
            workers = default_workers()
        workers = max(1, int(workers))
        if chunks is None:
            chunks = workers
        focal_chunks = chunk_focal_nodes(request.focal_nodes, chunks)
        if not focal_chunks:
            return {}

        if matches is None and algorithm in _ADOPTS_MATCHES:
            # One matching pass, shared by every chunk.  Subpattern
            # censuses need raw (non-distinct) embeddings, mirroring
            # prepare_matches.
            distinct = subpattern is None
            matches = find_matches(graph, pattern, method=matcher, distinct=distinct)

        workers = min(workers, len(focal_chunks))
        if workers <= 1 or len(focal_chunks) == 1:
            executor = "serial"

        results = _execute(
            executor, workers, graph, pattern, k, fn, algorithm, focal_chunks,
            subpattern, matcher, matches, options,
            collect_stats is not None,
        )

        counts = {}
        merged = {}
        chunk_seconds = []
        for chunk_counts, counters, elapsed, _, _ in results:
            counts.update(chunk_counts)
            chunk_seconds.append(elapsed)
            for name, value in counters.items():
                merged[name] = merged.get(name, 0) + value
        if collect_stats is not None:
            _merge_stats(collect_stats, [stats for _, _, _, stats, _ in results])
        if obs.enabled:
            for name in sorted(merged):
                obs.add(name, merged[name])
            obs.add("census.parallel.chunks", len(focal_chunks))
            obs.add("census.parallel.workers", workers)
            for elapsed in chunk_seconds:
                obs.observe("census.parallel.chunk_seconds", elapsed)
            span.set("chunks", len(focal_chunks))
            span.set("workers", workers)
            _stitch_chunk_spans(span, focal_chunks, results)
        return counts


def _stitch_chunk_spans(parent_span, focal_chunks, results):
    """Reattach each chunk's serialized span subtree under the parent.

    Every chunk — serial, thread, or pool-worker — recorded into a
    private context and shipped its span roots back as plain dicts;
    here each becomes one ``census.parallel.chunk`` child of the
    ``census.parallel`` span, so parallel plans show per-chunk timing.
    Rebuilt spans keep only relative time (``start_time=0``): absolute
    ``perf_counter`` values are meaningless across processes.
    """
    for index, (_, _, elapsed, _, span_docs) in enumerate(results):
        chunk_span = Span(
            "census.parallel.chunk",
            {"chunk": index, "focal_nodes": len(focal_chunks[index])},
        )
        chunk_span.start_time = 0.0
        chunk_span.end_time = elapsed
        chunk_span.children = [Span.from_dict(doc) for doc in span_docs]
        parent_span.children.append(chunk_span)


def _execute(executor, workers, graph, pattern, k, fn, algorithm, focal_chunks,
             subpattern, matcher, matches, options, want_stats):
    """Run the chunks on the requested executor, in chunk order."""
    if executor == "serial":
        return [
            _run_chunk_inline(
                graph, pattern, k, fn, chunk, subpattern, matcher, matches,
                options, want_stats,
            )
            for chunk in focal_chunks
        ]
    # Thread and process chunks run outside the parent's contextvar
    # context; ship the remaining allowance instead.
    budget = current_budget()
    budget_spec = budget.spec() if budget is not None else None
    if executor == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_chunk_inline, graph, pattern, k, fn, chunk,
                    subpattern, matcher, matches, options, want_stats,
                    budget_spec,
                )
                for chunk in focal_chunks
            ]
            return [f.result() for f in futures]
    if executor == "process":
        payload = pickle.dumps(
            (graph, pattern, k, subpattern, matcher, algorithm, matches,
             options, want_stats, budget_spec, active_plan())
        )
        pool = None
        try:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=workers, initializer=_init_worker,
                    initargs=(payload,),
                )
                futures = [
                    pool.submit(_run_chunk_in_worker, chunk)
                    for chunk in focal_chunks
                ]
            except (OSError, PermissionError):
                # Sandboxes without fork/spawn: degrade to threads.
                return _execute(
                    "thread", workers, graph, pattern, k, fn, algorithm,
                    focal_chunks, subpattern, matcher, matches, options,
                    want_stats,
                )
            results = []
            crashed = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    # The worker died mid-chunk (or the pool broke while
                    # this chunk was still queued).  Mark it for a serial
                    # retry in the parent below.
                    results.append(None)
                    crashed.append(index)
            if crashed:
                obs = current_obs()
                if obs.enabled:
                    obs.add("census.parallel.worker_crashes", 1)
                    obs.add("census.parallel.chunk_retries", len(crashed))
                for index in crashed:
                    # Worker-scoped faults do not fire in the parent, so
                    # a plan that kills every worker still converges to
                    # the serial counts.
                    results[index] = _run_chunk_inline(
                        graph, pattern, k, fn, focal_chunks[index],
                        subpattern, matcher, matches, options, want_stats,
                    )
            return results
        finally:
            if pool is not None:
                # Unconditional: a chunk raising (BudgetExceeded, an
                # injected exception, ...) must not leak worker
                # processes or leave queued chunks running.
                pool.shutdown(wait=False, cancel_futures=True)
    raise CensusError(
        f"unknown executor {executor!r}; expected 'process', 'thread', or 'serial'"
    )
