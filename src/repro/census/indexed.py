"""Bit-parallel census inner loops over CSR snapshots.

The set-based census loops in :mod:`repro.census.nd_pvot` and friends
are backend-neutral: any graph implementing the access-path API can run
them.  A :class:`repro.graph.csr.CSRGraph` additionally exposes dense
int indexes and contiguous adjacency arrays, which admits a much
stronger execution strategy than per-focal-node BFS: process focal
nodes in blocks of 64, one bit per source.

Per block, a length-``n`` uint64 vector holds, for every database node,
the set of sources whose BFS frontier currently contains it.  One
frontier expansion for all 64 sources is a single
``np.bitwise_or.reduceat`` over the union-adjacency CSR slices (node v
collects the OR of its neighbors' frontier words).  Containment tests
collapse the same way: a census match is inside ``S(s, k)`` for every
source ``s`` whose bit survives ANDing the region words of its far
images — one vector op across *all* units at once.  Per-source counts
fall out of unpacking the surviving bit columns.

The entry points return ``None`` whenever the graph (or environment)
cannot take this path, and callers fall back to the generic set loop;
counts and observability counters are identical either way.
"""

try:  # pragma: no cover - exercised via both branches in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.graph.csr import CSRGraph, numpy_available

# np.bitwise_count arrived in numpy 2.0; on numpy 1.x the generic
# set-based loop must run instead of this module's bit-parallel path.
_HAS_BITWISE_COUNT = _np is not None and hasattr(_np, "bitwise_count")


class IndexedCounts:
    """Counts plus the counters the generic loop would have produced."""

    __slots__ = ("counts", "bulk", "checked", "visited")

    def __init__(self, counts, bulk, checked, visited):
        self.counts = counts
        self.bulk = bulk
        self.checked = checked
        self.visited = visited


def _layer_words(indptr, indices, degree_zero, source_words, k):
    """Bit-parallel bounded BFS: 64 sources per call.

    ``source_words`` is the (n,) uint64 layer-0 vector (bit s set on the
    node that is source s).  Returns ``(layers, reached)`` where
    ``layers[d]`` marks, per node, the sources whose BFS reaches it at
    distance exactly ``d``, and ``reached`` is their OR.
    """
    reached = source_words.copy()
    layers = [source_words]
    frontier = source_words
    # reduceat rejects start offsets == len(array) (which trailing
    # isolated nodes produce) and yields garbage (the element at the
    # start offset) for empty slices.  Padding the gathered vector with
    # one zero keeps every raw offset in range without truncating any
    # slice — clamping offsets instead would shorten the last
    # non-isolated node's slice — and the empty rows are zeroed after.
    starts = indptr[:-1]
    pad = _np.zeros(1, dtype=_np.uint64)
    for _ in range(k):
        if not frontier.any():
            break
        if not len(indices):
            break
        gathered = _np.concatenate((frontier[indices], pad))
        nbr_or = _np.bitwise_or.reduceat(gathered, starts)
        nbr_or[degree_zero] = 0
        frontier = nbr_or & ~reached
        if not frontier.any():
            break
        reached |= frontier
        layers.append(frontier)
    return layers, reached


def _bit_columns(words):
    """(len(words), 64) 0/1 matrix; column ``s`` is source ``s``'s bit."""
    return _np.unpackbits(
        words.view(_np.uint8), bitorder="little"
    ).reshape(len(words), 64)


def pvot_indexed_counts(graph, focal_nodes, pmi, far_names, k, bulk_depth, prefix_at):
    """ND-PVOT's focal loop, bit-parallel over a CSR snapshot.

    ``pmi`` is the pivot-mode :class:`repro.census.pmi.PatternMatchIndex`;
    ``far_names`` the containment variables at pivot distance >= 1,
    sorted by decreasing distance; ``prefix_at[d]`` how many of them
    need an explicit region test when the anchor sits at depth ``d``.
    Returns :class:`IndexedCounts`, or ``None`` when the graph is not a
    CSR snapshot (or numpy is unavailable) — the caller then runs the
    generic set-based loop.  Counts and counters match it exactly.
    """
    if (not isinstance(graph, CSRGraph) or not numpy_available()
            or not _HAS_BITWISE_COUNT):
        return None

    index = graph.node_index
    n_nodes = len(graph.node_ids)
    raw_indptr, raw_indices = graph.union_adjacency()
    indptr = _np.frombuffer(raw_indptr, dtype=_np.int64)
    indices = _np.frombuffer(raw_indices, dtype=_np.int64)
    degree_zero = indptr[:-1] == indptr[1:]

    # Per-unit structure: the anchor (pivot image) index and the far
    # image indexes, column per far variable.
    anchors = []
    anchor_units = []  # parallel: number of units anchored there
    unit_anchor = []
    img_cols = [[] for _ in far_names]
    for anchor in pmi.anchored_nodes():
        units = pmi.matches_at(anchor)
        a_idx = index[anchor]
        anchors.append(a_idx)
        anchor_units.append(len(units))
        for unit in units:
            unit_anchor.append(a_idx)
            mapping = unit.match.mapping
            for col, v in enumerate(far_names):
                img_cols[col].append(index[mapping[v]])
    anchors = _np.array(anchors, dtype=_np.int64)
    anchor_units = _np.array(anchor_units, dtype=_np.int64)
    unit_anchor = _np.array(unit_anchor, dtype=_np.int64)
    img_cols = [_np.array(col, dtype=_np.int64) for col in img_cols]
    deferred_depths = sorted(d for d in prefix_at if d <= k)

    focal = list(focal_nodes)
    counts = {}
    bulk = checked = visited = 0
    one = _np.uint64(1)
    for start in range(0, len(focal), 64):
        block = focal[start:start + 64]
        source_words = _np.zeros(n_nodes, dtype=_np.uint64)
        for s, node in enumerate(block):
            source_words[index[node]] |= one << _np.uint64(s)
        layers, reached = _layer_words(indptr, indices, degree_zero, source_words, k)
        visited += int(_np.bitwise_count(reached).sum())

        block_counts = _np.zeros(64, dtype=_np.int64)
        # Bulk phase: anchors within depth <= k - max_v contain every
        # anchored match wholesale.
        if bulk_depth >= 0 and anchors.size:
            near = layers[0].copy()
            for d in range(1, min(bulk_depth, len(layers) - 1) + 1):
                near |= layers[d]
            anchor_words = near[anchors]
            block_counts += anchor_units @ _bit_columns(anchor_words)
            bulk += int((anchor_units * _np.bitwise_count(anchor_words)).sum())
        # Deferred phase: anchors at depth d need their units' far
        # images (the prefix_at[d] farthest ones) tested against the
        # k-hop region — a bitword AND across all units at once.
        for d in deferred_depths:
            if d >= len(layers):
                continue
            unit_words = layers[d][unit_anchor]
            checked += int(_np.bitwise_count(unit_words).sum())
            for col in img_cols[:prefix_at[d]]:
                unit_words = unit_words & reached[col]
            block_counts += _bit_columns(unit_words).sum(axis=0, dtype=_np.int64)
        for s, node in enumerate(block):
            counts[node] = int(block_counts[s])
    return IndexedCounts(counts, bulk, checked, visited)
