"""Array-based (bucket) priority queue (Section IV-B.3).

The best-first traversal's scores are bounded by ``(k + 1) * |V_M|``, so
instead of a heap the paper stores nodes in an array of buckets indexed
by score — O(1) insert and delete.  Decrease-key is handled lazily:
entries are re-pushed at the better score and stale pops are skipped by
comparing against the current score map.
"""


class BucketQueue:
    """Monotone-ish integer priority queue over a small score range."""

    def __init__(self, max_score):
        self._buckets = [[] for _ in range(max_score + 1)]
        self._score = {}
        self._cursor = max_score + 1

    def push(self, item, score):
        """Insert ``item`` at ``score``, or decrease-key a present item.

        A push at a score *strictly below* the item's current one
        re-files it (the old bucket entry goes stale and is skipped on
        pop); a push at an equal or higher score is a no-op.  Items
        already popped may be re-inserted at any score.
        """
        current = self._score.get(item)
        if current is not None and current <= score:
            return
        self._score[item] = score
        self._buckets[score].append(item)
        if score < self._cursor:
            self._cursor = score

    def pop(self):
        """Remove and return ``(item, score)`` with the smallest score."""
        while self._cursor < len(self._buckets):
            bucket = self._buckets[self._cursor]
            while bucket:
                item = bucket.pop()
                if self._score.get(item) == self._cursor:
                    del self._score[item]
                    return item, self._cursor
                # Stale entry (item was re-pushed at a better score).
            self._cursor += 1
        raise IndexError("pop from empty BucketQueue")

    def __bool__(self):
        # Stale entries don't count: live size is tracked via _score.
        return bool(self._score)

    def __len__(self):
        return len(self._score)


class FIFOQueue:
    """Queue facade with the BucketQueue interface, breadth-first order.

    Used by the ordering ablation: PT with FIFO order is the paper's
    plain simultaneous breadth-first traversal.
    """

    def __init__(self, _max_score=None):
        from collections import deque

        self._queue = deque()
        self._scores = {}

    def push(self, item, score):
        current = self._scores.get(item)
        if current is not None and current <= score:
            return
        self._scores[item] = score
        self._queue.append(item)

    def pop(self):
        while self._queue:
            item = self._queue.popleft()
            if item in self._scores:
                return item, self._scores.pop(item)
        raise IndexError("pop from empty FIFOQueue")

    def __bool__(self):
        return bool(self._scores)

    def __len__(self):
        return len(self._scores)


class RandomQueue:
    """Pops a uniformly random live entry — the PT-RND ordering."""

    def __init__(self, _max_score=None, rng=None):
        import random

        self._rng = rng or random.Random(0)
        self._items = []
        self._scores = {}

    def push(self, item, score):
        current = self._scores.get(item)
        if current is not None and current <= score:
            return
        self._scores[item] = score
        self._items.append(item)

    def pop(self):
        while self._items:
            i = self._rng.randrange(len(self._items))
            self._items[i], self._items[-1] = self._items[-1], self._items[i]
            item = self._items.pop()
            if item in self._scores:
                return item, self._scores.pop(item)
        raise IndexError("pop from empty RandomQueue")

    def __bool__(self):
        return bool(self._scores)

    def __len__(self):
        return len(self._scores)
