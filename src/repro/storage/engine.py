"""``DiskGraph``: the disk-resident adjacency-list graph store.

Each node is one JSON record in the store's append-only log:

- undirected: ``{"id", "a": attrs, "adj": [[neighbor, eattrs|null]]}``
  where the edge attribute dict is stored on the edge's *canonical*
  endpoint (the same tie-break rule as the in-memory graph) and
  ``null`` on the mirror side;
- directed: ``{"id", "a": attrs, "out": [[neighbor, eattrs]], "in":
  [neighbor, ...]}`` with edge attributes on the source record.

Updates append a fresh version of the record and repoint the in-memory
directory (node id -> offset); ``flush()`` serializes the directory as
one more record and commits its offset in the header — shadow-paging
style, so a crash before flush leaves the previous consistent state.

``DiskGraph`` implements the same access-path surface as
:class:`repro.graph.Graph`; matchers and census algorithms run on it
unchanged, paying buffer-pool and decode costs the way the paper's
Neo4j-backed prototype did.  A small decoded-record LRU sits above the
page cache (an object cache above the buffer pool).
"""

from collections import OrderedDict

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError, StorageError
from repro.graph.graph import LABEL_KEY
from repro.storage.pager import Pager
from repro.storage.records import RecordLog


class DiskGraph:
    """A graph stored in a single paged file."""

    def __init__(self, pager, cache_pages=256, record_cache=1024):
        self._pager = pager
        self._log = RecordLog(pager, cache_pages=cache_pages)
        self.directed = pager.directed
        self._directory = {}
        self._num_edges = 0
        self._version = 0
        self._record_cache = OrderedDict()
        self._record_cache_cap = max(1, record_cache)
        if pager.dir_offset:
            self._load_directory(pager.dir_offset)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path, graph=None, directed=False, cache_pages=256,
               record_cache=1024):
        """Create a new store at ``path``; bulk-load ``graph`` if given."""
        if graph is not None:
            directed = graph.directed
        pager = Pager(path, create=True, directed=directed)
        store = cls(pager, cache_pages=cache_pages, record_cache=record_cache)
        if graph is not None:
            store._bulk_load(graph)
        store.flush()
        return store

    @classmethod
    def open(cls, path, cache_pages=256, record_cache=1024):
        """Open an existing store."""
        return cls(Pager(path, create=False), cache_pages=cache_pages,
                   record_cache=record_cache)

    def flush(self):
        """Commit all pending state (directory + dirty pages + header)."""
        entries = sorted(self._directory.items(), key=lambda kv: repr(kv[0]))
        offset = self._log.append_json(
            {"type": "dir", "edges": self._num_edges, "entries": [[k, v] for k, v in entries]}
        )
        self._pager.dir_offset = offset
        self._log.flush()

    def close(self):
        self.flush()
        self._pager.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def cache_stats(self):
        """Buffer-pool statistics (hits/misses/evictions)."""
        return self._log.cache.stats()

    def io_stats(self):
        """Combined buffer-pool and physical page I/O counters.

        The ``page_cache.*`` keys mirror :meth:`cache_stats`; the
        ``pager.*`` keys count pages that actually reached the file.
        The query engine snapshots this around each statement to report
        per-query cache hit rates in ``EXPLAIN ANALYZE``.
        """
        stats = {f"page_cache.{k}": v for k, v in self._log.cache.stats().items()}
        stats.update({f"pager.{k}": v for k, v in self._pager.io_stats().items()})
        return stats

    def compact(self, dest_path, cache_pages=256):
        """Rewrite only the live record versions into a fresh store.

        The append-only log accumulates dead record versions as nodes
        are updated; compaction copies each node's current record once,
        typically shrinking the file substantially.  Returns the new
        (already flushed) :class:`DiskGraph`.
        """
        pager = Pager(dest_path, create=True, directed=self.directed)
        fresh = DiskGraph(pager, cache_pages=cache_pages)
        for node in self._directory:
            fresh._write_record(node, self._read_record(node))
        fresh._num_edges = self._num_edges
        fresh.flush()
        return fresh

    def file_size(self):
        """Current store file size in bytes (committed log tail)."""
        return self._pager.log_end

    def _load_directory(self, offset):
        doc = self._log.read_json(offset)
        if doc.get("type") != "dir":
            raise StorageError(f"offset {offset} is not a directory record")
        self._directory = {_key(node): rec_offset for node, rec_offset in doc["entries"]}
        self._num_edges = doc.get("edges", 0)

    def _bulk_load(self, graph):
        for n in graph.nodes():
            self.add_node(n, **graph.node_attrs(n))
        for u, v in graph.edges():
            self.add_edge(u, v, **graph.edge_attrs(u, v))

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def _read_record(self, node):
        rec = self._record_cache.get(node)
        if rec is not None:
            self._record_cache.move_to_end(node)
            return rec
        try:
            offset = self._directory[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        rec = self._log.read_json(offset)
        self._record_cache[node] = rec
        if len(self._record_cache) > self._record_cache_cap:
            self._record_cache.popitem(last=False)
        return rec

    @property
    def version(self):
        """Monotonic mutation counter (process-local, not persisted).

        Every record write — node/edge insertion, attribute update —
        bumps it, mirroring :attr:`repro.graph.Graph.version` so
        version-keyed consumers (the engine's aggregate cache, the
        serving layer) work identically over disk-resident graphs.
        """
        return self._version

    def _write_record(self, node, rec):
        self._version += 1
        offset = self._log.append_json(rec)
        self._directory[node] = offset
        self._record_cache[node] = rec
        self._record_cache.move_to_end(node)
        if len(self._record_cache) > self._record_cache_cap:
            self._record_cache.popitem(last=False)

    def _canonical(self, u, v):
        """The endpoint that owns an undirected edge's attributes."""
        try:
            return u if u <= v else v
        except TypeError:
            return u if repr(u) <= repr(v) else v

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node, **attrs):
        if not isinstance(node, (int, str)):
            raise GraphError(
                f"DiskGraph node ids must be int or str, got {type(node).__name__}"
            )
        if node in self._directory:
            if attrs:
                rec = dict(self._read_record(node))
                rec["a"] = {**rec["a"], **attrs}
                self._write_record(node, rec)
            return
        rec = {"id": node, "a": dict(attrs)}
        if self.directed:
            rec["out"] = []
            rec["in"] = []
        else:
            rec["adj"] = []
        self._write_record(node, rec)

    def has_node(self, node):
        return node in self._directory

    def nodes(self):
        return iter(self._directory)

    def node_attrs(self, node):
        return self._read_record(node)["a"]

    def node_attr(self, node, key, default=None):
        return self._read_record(node)["a"].get(key, default)

    def set_node_attr(self, node, key, value):
        rec = dict(self._read_record(node))
        rec["a"] = {**rec["a"], key: value}
        self._write_record(node, rec)

    def label(self, node):
        return self.node_attr(node, LABEL_KEY)

    @property
    def num_nodes(self):
        return len(self._directory)

    @property
    def num_edges(self):
        return self._num_edges

    def __len__(self):
        return len(self._directory)

    def __contains__(self, node):
        return node in self._directory

    def __iter__(self):
        return iter(self._directory)

    def labels(self):
        return {self.node_attr(n, LABEL_KEY) for n in self._directory}

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u, v, **attrs):
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if self.has_edge(u, v):
            if attrs:
                self._merge_edge_attrs(u, v, attrs)
            return
        if self.directed:
            rec_u = dict(self._read_record(u))
            rec_u["out"] = rec_u["out"] + [[v, dict(attrs)]]
            self._write_record(u, rec_u)
            rec_v = dict(self._read_record(v))
            rec_v["in"] = rec_v["in"] + [u]
            self._write_record(v, rec_v)
        else:
            owner = self._canonical(u, v)
            rec_u = dict(self._read_record(u))
            rec_u["adj"] = rec_u["adj"] + [[v, dict(attrs) if owner == u else None]]
            self._write_record(u, rec_u)
            rec_v = dict(self._read_record(v))
            rec_v["adj"] = rec_v["adj"] + [[u, dict(attrs) if owner == v else None]]
            self._write_record(v, rec_v)
        self._num_edges += 1

    def _merge_edge_attrs(self, u, v, attrs):
        if self.directed:
            rec = dict(self._read_record(u))
            rec["out"] = [
                [nbr, {**(ea or {}), **attrs}] if nbr == v else [nbr, ea]
                for nbr, ea in rec["out"]
            ]
            self._write_record(u, rec)
        else:
            owner = self._canonical(u, v)
            other = v if owner == u else u
            rec = dict(self._read_record(owner))
            rec["adj"] = [
                [nbr, {**(ea or {}), **attrs}] if nbr == other else [nbr, ea]
                for nbr, ea in rec["adj"]
            ]
            self._write_record(owner, rec)

    def has_edge(self, u, v):
        if u not in self._directory or v not in self._directory:
            return False
        rec = self._read_record(u)
        if self.directed:
            return any(nbr == v for nbr, _ea in rec["out"])
        return any(nbr == v for nbr, _ea in rec["adj"])

    def edge_attrs(self, u, v):
        if self.directed:
            rec = self._read_record(u)
            for nbr, ea in rec["out"]:
                if nbr == v:
                    return ea if ea is not None else {}
            raise EdgeNotFoundError(u, v)
        owner = self._canonical(u, v)
        other = v if owner == u else u
        rec = self._read_record(owner)
        for nbr, ea in rec["adj"]:
            if nbr == other:
                return ea if ea is not None else {}
        raise EdgeNotFoundError(u, v)

    def edge_attr(self, u, v, key, default=None):
        return self.edge_attrs(u, v).get(key, default)

    def edges(self):
        """Iterate edges once each (canonical endpoint first when
        undirected)."""
        for n in self._directory:
            rec = self._read_record(n)
            if self.directed:
                for nbr, _ea in rec["out"]:
                    yield (n, nbr)
            else:
                for nbr, ea in rec["adj"]:
                    if ea is not None:
                        yield (n, nbr)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node):
        rec = self._read_record(node)
        if self.directed:
            return {nbr for nbr, _ea in rec["out"]} | set(rec["in"])
        return {nbr for nbr, _ea in rec["adj"]}

    def out_neighbors(self, node):
        rec = self._read_record(node)
        if self.directed:
            return {nbr for nbr, _ea in rec["out"]}
        return {nbr for nbr, _ea in rec["adj"]}

    def in_neighbors(self, node):
        rec = self._read_record(node)
        if self.directed:
            return set(rec["in"])
        return {nbr for nbr, _ea in rec["adj"]}

    def degree(self, node):
        return len(self.neighbors(node))

    def out_degree(self, node):
        return len(self.out_neighbors(node))

    def in_degree(self, node):
        return len(self.in_neighbors(node))

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return (
            f"<DiskGraph {kind} nodes={self.num_nodes} edges={self.num_edges} "
            f"path={self._pager.path!r}>"
        )


def _key(node):
    # JSON round-trips int and str node ids unchanged.
    return node
