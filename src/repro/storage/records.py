"""Length-prefixed record log on top of the page cache.

The data region of a store file (everything after the header page) is a
byte log.  A record is a 4-byte little-endian length followed by its
payload; records may span page boundaries.  Appends go to the log tail
(``pager.log_end``); the tail is only advanced in memory until
``flush`` commits it to the header, giving crash consistency: a torn
append is simply never reachable.

The codec is JSON (UTF-8) — compact enough at our scale and fully
debuggable with a hex editor.
"""

import json
import struct

from repro.errors import StorageError
from repro.storage.cache import LRUPageCache
from repro.storage.pager import PAGE_SIZE

_LEN = struct.Struct("<I")
MAX_RECORD = 64 * 1024 * 1024  # sanity bound against corrupt length prefixes


class RecordLog:
    """Append/read records at byte offsets in the paged data region."""

    def __init__(self, pager, cache_pages=256):
        self.pager = pager
        self.cache = LRUPageCache(pager, capacity=cache_pages)

    # ------------------------------------------------------------------
    # Raw byte access through the page cache
    # ------------------------------------------------------------------
    def _read_bytes(self, offset, length):
        out = bytearray()
        remaining = length
        pos = offset
        while remaining > 0:
            page_no, in_page = divmod(pos, PAGE_SIZE)
            page = self.cache.get(page_no)
            chunk = page[in_page : in_page + remaining]
            out += chunk
            pos += len(chunk)
            remaining -= len(chunk)
        return bytes(out)

    def _write_bytes(self, offset, data):
        pos = offset
        i = 0
        while i < len(data):
            page_no, in_page = divmod(pos, PAGE_SIZE)
            page = self.cache.get(page_no)
            take = min(PAGE_SIZE - in_page, len(data) - i)
            page[in_page : in_page + take] = data[i : i + take]
            self.cache.mark_dirty(page_no)
            pos += take
            i += take

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def append(self, payload):
        """Append a record; returns its byte offset."""
        offset = self.pager.log_end
        self._write_bytes(offset, _LEN.pack(len(payload)) + payload)
        self.pager.log_end = offset + _LEN.size + len(payload)
        return offset

    def read(self, offset):
        """Read the record payload at ``offset``."""
        if offset < PAGE_SIZE or offset >= self.pager.log_end:
            raise StorageError(f"record offset {offset} outside the data log")
        (length,) = _LEN.unpack(self._read_bytes(offset, _LEN.size))
        if length > MAX_RECORD:
            raise StorageError(f"corrupt record at {offset}: length {length}")
        return self._read_bytes(offset + _LEN.size, length)

    def append_json(self, obj):
        return self.append(json.dumps(obj, separators=(",", ":")).encode("utf-8"))

    def read_json(self, offset):
        try:
            return json.loads(self.read(offset).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(f"corrupt record at {offset}: {exc}") from exc

    def flush(self):
        """Write back dirty pages and commit the log tail to the header."""
        self.cache.flush()
        self.pager.write_header()
        self.pager.sync()
