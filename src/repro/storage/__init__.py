"""Disk-resident adjacency-list graph storage.

The paper's prototype runs on a disk-based graph engine (Neo4j) and its
algorithms "operate on a disk-resident adjacency-list graph
representation".  This package is that substrate:

- :mod:`repro.storage.pager` — fixed-size pages over a single file with
  a checksummed header,
- :mod:`repro.storage.cache` — an LRU buffer pool with dirty-page
  write-back and hit/miss statistics,
- :mod:`repro.storage.records` — length-prefixed record log on top of
  the pager (records may span pages) with a JSON codec,
- :mod:`repro.storage.engine` — :class:`DiskGraph`, an append-only
  (shadow-directory) node store implementing the same access-path API
  as :class:`repro.graph.Graph`, so every matcher and census algorithm
  runs unchanged on disk-backed graphs.
"""

from repro.storage.cache import LRUPageCache
from repro.storage.engine import DiskGraph
from repro.storage.pager import PAGE_SIZE, Pager
from repro.storage.records import RecordLog

__all__ = ["DiskGraph", "Pager", "PAGE_SIZE", "LRUPageCache", "RecordLog"]
