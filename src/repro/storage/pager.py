"""Fixed-size page I/O over a single file.

Page 0 is the header: magic, format version, page size, a directed
flag, the end-of-log offset, and the offset of the most recently
committed directory record (see :mod:`repro.storage.engine`).  All
multi-byte integers are little-endian, fixed-width — the file format is
platform-independent.
"""

import os
import struct

from repro.errors import StorageError

PAGE_SIZE = 4096
MAGIC = b"EGOCENSUS1"
_HEADER = struct.Struct("<10sHIQQB")  # magic, version, page_size, log_end, dir_offset, directed
FORMAT_VERSION = 1


class Pager:
    """Reads and writes fixed-size pages of a graph store file."""

    def __init__(self, path, create=False, directed=False):
        self.path = os.fspath(path)
        self.pages_read = 0
        self.pages_written = 0
        self.syncs = 0
        mode = "w+b" if create else "r+b"
        try:
            self._file = open(self.path, mode)
        except OSError as exc:
            raise StorageError(f"cannot open {self.path!r}: {exc}") from exc
        if create:
            self.log_end = PAGE_SIZE  # data begins after the header page
            self.dir_offset = 0  # 0 = no directory committed yet
            self.directed = directed
            self.write_header()
        else:
            self._read_header()

    # ------------------------------------------------------------------
    # Header
    # ------------------------------------------------------------------
    def write_header(self):
        header = _HEADER.pack(
            MAGIC, FORMAT_VERSION, PAGE_SIZE, self.log_end, self.dir_offset,
            1 if self.directed else 0,
        )
        page = header + b"\x00" * (PAGE_SIZE - len(header))
        self._file.seek(0)
        self._file.write(page)
        self._file.flush()

    def _read_header(self):
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise StorageError(f"{self.path!r} is not a graph store (truncated header)")
        magic, version, page_size, log_end, dir_offset, directed = _HEADER.unpack(raw)
        if magic != MAGIC:
            raise StorageError(f"{self.path!r} is not a graph store (bad magic)")
        if version != FORMAT_VERSION:
            raise StorageError(f"unsupported store version {version}")
        if page_size != PAGE_SIZE:
            raise StorageError(f"store page size {page_size} != {PAGE_SIZE}")
        self.log_end = log_end
        self.dir_offset = dir_offset
        self.directed = bool(directed)

    # ------------------------------------------------------------------
    # Page I/O
    # ------------------------------------------------------------------
    def read_page(self, page_no):
        """Return the ``PAGE_SIZE`` bytes of page ``page_no`` (zero-padded
        past end-of-file)."""
        self.pages_read += 1
        self._file.seek(page_no * PAGE_SIZE)
        data = self._file.read(PAGE_SIZE)
        if len(data) < PAGE_SIZE:
            data = data + b"\x00" * (PAGE_SIZE - len(data))
        return data

    def write_page(self, page_no, data):
        if len(data) != PAGE_SIZE:
            raise StorageError(f"page must be exactly {PAGE_SIZE} bytes, got {len(data)}")
        self.pages_written += 1
        self._file.seek(page_no * PAGE_SIZE)
        self._file.write(data)

    def io_stats(self):
        """Physical page I/O counters since this pager was opened."""
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "syncs": self.syncs,
        }

    def num_pages(self):
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        return (size + PAGE_SIZE - 1) // PAGE_SIZE

    def sync(self):
        self.syncs += 1
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self):
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
