"""LRU buffer pool over a :class:`repro.storage.pager.Pager`.

Pages are cached as mutable ``bytearray`` buffers.  Dirty pages are
written back on eviction and on ``flush``.  Hit/miss/eviction counters
are kept so storage benchmarks can report cache effectiveness.

These counters are deliberately plain ints rather than registry
counters: ``get`` is the single hottest storage call, and the
observability layer must cost nothing here.  The query engine instead
snapshots :meth:`DiskGraph.io_stats` (which includes :meth:`stats`)
around each statement and records the *deltas* as ``storage.page_cache.*``
/ ``storage.pager.*`` metrics — see
:meth:`repro.query.engine.QueryEngine._record_io_deltas`.
"""

from collections import OrderedDict

from repro.storage.pager import PAGE_SIZE


class LRUPageCache:
    """Bounded page cache with write-back semantics."""

    def __init__(self, pager, capacity=256):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.pager = pager
        self.capacity = capacity
        self._pages = OrderedDict()  # page_no -> bytearray
        self._dirty = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, page_no):
        """Fetch a page buffer, reading from disk on a miss."""
        page = self._pages.get(page_no)
        if page is not None:
            self.hits += 1
            self._pages.move_to_end(page_no)
            return page
        self.misses += 1
        page = bytearray(self.pager.read_page(page_no))
        self._insert(page_no, page)
        return page

    def mark_dirty(self, page_no):
        self._dirty.add(page_no)

    def _insert(self, page_no, page):
        self._pages[page_no] = page
        self._pages.move_to_end(page_no)
        while len(self._pages) > self.capacity:
            old_no, old_page = self._pages.popitem(last=False)
            self.evictions += 1
            if old_no in self._dirty:
                self.pager.write_page(old_no, bytes(old_page))
                self._dirty.discard(old_no)

    def flush(self):
        """Write back every dirty page (cache contents are kept)."""
        for page_no in sorted(self._dirty):
            self.pager.write_page(page_no, bytes(self._pages[page_no]))
        self._dirty.clear()

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident": len(self._pages),
            "capacity": self.capacity,
        }

    def __len__(self):
        return len(self._pages)


def page_span(offset, length):
    """The (first_page, last_page) touched by ``length`` bytes at ``offset``."""
    return offset // PAGE_SIZE, (offset + max(length, 1) - 1) // PAGE_SIZE
