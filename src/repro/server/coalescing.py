"""Request coalescing: concurrent identical queries share one execution.

A census is expensive and deterministic, so when several clients ask
the same question at the same graph version simultaneously, running it
once and fanning the answer out is pure win (*Subgraph Enumeration in
Massive Graphs* makes the same amortization argument for repeated
enumerations).  :class:`Coalescer` implements single-flight execution:
the first arrival for a key becomes the **leader** and computes; later
arrivals for the same key become **followers** and block on the
leader's completion, sharing its result — or its exception, which is
just as deterministic.

Keys must capture everything the result depends on; the daemon uses
``(canonical query text, graph version, engine options, budget spec,
degrade flag)``, so two requests only ever share an execution when any
correct server would have returned them byte-identical answers.

Coalescing is *not* a cache: a flight exists only while the leader is
executing.  Result reuse across time is the query engine's
version-keyed aggregate cache; reuse across concurrent identical
requests is this module.
"""

import threading


class _Flight:
    """One in-progress execution and its eventual outcome."""

    __slots__ = ("done", "value", "error", "followers", "token")

    def __init__(self, token=None):
        self.done = threading.Event()
        self.value = None
        self.error = None
        self.followers = 0
        self.token = token


class Coalescer:
    """Single-flight execution keyed on request identity."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights = {}

    def run(self, key, compute):
        """Execute ``compute()`` once per concurrent batch of ``key``.

        Returns ``(value, coalesced)`` where ``coalesced`` is ``True``
        for followers that shared a leader's execution.  A leader's
        exception propagates to the leader and every follower alike.
        """
        value, coalesced, _ = self.run_traced(key, compute)
        return value, coalesced

    def run_traced(self, key, compute, token=None):
        """:meth:`run`, carrying an opaque identity ``token`` per flight.

        Returns ``(value, coalesced, leader_token)``: the leader's
        ``token`` (its request ID, for the serving path) so followers
        can link their trace to the execution that actually answered
        them.  The leader sees its own token back.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                is_leader = False
            else:
                flight = _Flight(token=token)
                self._flights[key] = flight
                is_leader = True

        if not is_leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True, flight.token

        try:
            flight.value = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # Unpublish before waking followers: arrivals from this
            # moment on start a fresh flight instead of joining a
            # finished one.
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.value, False, flight.token

    def in_flight(self):
        """Number of distinct executions currently running."""
        with self._lock:
            return len(self._flights)
