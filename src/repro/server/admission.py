"""Admission control: a bounded execute-plus-wait pool for the daemon.

The census daemon runs one thread per connection (stdlib
``ThreadingHTTPServer``), so without a gate a traffic burst turns into
an unbounded pile of concurrent censuses all thrashing the same cores.
:class:`AdmissionController` imposes the classic two-stage bound:

- at most ``max_active`` requests *execute* at once, and
- at most ``queue_depth`` more may *wait* for an execution slot;

anything beyond that is rejected immediately with :class:`Saturated`,
which the HTTP layer maps to ``429 Too Many Requests`` plus a
``Retry-After`` hint.  Rejecting at the door keeps rejection cheap
(microseconds) exactly when the server is busiest, and bounds the
worst-case queueing latency a client can experience to roughly
``queue_depth / max_active`` census durations.

Draining (``SIGTERM``) flips the controller into a refuse-new/finish
old mode: :meth:`begin_drain` makes further :meth:`acquire` calls raise
:class:`Draining` (mapped to 503) while :meth:`wait_idle` blocks until
every admitted request has released its slot.
"""

import threading
import time
from contextlib import contextmanager


class Saturated(Exception):
    """Both the execution slots and the wait queue are full."""

    def __init__(self, active, waiting, retry_after):
        super().__init__(
            f"server saturated: {active} executing, {waiting} queued"
        )
        self.retry_after = retry_after


class Draining(Exception):
    """The server is draining and admits no new work."""


class AdmissionController:
    """Bounded executing + waiting slots with drain support.

    Parameters
    ----------
    max_active:
        Requests allowed to execute concurrently.
    queue_depth:
        Additional requests allowed to wait for a slot; ``0`` rejects
        the moment all execution slots are busy.
    retry_after:
        Seconds suggested to rejected clients (the 429 ``Retry-After``
        header).
    """

    def __init__(self, max_active, queue_depth=0, retry_after=1.0):
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_active = max_active
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._draining = False

    # -- admission ------------------------------------------------------
    def acquire(self):
        """Take an execution slot, waiting in the bounded queue if needed.

        Returns the seconds spent queued for the slot (``0.0`` when one
        was free) so the caller can attribute admission wait separately
        from execution time.  Raises :class:`Saturated` when the queue
        is full and :class:`Draining` once :meth:`begin_drain` has been
        called.
        """
        with self._cond:
            if self._draining:
                raise Draining("server is draining")
            if self._active < self.max_active:
                self._active += 1
                return 0.0
            if self._waiting >= self.queue_depth:
                raise Saturated(self._active, self._waiting, self.retry_after)
            started = time.perf_counter()
            self._waiting += 1
            try:
                while self._active >= self.max_active:
                    self._cond.wait()
                    if self._draining:
                        raise Draining("server is draining")
            finally:
                self._waiting -= 1
            self._active += 1
            return time.perf_counter() - started

    def release(self):
        with self._cond:
            self._active -= 1
            self._cond.notify_all()

    @contextmanager
    def slot(self):
        """``with controller.slot() as waited:`` — acquire around a
        request body, yielding the queued seconds from :meth:`acquire`."""
        waited = self.acquire()
        try:
            yield waited
        finally:
            self.release()

    # -- introspection --------------------------------------------------
    @property
    def active(self):
        return self._active

    @property
    def waiting(self):
        return self._waiting

    @property
    def draining(self):
        return self._draining

    # -- drain ----------------------------------------------------------
    def begin_drain(self):
        """Refuse new admissions; queued-but-unadmitted requests fail too."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()

    def wait_idle(self, timeout=None):
        """Block until every admitted request released its slot.

        Returns ``True`` when idle, ``False`` on timeout.
        """
        with self._cond:
            return self._cond.wait_for(lambda: self._active == 0, timeout=timeout)
