"""The census-serving daemon.

:class:`CensusServer` puts the engine built across PRs 1–3 behind a
long-running concurrent HTTP process (stdlib ``ThreadingHTTPServer``,
no new runtime dependencies):

- ``POST /query`` — query-language text (or JSON) in, JSON
  :class:`~repro.query.result.ResultTable` document out, tagged with
  the graph version it was computed at;
- ``POST /update`` — batched edge/node mutations, applied atomically
  under the write lock, routed through the maintained
  :class:`~repro.census.IncrementalCensus` when one is configured, and
  finished with ``refresh_snapshot()``;
- ``GET /counts`` — the maintained census' current counts (only when
  configured; always fresh, never recomputed);
- ``GET /metrics`` — Prometheus text exposition of the server registry
  (engine counters plus the ``server.*`` family);
- ``GET /health`` — liveness, graph version, and load.

Response contract for governed queries (the PR 3 degradation rules):
a blown budget answers **503** with a hint; with degradation enabled
(request or server default) it answers **200 with ``partial: true``**.
Saturation answers **429** with ``Retry-After``; draining answers 503.

Start it from Python (tests do) or via ``repro serve``.  SIGTERM/SIGINT
trigger a graceful drain: stop admitting, finish in-flight requests,
then stop the listener.
"""

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import BudgetExceeded, CensusError, GraphError, QueryError
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsObsContext,
    Telemetry,
    get_logger,
    to_json,
    to_prometheus,
)
from repro.query.engine import QueryEngine
from repro.query.explain import render_analyzed_plan
from repro.server.admission import AdmissionController, Draining, Saturated
from repro.server.coalescing import Coalescer
from repro.server.protocol import (
    BadRequest,
    encode,
    error_document,
    parse_query_request,
    parse_update_request,
    result_document,
)
from repro.server.state import GraphState

logger = get_logger("repro.server")


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for burst traffic.

    The stdlib default listen backlog of 5 makes the kernel reset
    connections the moment a burst of clients connects faster than
    accept() runs — admission control never even sees them.  A deep
    backlog lets every request reach the controller, which is where
    load-shedding policy (429) is supposed to live.
    """

    daemon_threads = True
    request_queue_size = 128


class ServerDefaults:
    """Server-wide fallbacks for per-request limits."""

    __slots__ = ("budget", "degrade")

    def __init__(self, budget=None, degrade=False):
        self.budget = budget
        self.degrade = bool(degrade)


class CensusServer:
    """A concurrent census query daemon over one graph.

    Parameters
    ----------
    graph:
        The mutable source graph (in-memory or disk-resident).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    backend, workers, algorithm, pairwise_algorithm, matcher, seed, cache:
        Forwarded to the shared :class:`~repro.query.engine.QueryEngine`.
        ``cache`` defaults to **on**: with version-keyed invalidation a
        serving process wants the aggregate cache.
    timeout, max_ops, max_results, degrade:
        Default per-request execution budget and degradation policy;
        individual requests may override via body/headers.
    max_active, queue_depth, retry_after:
        Admission control (see
        :class:`~repro.server.admission.AdmissionController`).
    maintain, maintain_k:
        Pattern name (from the engine catalog) and radius for a
        maintained :class:`~repro.census.IncrementalCensus`; updates
        then refresh its counts incrementally and ``GET /counts``
        serves them.
    trace_sample_rate, slow_query_ms, slow_query_log, trace_buffer, slow_buffer:
        Request telemetry (see :class:`~repro.obs.telemetry.Telemetry`):
        the fraction of requests whose full span tree is retained for
        ``GET /debug/traces``, the slow-query capture threshold in
        milliseconds (``None`` disables), an optional JSONL path that
        slow captures append to, and the two ring-buffer capacities.
    """

    def __init__(self, graph, host="127.0.0.1", port=8080, backend="csr",
                 workers=1, algorithm="auto", pairwise_algorithm="nd",
                 matcher="cn", seed=0, cache=True, timeout=None, max_ops=None,
                 max_results=None, degrade=False, max_active=4, queue_depth=16,
                 retry_after=1.0, maintain=None, maintain_k=2, obs=None,
                 trace_sample_rate=0.0, slow_query_ms=None, slow_query_log=None,
                 trace_buffer=256, slow_buffer=64):
        self.obs = obs if obs is not None else MetricsObsContext()
        self.telemetry = Telemetry(
            registry=self.obs.registry, sample_rate=trace_sample_rate,
            slow_query_ms=slow_query_ms, slow_log_path=slow_query_log,
            trace_buffer=trace_buffer, slow_buffer=slow_buffer,
            labels={"algorithm": algorithm, "backend": backend},
        )
        # The engine gets no pinned obs context: each request activates
        # its own RequestObsContext (which tees into ``self.obs``'s
        # registry), and pinning would make the engine ignore it.
        self.engine = QueryEngine(
            graph, seed=seed, algorithm=algorithm,
            pairwise_algorithm=pairwise_algorithm, matcher=matcher,
            cache=cache, obs=None, backend=backend, workers=workers,
        )
        maintained = None
        if maintain is not None:
            from repro.census.incremental import IncrementalCensus

            maintained = IncrementalCensus(
                graph, self.engine.catalog.get(maintain), maintain_k,
                matcher=matcher,
            )
        self.state = GraphState(self.engine, maintained=maintained)
        self.defaults = ServerDefaults(
            budget={"timeout": timeout, "max_ops": max_ops,
                    "max_results": max_results}
            if (timeout or max_ops or max_results) else None,
            degrade=degrade,
        )
        self.admission = AdmissionController(
            max_active, queue_depth=queue_depth, retry_after=retry_after,
        )
        self.coalescer = Coalescer()
        self._drained = threading.Event()
        self._thread = None

        handler = _make_handler(self)
        self.httpd = _Server((host, port), handler)
        self.obs.set_gauge("server.graph_version", self.state.version)

    # -- addresses ------------------------------------------------------
    @property
    def host(self):
        return self.httpd.server_address[0]

    @property
    def port(self):
        return self.httpd.server_address[1]

    # -- lifecycle ------------------------------------------------------
    def start(self):
        """Serve in a background thread (for tests and embedding)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True,
        )
        self._thread.start()
        return self

    def run(self, install_signal_handlers=True):
        """Serve on the calling thread until SIGTERM/SIGINT drains."""
        if install_signal_handlers:
            import signal

            def _drain_signal(signum, _frame):
                logger.info("signal %d: draining", signum)
                threading.Thread(target=self.drain, daemon=True).start()

            signal.signal(signal.SIGTERM, _drain_signal)
            signal.signal(signal.SIGINT, _drain_signal)
        logger.info("serving on %s:%d", self.host, self.port)
        self.httpd.serve_forever()
        self.httpd.server_close()

    def drain(self, timeout=30.0):
        """Graceful shutdown: refuse new work, finish in-flight, stop.

        Returns ``True`` when every in-flight request finished inside
        ``timeout``.  Idempotent.
        """
        self.admission.begin_drain()
        idle = self.admission.wait_idle(timeout=timeout)
        if not idle:
            logger.warning("drain timed out with %d requests in flight",
                           self.admission.active)
        self.httpd.shutdown()
        self._drained.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self.httpd.server_close()
            self._thread = None
        return idle

    @property
    def draining(self):
        return self.admission.draining

    # -- request handling (called from handler threads) -----------------
    def handle_health(self):
        doc = {
            "status": "draining" if self.draining else "ok",
            "graph_version": self.state.version,
            "active": self.admission.active,
            "waiting": self.admission.waiting,
        }
        if self.state.maintained is not None:
            doc["maintained_embeddings"] = self.state.maintained.num_embeddings()
        return 200, "application/json", encode(doc)

    def handle_metrics(self, fmt="prometheus"):
        if fmt == "json":
            # The JSON snapshot carries per-histogram p50/p95/p99.
            return 200, "application/json", to_json(self.obs.registry).encode("utf-8")
        text = to_prometheus(self.obs.registry)
        return 200, PROMETHEUS_CONTENT_TYPE, text.encode("utf-8")

    # -- debug endpoints -------------------------------------------------
    def handle_debug_traces(self):
        doc = {"traces": self.telemetry.trace_summaries(),
               "sample_rate": self.telemetry.sample_rate}
        return 200, "application/json", encode(doc)

    def handle_debug_trace(self, request_id):
        trace = self.telemetry.trace(request_id)
        if trace is None:
            return 404, "application/json", encode(
                error_document(f"no retained trace {request_id!r} (evicted, "
                               "unsampled, or unknown)")
            )
        return 200, "application/json", encode(trace.to_dict())

    def handle_debug_slow(self):
        doc = {"slow": self.telemetry.slow_records(),
               "slow_query_ms": self.telemetry.slow_query_ms}
        return 200, "application/json", encode(doc)

    def handle_debug_requests(self):
        return 200, "application/json", encode(
            {"in_flight": self.telemetry.in_flight()}
        )

    def handle_counts(self):
        if self.state.maintained is None:
            return 404, "application/json", encode(
                error_document("no maintained census configured")
            )
        with self.state.read():
            doc = {
                "graph_version": self.state.version,
                "counts": {repr(n): c
                           for n, c in self.state.maintained.snapshot().items()},
            }
        return 200, "application/json", encode(doc)

    def handle_query(self, headers, body, content_type):
        self.obs.add("server.requests")
        with self.telemetry.request("query", on_slow=self._slow_plan) as trace:
            try:
                with self.admission.slot() as waited:
                    if waited:
                        trace.root.set("admission_wait_s", round(waited, 6))
                    request = parse_query_request(
                        headers, body, content_type, self.defaults,
                    )
                    trace.query = request.canonical
                    with self.state.read():
                        version = self.state.version
                        key = (
                            request.canonical,
                            version,
                            _freeze(request.budget),
                            request.degrade,
                        )
                        entered = time.perf_counter()
                        table, coalesced, leader_id = self.coalescer.run_traced(
                            key,
                            lambda: self.engine.execute(
                                request.query, budget=request.budget,
                                degrade=request.degrade,
                            ),
                            token=trace.request_id,
                        )
                        if coalesced:
                            trace.link_leader(
                                leader_id, time.perf_counter() - entered,
                            )
            except Saturated as exc:
                trace.status = 429
                self.obs.add("server.rejected")
                doc = error_document(str(exc), retry_after=exc.retry_after)
                return 429, "application/json", encode(doc), {
                    "Retry-After": f"{exc.retry_after:g}",
                }
            except Draining:
                trace.status = 503
                return 503, "application/json", encode(
                    error_document("server is draining")
                )
            except BadRequest as exc:
                trace.status = 400
                self.obs.add("server.bad_requests")
                return 400, "application/json", encode(error_document(str(exc)))
            except BudgetExceeded as exc:
                trace.status = 503
                self.obs.add("server.budget_exceeded")
                hint = ("even the sampling fallback exceeded its grace budget"
                        if request.degrade
                        else "retry with degrade for a partial estimate")
                return 503, "application/json", encode(
                    error_document(str(exc), hint=hint)
                )
            except (QueryError, CensusError) as exc:
                trace.status = 400
                self.obs.add("server.bad_requests")
                return 400, "application/json", encode(error_document(str(exc)))

            trace.status = 200
            if coalesced:
                self.obs.add("server.coalesced")
            if table.partial:
                self.obs.add("server.partial")
            return 200, "application/json", encode(
                result_document(
                    table, version, coalesced,
                    request_id=trace.request_id, trace_id=trace.trace_id,
                    sampled=trace.sampled,
                )
            )

    def _slow_plan(self, trace):
        """Rendered ``EXPLAIN ANALYZE`` for a just-finished slow request.

        Replays the annotation over the trace's recorded span tree —
        the query is **not** executed again.  Coalesced followers have
        no execution spans of their own, so their capture degrades to
        the static plan (the leader's trace carries the actuals).
        """
        if trace.query is None:
            return None
        root = None
        if trace.root is not None:
            root = trace.root.find("query.execute") or trace.root
        with self.state.read():
            return render_analyzed_plan(
                self.engine, trace.query, root, trace.ctx.registry,
            )

    def handle_update(self, body):
        self.obs.add("server.requests")
        with self.telemetry.request("update") as trace:
            try:
                with self.admission.slot() as waited:
                    if waited:
                        trace.root.set("admission_wait_s", round(waited, 6))
                    ops = parse_update_request(body)
                    version = self.state.apply(ops)
            except Saturated as exc:
                trace.status = 429
                self.obs.add("server.rejected")
                doc = error_document(str(exc), retry_after=exc.retry_after)
                return 429, "application/json", encode(doc), {
                    "Retry-After": f"{exc.retry_after:g}",
                }
            except Draining:
                trace.status = 503
                return 503, "application/json", encode(
                    error_document("server is draining")
                )
            except (BadRequest, QueryError, GraphError) as exc:
                trace.status = 400
                self.obs.add("server.bad_requests")
                return 400, "application/json", encode(error_document(str(exc)))
            trace.status = 200
            self.obs.add("server.updates")
            self.obs.set_gauge("server.graph_version", version)
            return 200, "application/json", encode(
                {"graph_version": version, "applied": len(ops),
                 "request_id": trace.request_id, "trace_id": trace.trace_id}
            )


def _freeze(mapping):
    """A hashable image of a budget spec dict (or None)."""
    if mapping is None:
        return None
    return tuple(sorted(mapping.items()))


def _make_handler(server):
    """A request-handler class closed over one :class:`CensusServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Identify quietly; the default advertises the Python version.
        server_version = "repro-census"
        sys_version = ""

        def log_message(self, fmt, *args):
            logger.debug("%s - " + fmt, self.address_string(), *args)

        def _respond(self, status, content_type, payload, extra_headers=None):
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def _dispatch(self, route):
            # Last line of defence: a bug in a handler must still answer
            # the client (500) rather than drop the connection.
            try:
                result = route()
            except Exception:  # noqa: BLE001 - reported, never silenced
                logger.exception("unhandled error serving %s", self.path)
                result = (500, "application/json",
                          encode(error_document("internal server error")))
            self._respond(*result)

        def do_GET(self):
            parts = urlsplit(self.path)
            path = parts.path
            if path == "/health":
                self._dispatch(server.handle_health)
            elif path == "/metrics":
                query = parse_qs(parts.query)
                fmt = (query.get("format") or ["prometheus"])[0]
                self._dispatch(lambda: server.handle_metrics(fmt))
            elif path == "/counts":
                self._dispatch(server.handle_counts)
            elif path == "/debug/traces":
                self._dispatch(server.handle_debug_traces)
            elif path.startswith("/debug/traces/"):
                request_id = path[len("/debug/traces/"):]
                self._dispatch(lambda: server.handle_debug_trace(request_id))
            elif path == "/debug/slow":
                self._dispatch(server.handle_debug_slow)
            elif path == "/debug/requests":
                self._dispatch(server.handle_debug_requests)
            else:
                self._respond(404, "application/json",
                              encode(error_document(f"no route {self.path}")))

        def do_POST(self):
            body = self._read_body()
            if self.path == "/query":
                content_type = self.headers.get("Content-Type", "application/json")
                self._dispatch(lambda: server.handle_query(
                    self.headers, body, content_type))
            elif self.path == "/update":
                self._dispatch(lambda: server.handle_update(body))
            else:
                self._respond(404, "application/json",
                              encode(error_document(f"no route {self.path}")))

    return Handler
