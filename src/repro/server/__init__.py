"""The census serving layer: a concurrent query daemon.

Puts the engine behind a long-running process (``repro serve``) built
from four cooperating pieces:

- :mod:`repro.server.app` — :class:`CensusServer`, the stdlib
  ``ThreadingHTTPServer`` daemon: ``POST /query``, ``POST /update``,
  ``GET /counts``, ``GET /metrics``, ``GET /health``, graceful drain;
- :mod:`repro.server.state` — versioned graph state under a
  writer-preferring read/write lock, with mutations routed through a
  maintained :class:`~repro.census.IncrementalCensus` when configured;
- :mod:`repro.server.coalescing` — single-flight execution of
  concurrent identical queries (keyed on canonical query text + graph
  version + limits);
- :mod:`repro.server.admission` — bounded execute/wait slots, 429 +
  ``Retry-After`` on saturation, drain support.

Request telemetry (:mod:`repro.obs.telemetry`) threads through all of
them: every request gets an ID and a span tree, sampled trees are
served at ``GET /debug/traces``, slow requests at ``GET /debug/slow``
with a replayed ``EXPLAIN ANALYZE`` plan, and in-flight requests at
``GET /debug/requests``.

The serving invariants, enforced across these pieces:

1. **No stale version is ever served.**  Every response names the graph
   version it was computed at; queries hold the read lock for their
   whole execution and all derived state (aggregate cache, coalesced
   flights) is keyed on the version.
2. **Identical concurrent queries execute once.**  Verified by the
   ``server.coalesced`` counter against census-layer counters.
3. **Budgets degrade, saturation rejects.**  A blown budget is 503 (or
   200-with-partial when degradation is on); a full queue is 429 with
   ``Retry-After``; draining is 503.
"""

from repro.server.admission import AdmissionController, Draining, Saturated
from repro.server.app import CensusServer, ServerDefaults
from repro.server.coalescing import Coalescer
from repro.server.protocol import BadRequest
from repro.server.state import GraphState, ReadWriteLock

__all__ = [
    "CensusServer",
    "ServerDefaults",
    "AdmissionController",
    "Saturated",
    "Draining",
    "Coalescer",
    "GraphState",
    "ReadWriteLock",
    "BadRequest",
]
