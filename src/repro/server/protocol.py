"""Wire protocol for the census daemon: request parsing, canonical keys,
response documents.

Everything client-supplied funnels through here so the HTTP handler
only ever sees validated values.  Malformed input raises
:class:`BadRequest`, which the handler maps to a 400 with a JSON error
body — never a stack trace.

**Canonical query keys.**  ``POST /query`` bodies carry query-language
text; two textually different spellings of the same query (whitespace,
optional aliases, redundant parentheses) must coalesce and cache as
one.  The canonical form is ``unparse(parse(text))`` — the PR 3 query
unparser emits a single normalized spelling per AST, so string equality
of canonical text is AST equality.

**Budgets.**  Per-request execution budgets come from the JSON body
(``budget`` object) or headers (``X-Repro-Timeout``, ``X-Repro-Max-Ops``,
``X-Repro-Max-Results``), headers winning; ``degrade`` likewise from
the body or ``X-Repro-Degrade``.  Absent values fall back to the
server's defaults.  Validation lives in
:func:`repro.exec.budget.validate_spec`.
"""

import json

from repro.errors import ParseError, QueryError
from repro.exec.budget import validate_spec
from repro.lang.ast import SelectQuery
from repro.lang.parser import parse_query
from repro.lang.unparse import unparse_query

#: Request headers carrying per-request budget overrides.
HEADER_TIMEOUT = "X-Repro-Timeout"
HEADER_MAX_OPS = "X-Repro-Max-Ops"
HEADER_MAX_RESULTS = "X-Repro-Max-Results"
HEADER_DEGRADE = "X-Repro-Degrade"

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off")


class BadRequest(Exception):
    """Client error: the handler answers 400 with this message."""


class QueryRequest:
    """A validated ``POST /query``: AST, canonical text, limits."""

    __slots__ = ("query", "canonical", "budget", "degrade")

    def __init__(self, query, canonical, budget, degrade):
        self.query = query
        self.canonical = canonical
        self.budget = budget
        self.degrade = degrade


def _parse_json_body(raw, what):
    if not raw:
        raise BadRequest(f"empty {what} body")
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"{what} body is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise BadRequest(f"{what} body must be a JSON object")
    return doc


def _parse_bool(value, what):
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
    raise BadRequest(f"{what} must be a boolean, got {value!r}")


def _header_number(headers, name, kind):
    raw = headers.get(name)
    if raw is None:
        return None
    try:
        return kind(raw)
    except ValueError:
        raise BadRequest(f"header {name} must be a {kind.__name__}, got {raw!r}") from None


def parse_query_request(headers, raw_body, content_type, defaults):
    """Validate a ``POST /query`` into a :class:`QueryRequest`.

    ``defaults`` is the server's :class:`ServerDefaults`-like object with
    ``budget`` (spec dict or ``None``) and ``degrade`` attributes.
    Bodies may be raw query text (``text/plain``) or a JSON object with
    a ``query`` field plus optional ``budget`` / ``degrade``.
    """
    body_budget = {}
    degrade = None
    if content_type.startswith("text/plain"):
        try:
            text = raw_body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise BadRequest(f"query text is not UTF-8: {exc}") from None
    else:
        doc = _parse_json_body(raw_body, "query")
        text = doc.get("query")
        if not isinstance(text, str):
            raise BadRequest('query body needs a string "query" field')
        if "budget" in doc and doc["budget"] is not None:
            if not isinstance(doc["budget"], dict):
                raise BadRequest('"budget" must be an object')
            body_budget = doc["budget"]
        if "degrade" in doc and doc["degrade"] is not None:
            degrade = _parse_bool(doc["degrade"], '"degrade"')

    try:
        ast = parse_query(text)
    except (ParseError, QueryError) as exc:
        raise BadRequest(f"query does not parse: {exc}") from None
    if not isinstance(ast, SelectQuery):
        raise BadRequest("only SELECT statements can be served")
    try:
        canonical = unparse_query(ast)
    except (ParseError, QueryError) as exc:
        raise BadRequest(f"query is not canonicalizable: {exc}") from None

    spec = dict(defaults.budget or {})
    for key, value in body_budget.items():
        spec[key] = value
    header_overrides = {
        "timeout": _header_number(headers, HEADER_TIMEOUT, float),
        "max_ops": _header_number(headers, HEADER_MAX_OPS, int),
        "max_results": _header_number(headers, HEADER_MAX_RESULTS, int),
    }
    for key, value in header_overrides.items():
        if value is not None:
            spec[key] = value
    try:
        budget = validate_spec(spec or None)
    except ValueError as exc:
        raise BadRequest(str(exc)) from None

    header_degrade = headers.get(HEADER_DEGRADE)
    if header_degrade is not None:
        degrade = _parse_bool(header_degrade, f"header {HEADER_DEGRADE}")
    if degrade is None:
        degrade = defaults.degrade

    return QueryRequest(ast, canonical, budget, degrade)


def parse_update_request(raw_body):
    """Validate a ``POST /update`` body into a list of op dicts."""
    from repro.server.state import UPDATE_OPS

    doc = _parse_json_body(raw_body, "update")
    ops = doc.get("ops")
    if not isinstance(ops, list) or not ops:
        raise BadRequest('update body needs a non-empty "ops" array')
    for i, op in enumerate(ops):
        if not isinstance(op, dict):
            raise BadRequest(f"ops[{i}] must be an object")
        kind = op.get("op")
        if kind not in UPDATE_OPS:
            raise BadRequest(
                f"ops[{i}].op must be one of {list(UPDATE_OPS)}, got {kind!r}"
            )
        if kind in ("add_edge", "remove_edge"):
            if "u" not in op or "v" not in op:
                raise BadRequest(f'ops[{i}] ({kind}) needs "u" and "v"')
        else:
            if "node" not in op:
                raise BadRequest(f'ops[{i}] ({kind}) needs "node"')
        attrs = op.get("attrs")
        if attrs is not None and not isinstance(attrs, dict):
            raise BadRequest(f"ops[{i}].attrs must be an object")
        if kind in ("remove_edge", "remove_node") and "attrs" in op:
            raise BadRequest(f"ops[{i}] ({kind}) takes no attrs")
    return ops


def result_document(table, graph_version, coalesced, request_id=None,
                    trace_id=None, sampled=None):
    """The JSON document for a successful query response.

    Request identity fields are included only when ``request_id`` is
    given, so pre-telemetry callers keep their exact document shape.
    """
    doc = {
        "columns": table.columns,
        "rows": [list(r) for r in table.rows],
        "graph_version": graph_version,
        "coalesced": coalesced,
    }
    if request_id is not None:
        doc["request_id"] = request_id
        doc["trace_id"] = trace_id
        doc["sampled"] = bool(sampled)
    if table.partial:
        doc["partial"] = True
        doc["notes"] = table.notes
    return doc


def error_document(message, **extra):
    doc = {"error": message}
    doc.update(extra)
    return doc


def encode(doc):
    """Serialize a response document (graph node ids may be arbitrary
    hashables; anything non-JSON falls back to ``repr``)."""
    return json.dumps(doc, default=repr).encode("utf-8")
