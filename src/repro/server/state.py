"""Versioned graph state shared by the daemon's request threads.

The serving contract is **no stale version is ever served**: every
query response names the graph version it was computed at, and that
version must be the server's current one for the whole execution.  Two
pieces enforce it:

- a :class:`ReadWriteLock`: queries hold the read side while they
  execute, mutations take the write side — so a mutation can never
  slide under a running census, and a query can never observe a
  half-applied batch of updates;
- the **graph mutation version** (:attr:`repro.graph.Graph.version`,
  surfaced as :attr:`QueryEngine.graph_version`), bumped by every
  mutation and baked into cache and coalescing keys.

Mutations are routed through :class:`repro.census.IncrementalCensus`
when the server maintains one (the maintained counts then update with
work proportional to the affected region, amortizing updates the same
way coalescing amortizes queries) and finish with
``engine.refresh_snapshot()`` so a CSR-backed engine re-freezes and the
aggregate cache drops entries for the old version.
"""

import threading

from repro.errors import GraphError, QueryError


class ReadWriteLock:
    """Many concurrent readers or one writer, writer-preferring.

    Writers announce themselves before blocking, and new readers queue
    behind announced writers — a steady query stream therefore cannot
    starve updates.  Not reentrant on either side.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self):
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self):
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def read(self):
        return _Side(self.acquire_read, self.release_read)

    def write(self):
        return _Side(self.acquire_write, self.release_write)


class _Side:
    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release):
        self._acquire = acquire
        self._release = release

    def __enter__(self):
        self._acquire()
        return self

    def __exit__(self, *exc):
        self._release()
        return False


#: Mutation operations POST /update accepts, mapped to appliers.
UPDATE_OPS = ("add_node", "add_edge", "remove_edge", "remove_node")


class GraphState:
    """The daemon's single source of truth: graph + engine + lock.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.query.engine.QueryEngine`; its
        ``base_graph`` is the mutable graph updates apply to.
    maintained:
        Optional :class:`~repro.census.IncrementalCensus` over the same
        graph.  When present, edge/node mutations are routed *through*
        it (so its embeddings and counts stay current incrementally)
        instead of hitting the graph directly.
    """

    def __init__(self, engine, maintained=None):
        self.engine = engine
        self.graph = engine.base_graph
        self.maintained = maintained
        self.lock = ReadWriteLock()

    @property
    def version(self):
        """The graph version queries currently observe."""
        return self.engine.graph_version

    def read(self):
        """Shared-lock scope for query execution."""
        return self.lock.read()

    def apply(self, ops):
        """Apply a batch of mutations atomically; returns the new version.

        The whole batch runs under the write lock and ends with one
        ``refresh_snapshot()``, so concurrent queries see either the
        pre-batch or the post-batch graph, never a prefix.
        """
        with self.lock.write():
            for op in ops:
                self._apply_one(op)
            self.engine.refresh_snapshot()
            return self.engine.graph_version

    def _apply_one(self, op):
        kind = op["op"]
        target = self.maintained if self.maintained is not None else self.graph
        if kind == "add_node":
            target.add_node(op["node"], **op.get("attrs", {}))
        elif kind == "add_edge":
            target.add_edge(op["u"], op["v"], **op.get("attrs", {}))
        elif kind == "remove_edge":
            target.remove_edge(op["u"], op["v"])
        elif kind == "remove_node":
            if self.maintained is not None:
                raise QueryError(
                    "remove_node is not supported while a maintained "
                    "census is configured"
                )
            self.graph.remove_node(op["node"])
        else:  # protocol validation should have caught this
            raise GraphError(f"unknown update op {kind!r}")
