"""Subgraph construction helpers.

``induced_subgraph`` materializes the incident subgraph on a node set —
the building block of the paper's ``SUBGRAPH``, ``SUBGRAPH-INTERSECTION``
and ``SUBGRAPH-UNION`` search neighborhoods.  Materialization (rather
than view objects) keeps the matching algorithms oblivious to where a
graph came from, at the cost the paper's ND-BAS baseline also pays.
"""


def induced_subgraph(graph, nodes):
    """Return a new graph induced on ``nodes`` (attributes are shared).

    Attribute dictionaries are referenced, not copied: census queries
    only read attributes, and sharing keeps ND-BAS extraction cheap.
    """
    from repro.graph.graph import Graph

    node_set = set(nodes)
    sub = Graph(directed=graph.directed)
    for n in node_set:
        sub.add_node(n)
        sub._node_attrs[n] = graph.node_attrs(n)
    for n in node_set:
        for nbr in graph.out_neighbors(n):
            if nbr in node_set and not sub.has_edge(n, nbr):
                sub.add_edge(n, nbr)
                sub._edge_attrs[sub._edge_key(n, nbr)] = graph.edge_attrs(n, nbr)
    return sub


def intersection_neighborhood(graph, n1, n2, k):
    """Node set of ``N_k(n1) ∩ N_k(n2)``."""
    from repro.graph.traversal import k_hop_nodes

    return k_hop_nodes(graph, n1, k) & k_hop_nodes(graph, n2, k)


def union_neighborhood(graph, n1, n2, k):
    """Node set of ``N_k(n1) ∪ N_k(n2)``."""
    from repro.graph.traversal import k_hop_nodes

    return k_hop_nodes(graph, n1, k) | k_hop_nodes(graph, n2, k)
