"""In-memory attributed graph.

The :class:`Graph` class stores an adjacency-list representation of a
directed or undirected graph whose nodes and edges carry arbitrary
attribute dictionaries.  Node identifiers may be any hashable value.

This is the reference implementation of the graph access-path API that
every algorithm in the package is written against; the disk-resident
engine in :mod:`repro.storage` implements the same surface.
"""

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

#: Attribute key conventionally holding a node's label.  The matching
#: algorithms treat a missing label as the single anonymous label ``None``
#: (the paper's "unlabeled" case).
LABEL_KEY = "label"


class Graph:
    """A directed or undirected graph with node and edge attributes.

    Parameters
    ----------
    directed:
        When true, ``add_edge(u, v)`` creates an arc from ``u`` to ``v``
        and ``neighbors`` distinguishes in- from out-neighbors.
    """

    __slots__ = ("directed", "_node_attrs", "_succ", "_pred", "_edge_attrs",
                 "_num_edges", "_version")

    def __init__(self, directed=False):
        self.directed = bool(directed)
        self._node_attrs = {}
        self._succ = {}
        # For undirected graphs _pred aliases _succ so that in_neighbors
        # and out_neighbors coincide without extra bookkeeping.
        self._pred = {} if self.directed else self._succ
        self._edge_attrs = {}
        self._num_edges = 0
        self._version = 0

    @property
    def version(self):
        """Monotonic mutation counter.

        Bumped by every mutating operation that changes the graph
        (node/edge insertion or removal, attribute updates through the
        mutator methods).  Consumers — the query engine's aggregate
        cache, the serving layer's snapshot protocol — key derived state
        on this value so a mutated graph can never be mistaken for the
        one the state was computed from.  Writes through the live dicts
        returned by :meth:`node_attrs` / :meth:`edge_attrs` bypass the
        counter; use :meth:`set_node_attr` / :meth:`add_edge` to keep
        versioned consumers coherent.
        """
        return self._version

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node, **attrs):
        """Add ``node`` (a no-op if present), updating its attributes."""
        if node not in self._node_attrs:
            self._node_attrs[node] = {}
            self._succ[node] = set()
            if self.directed:
                self._pred[node] = set()
            self._version += 1
        if attrs:
            self._node_attrs[node].update(attrs)
            self._version += 1

    def remove_node(self, node):
        """Remove ``node`` and all incident edges."""
        self._require_node(node)
        for v in list(self._succ[node]):
            self.remove_edge(node, v)
        if self.directed:
            for u in list(self._pred[node]):
                self.remove_edge(u, node)
        del self._node_attrs[node]
        del self._succ[node]
        if self.directed:
            del self._pred[node]
        self._version += 1

    def has_node(self, node):
        return node in self._node_attrs

    def nodes(self):
        """Iterate over node identifiers."""
        return iter(self._node_attrs)

    def node_attrs(self, node):
        """Return the live attribute dict of ``node``."""
        self._require_node(node)
        return self._node_attrs[node]

    def node_attr(self, node, key, default=None):
        """Return one attribute of ``node`` (``default`` if absent)."""
        self._require_node(node)
        return self._node_attrs[node].get(key, default)

    def set_node_attr(self, node, key, value):
        self._require_node(node)
        self._node_attrs[node][key] = value
        self._version += 1

    def label(self, node):
        """Return the node's label attribute (``None`` when unlabeled)."""
        return self.node_attr(node, LABEL_KEY)

    @property
    def num_nodes(self):
        return len(self._node_attrs)

    def __len__(self):
        return len(self._node_attrs)

    def __contains__(self, node):
        return node in self._node_attrs

    def __iter__(self):
        return iter(self._node_attrs)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u, v, **attrs):
        """Add an edge (arc when directed) from ``u`` to ``v``.

        Endpoints are created implicitly.  Self-loops are rejected: the
        paper's patterns and neighborhoods are over simple graphs.
        Re-adding an existing edge merges attributes.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r} is not allowed")
        self.add_node(u)
        self.add_node(v)
        key = self._edge_key(u, v)
        if key not in self._edge_attrs:
            self._edge_attrs[key] = {}
            self._num_edges += 1
            self._succ[u].add(v)
            self._pred[v].add(u)
            self._version += 1
        if attrs:
            self._edge_attrs[key].update(attrs)
            self._version += 1

    def remove_edge(self, u, v):
        key = self._edge_key(u, v)
        if key not in self._edge_attrs:
            raise EdgeNotFoundError(u, v)
        del self._edge_attrs[key]
        self._num_edges -= 1
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._version += 1

    def has_edge(self, u, v):
        """True if the edge (arc from ``u`` to ``v`` when directed) exists."""
        return self._edge_key(u, v) in self._edge_attrs

    def edges(self):
        """Iterate over edges as ``(u, v)`` tuples.

        For undirected graphs each edge appears once, with endpoints in
        the order the edge was first added.
        """
        return iter(self._edge_attrs)

    def edge_attrs(self, u, v):
        """Return the live attribute dict of the edge ``(u, v)``."""
        key = self._edge_key(u, v)
        try:
            return self._edge_attrs[key]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def edge_attr(self, u, v, key, default=None):
        return self.edge_attrs(u, v).get(key, default)

    @property
    def num_edges(self):
        return self._num_edges

    def _edge_key(self, u, v):
        if self.directed:
            return (u, v)
        # Canonical undirected key: order by hash then repr so any
        # hashable node type works deterministically.
        if u == v:
            return (u, v)
        try:
            return (u, v) if u <= v else (v, u)
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node):
        """All neighbors of ``node``; for directed graphs, the union of
        in- and out-neighbors (the paper's k-hop neighborhoods ignore
        direction when expanding)."""
        self._require_node(node)
        if not self.directed:
            return self._succ[node]
        return self._succ[node] | self._pred[node]

    def out_neighbors(self, node):
        self._require_node(node)
        return self._succ[node]

    def in_neighbors(self, node):
        self._require_node(node)
        return self._pred[node]

    def degree(self, node):
        """Number of distinct neighbors (direction-blind)."""
        return len(self.neighbors(node))

    def out_degree(self, node):
        return len(self.out_neighbors(node))

    def in_degree(self, node):
        return len(self.in_neighbors(node))

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def copy(self):
        """Deep-enough copy: attribute dicts are copied one level deep."""
        g = Graph(directed=self.directed)
        for n, attrs in self._node_attrs.items():
            g.add_node(n, **attrs)
        for (u, v), attrs in self._edge_attrs.items():
            g.add_edge(u, v, **attrs)
        return g

    def labels(self):
        """The set of distinct node labels present (may include ``None``)."""
        return {attrs.get(LABEL_KEY) for attrs in self._node_attrs.values()}

    def _require_node(self, node):
        if node not in self._node_attrs:
            raise NodeNotFoundError(node)

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return f"<Graph {kind} nodes={self.num_nodes} edges={self.num_edges}>"
