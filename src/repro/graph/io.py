"""Graph (de)serialization: JSON documents and edge-list text files."""

import json

from repro.errors import GraphError
from repro.graph.graph import Graph

_FORMAT_VERSION = 1


def to_dict(graph):
    """Encode ``graph`` as a JSON-serializable dict."""
    return {
        "format": _FORMAT_VERSION,
        "directed": graph.directed,
        "nodes": [[_encode_id(n), graph.node_attrs(n)] for n in graph.nodes()],
        "edges": [
            [_encode_id(u), _encode_id(v), graph.edge_attrs(u, v)] for u, v in graph.edges()
        ],
    }


def from_dict(doc):
    """Decode a dict produced by :func:`to_dict`."""
    if doc.get("format") != _FORMAT_VERSION:
        raise GraphError(f"unsupported graph format: {doc.get('format')!r}")
    g = Graph(directed=doc["directed"])
    for node, attrs in doc["nodes"]:
        g.add_node(_decode_id(node), **attrs)
    for u, v, attrs in doc["edges"]:
        g.add_edge(_decode_id(u), _decode_id(v), **attrs)
    return g


def save_json(graph, path):
    with open(path, "w") as f:
        json.dump(to_dict(graph), f)


def load_json(path):
    with open(path) as f:
        return from_dict(json.load(f))


def _encode_id(node):
    # JSON keys round-trip ints and strings; tag anything else.
    if isinstance(node, (int, str)):
        return node
    raise GraphError(f"only int/str node ids are serializable, got {type(node).__name__}")


def _decode_id(raw):
    return raw


def save_edge_list(graph, path, label_key="label"):
    """Write a whitespace edge list with an optional leading label block.

    Format::

        # nodes
        <id> <label>
        ...
        # edges
        <u> <v>
    """
    with open(path, "w") as f:
        f.write("# nodes\n")
        for n in graph.nodes():
            label = graph.node_attr(n, label_key)
            f.write(f"{n} {label if label is not None else '-'}\n")
        f.write("# edges\n")
        for u, v in graph.edges():
            f.write(f"{u} {v}\n")


def load_edge_list(path, directed=False, label_key="label"):
    """Read a file written by :func:`save_edge_list` (int node ids)."""
    g = Graph(directed=directed)
    section = None
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                section = line[1:].strip().lower()
                continue
            parts = line.split()
            if section == "nodes":
                node = int(parts[0])
                if len(parts) > 1 and parts[1] != "-":
                    g.add_node(node, **{label_key: parts[1]})
                else:
                    g.add_node(node)
            elif section == "edges":
                g.add_edge(int(parts[0]), int(parts[1]))
            else:
                raise GraphError(f"line outside a section: {line!r}")
    return g
