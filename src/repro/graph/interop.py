"""NetworkX interoperability.

Downstream users usually already hold a ``networkx`` graph; these
converters move attributed graphs in both directions.  NetworkX is an
optional dependency — the module imports it lazily and raises a clear
error when it is missing.
"""

from repro.errors import GraphError
from repro.graph.graph import Graph


def _networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise GraphError(
            "networkx is not installed; install it to use repro.graph.interop"
        ) from exc
    return networkx


def from_networkx(nx_graph):
    """Convert a networkx (Di)Graph into a :class:`repro.graph.Graph`.

    Node and edge attribute dicts are copied.  Multi-graphs are
    rejected: the census data model has at most one edge per ordered
    pair.  Self-loops are dropped (the paper's model is simple graphs).
    """
    nx = _networkx()
    if isinstance(nx_graph, (nx.MultiGraph, nx.MultiDiGraph)):
        raise GraphError("multigraphs are not supported; collapse parallel edges first")
    g = Graph(directed=nx_graph.is_directed())
    for node, attrs in nx_graph.nodes(data=True):
        g.add_node(node, **attrs)
    for u, v, attrs in nx_graph.edges(data=True):
        if u == v:
            continue
        g.add_edge(u, v, **attrs)
    return g


def to_networkx(graph):
    """Convert a :class:`repro.graph.Graph` (or DiskGraph) to networkx."""
    nx = _networkx()
    out = nx.DiGraph() if graph.directed else nx.Graph()
    for node in graph.nodes():
        out.add_node(node, **dict(graph.node_attrs(node)))
    for u, v in graph.edges():
        out.add_edge(u, v, **dict(graph.edge_attrs(u, v)))
    return out
