"""Attributed graph core: storage-agnostic graph API, traversal, profiles.

The census and matching algorithms in this package only rely on the small
access-path surface defined by :class:`repro.graph.graph.Graph`:

- node iteration and attribute access,
- neighbor iteration (``neighbors`` / ``out_neighbors`` / ``in_neighbors``),
- edge existence and edge attribute access.

Both the in-memory :class:`Graph` and the disk-resident
:class:`repro.storage.DiskGraph` implement this surface, mirroring the
paper's prototype which ran on top of a disk-based graph engine (Neo4j).
"""

from repro.graph.csr import CSRGraph, CSRProfileIndex, freeze
from repro.graph.graph import Graph
from repro.graph.profiles import NodeProfileIndex, profile_contains
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    connected_components,
    ego_subgraph,
    k_hop_distances,
    k_hop_nodes,
    pairwise_distances,
    shortest_path_length,
)
from repro.graph.views import induced_subgraph, intersection_neighborhood, union_neighborhood

__all__ = [
    "Graph",
    "CSRGraph",
    "CSRProfileIndex",
    "freeze",
    "NodeProfileIndex",
    "profile_contains",
    "bfs_distances",
    "bfs_layers",
    "connected_components",
    "ego_subgraph",
    "k_hop_distances",
    "k_hop_nodes",
    "pairwise_distances",
    "shortest_path_length",
    "induced_subgraph",
    "intersection_neighborhood",
    "union_neighborhood",
]
