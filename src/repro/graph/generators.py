"""Synthetic graph generators used by the paper's evaluation.

The paper's synthetic experiments use preferential-attachment graphs with
``edges = 5 x nodes`` and node labels drawn uniformly from 4 labels.
:func:`preferential_attachment` reproduces that model (Barabási–Albert
with ``m`` edges per arriving node); the other generators supply graphs
for the motivating applications (signed networks for structural balance,
organization-labeled networks for brokerage) and for property tests.

All generators are deterministic given ``seed``.
"""

import random

from repro.errors import GraphError
from repro.graph.graph import Graph

#: The label alphabet the paper samples from (|L| = 4).
DEFAULT_LABELS = ("A", "B", "C", "D")


def preferential_attachment(num_nodes, m=5, seed=0, directed=False):
    """Barabási–Albert graph with ``m`` edges per arriving node.

    With ``m=5`` the edge count approaches ``5 x num_nodes``, matching the
    paper's synthetic datasets.  Uses the standard repeated-nodes urn so
    attachment probability is proportional to degree.
    """
    if num_nodes < 1:
        raise GraphError("num_nodes must be >= 1")
    if m < 1:
        raise GraphError("m must be >= 1")
    rng = random.Random(seed)
    g = Graph(directed=directed)

    seed_size = min(max(m, 1), num_nodes)
    for node in range(seed_size):
        g.add_node(node)
    # Connect the seed nodes in a path so the urn starts non-empty.
    urn = []
    for node in range(1, seed_size):
        g.add_edge(node - 1, node)
        urn.extend((node - 1, node))
    if seed_size == 1:
        urn.append(0)

    for node in range(seed_size, num_nodes):
        targets = set()
        want = min(m, node)
        # Sample distinct targets proportionally to degree.
        while len(targets) < want:
            targets.add(rng.choice(urn))
        g.add_node(node)
        for t in targets:
            g.add_edge(node, t)
            urn.extend((node, t))
    return g


def erdos_renyi(num_nodes, num_edges, seed=0, directed=False):
    """G(n, m) random graph with exactly ``num_edges`` distinct edges."""
    max_edges = num_nodes * (num_nodes - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges in {num_nodes} nodes")
    rng = random.Random(seed)
    g = Graph(directed=directed)
    for node in range(num_nodes):
        g.add_node(node)
    placed = 0
    while placed < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        placed += 1
    return g


def watts_strogatz(num_nodes, k=4, beta=0.1, seed=0):
    """Small-world ring lattice with rewiring probability ``beta``."""
    if k % 2 or k >= num_nodes:
        raise GraphError("k must be even and < num_nodes")
    rng = random.Random(seed)
    g = Graph()
    for node in range(num_nodes):
        g.add_node(node)
    for node in range(num_nodes):
        for j in range(1, k // 2 + 1):
            target = (node + j) % num_nodes
            if rng.random() < beta:
                candidates = [
                    w for w in range(num_nodes) if w != node and not g.has_edge(node, w)
                ]
                if candidates:
                    target = rng.choice(candidates)
            if not g.has_edge(node, target) and node != target:
                g.add_edge(node, target)
    return g


def assign_random_labels(graph, labels=DEFAULT_LABELS, seed=0, key="label"):
    """Label every node uniformly at random from ``labels`` (in place)."""
    rng = random.Random(seed)
    for node in graph.nodes():
        graph.set_node_attr(node, key, rng.choice(labels))
    return graph


def labeled_preferential_attachment(num_nodes, m=5, num_labels=4, seed=0, directed=False):
    """The paper's synthetic dataset: PA graph + uniform random labels."""
    labels = DEFAULT_LABELS[:num_labels] if num_labels <= len(DEFAULT_LABELS) else tuple(
        f"L{i}" for i in range(num_labels)
    )
    g = preferential_attachment(num_nodes, m=m, seed=seed, directed=directed)
    return assign_random_labels(g, labels=labels, seed=seed + 1)


def signed_network(num_nodes, m=3, negative_fraction=0.3, seed=0):
    """PA graph whose edges carry a ``sign`` attribute (+1 or -1).

    Used by the structural-balance application: triangles with an odd
    number of negative edges are "unstable".
    """
    rng = random.Random(seed)
    g = preferential_attachment(num_nodes, m=m, seed=seed)
    for u, v in g.edges():
        sign = -1 if rng.random() < negative_fraction else 1
        g.edge_attrs(u, v)["sign"] = sign
    return g


def organizational_network(num_nodes, num_orgs=3, m=3, seed=0, directed=True):
    """Directed PA graph with an ``org`` attribute per node.

    Used by the brokerage application (Figure 1(c)): the role of the
    middle node of a directed path A -> B -> C depends on the three
    nodes' organizations.
    """
    rng = random.Random(seed)
    g = preferential_attachment(num_nodes, m=m, seed=seed, directed=directed)
    for node in g.nodes():
        g.set_node_attr(node, "org", f"org{rng.randrange(num_orgs)}")
    return g


def stochastic_block_model(block_sizes, p_in, p_out, seed=0):
    """Community-structured random graph.

    Nodes are partitioned into blocks of the given sizes; each
    within-block pair is an edge with probability ``p_in``, each
    cross-block pair with probability ``p_out``.  Nodes carry a
    ``block`` attribute.  Used by tests that need planted community
    structure (ego networks inside a block are denser than across).
    """
    if not 0.0 <= p_out <= p_in <= 1.0:
        raise GraphError("need 0 <= p_out <= p_in <= 1")
    rng = random.Random(seed)
    g = Graph()
    block_of = {}
    node = 0
    for b, size in enumerate(block_sizes):
        for _ in range(size):
            g.add_node(node, block=b)
            block_of[node] = b
            node += 1
    for u in range(node):
        for v in range(u + 1, node):
            p = p_in if block_of[u] == block_of[v] else p_out
            if p > 0 and rng.random() < p:
                g.add_edge(u, v)
    return g


def planted_pattern_graph(num_nodes, pattern_edges, copies, noise_edges, seed=0):
    """A sparse noise graph with ``copies`` disjoint copies of a pattern.

    ``pattern_edges`` is a list of ``(i, j)`` index pairs over the
    pattern's nodes.  Every copy is placed on fresh node ids, then
    ``noise_edges`` random extra edges are added.  Handy for tests that
    need a known lower bound on match counts.
    """
    rng = random.Random(seed)
    pattern_size = 1 + max(max(i, j) for i, j in pattern_edges)
    needed = copies * pattern_size
    if needed > num_nodes:
        raise GraphError("not enough nodes for the requested copies")
    g = Graph()
    for node in range(num_nodes):
        g.add_node(node)
    for c in range(copies):
        base = c * pattern_size
        for i, j in pattern_edges:
            g.add_edge(base + i, base + j)
    placed = 0
    while placed < noise_edges:
        u = rng.randrange(needed, num_nodes) if num_nodes > needed else rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        placed += 1
    return g
