"""Read-optimized CSR graph snapshots.

:func:`freeze` converts any graph implementing the access-path API into
a :class:`CSRGraph`: an immutable snapshot whose adjacency lives in
int-indexed compressed-sparse-row arrays (``array('q')`` index and
offset vectors — no third-party dependency).  The snapshot implements
the same access-path surface as :class:`repro.graph.graph.Graph`, so
every matcher and census algorithm runs on it unchanged, while the hot
paths get three structural advantages:

- **contiguous adjacency** — neighbors of a node are one slice of one
  array, iterated as a cached tuple of dense int indexes instead of a
  hash-set walk; the direction-blind union adjacency that directed
  graphs recompute per ``neighbors()`` call is materialized once;
- **label-partitioned adjacency + per-label node indexes** — each
  node's union-adjacency slice is grouped by neighbor label, so node
  profiles (the CN matcher's candidate filter) are read off slice
  widths, and ``nodes_with_label`` is a precomputed bucket.  The
  snapshot carries a ready :class:`CSRProfileIndex` with the
  :class:`repro.graph.profiles.NodeProfileIndex` API, which
  ``enumerate_candidates`` picks up automatically;
- **native traversal** — BFS over the int arrays with a byte-mask
  visited set (:mod:`repro.graph.traversal` dispatches to the
  ``_native_bfs_*`` hooks), the dominant cost of the node-driven census
  algorithms.

Snapshots are cheap to share with worker processes: pickling keeps only
the canonical arrays and attribute dicts and rebuilds derived caches
lazily on first use (see :mod:`repro.census.parallel`).
"""

from array import array
from collections import Counter

try:  # pragma: no cover - exercised via both branches in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.graph import LABEL_KEY, Graph


def numpy_available():
    """True when the optional numpy acceleration is importable."""
    return _np is not None


def freeze(graph):
    """Snapshot ``graph`` into a :class:`CSRGraph` (no-op when frozen)."""
    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph(graph)


class CSRProfileIndex:
    """Node profiles served from a CSR snapshot's label partitions.

    Same surface as :class:`repro.graph.profiles.NodeProfileIndex`, but
    nothing is computed per query: profiles are slice widths of the
    label-partitioned adjacency and label buckets were built at freeze
    time.
    """

    __slots__ = ("_csr",)

    def __init__(self, csr):
        self._csr = csr

    def profile(self, node):
        return self._csr._profiles()[self._csr._index[node]]

    def nodes_with_label(self, label):
        return self._csr._by_label.get(label, frozenset())

    def labels(self):
        return set(self._csr._by_label)

    def candidates(self, label, pattern_profile):
        from repro.graph.profiles import profile_contains

        profiles = self._csr._profiles()
        index = self._csr._index
        return [
            n
            for n in self._csr._by_label.get(label, ())
            if profile_contains(profiles[index[n]], pattern_profile)
        ]

    def __len__(self):
        return len(self._csr)


class CSRGraph:
    """An immutable, read-optimized snapshot of a graph.

    Node identifiers, attributes, and edge attributes are preserved (the
    attribute dicts are shared with the source graph, not copied); the
    mutation half of the :class:`Graph` API raises :class:`GraphError`.
    Use :meth:`thaw` to get a mutable copy back.
    """

    __slots__ = (
        "directed",
        "_ids",
        "_index",
        "_node_attrs",
        "_edge_attrs",
        "_num_edges",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_all_indptr",
        "_all_indices",
        "_label_slices",
        "_by_label",
        # Derived caches, rebuilt lazily after unpickling.
        "_adj_all",
        "_adj_out",
        "_adj_in",
        "_idx_sets",
        "_np_adj",
        "_identity_cache",
        "_nbr_all",
        "_nbr_out",
        "_nbr_in",
        "_profile_cache",
        "_profile_index_cache",
    )

    def __init__(self, graph):
        self.directed = bool(graph.directed)
        self._ids = list(graph.nodes())
        self._index = {n: i for i, n in enumerate(self._ids)}
        self._node_attrs = {n: graph.node_attrs(n) for n in self._ids}
        self._edge_attrs = {}
        for u, v in graph.edges():
            self._edge_attrs[self._edge_key(u, v)] = graph.edge_attrs(u, v)
        self._num_edges = graph.num_edges

        index = self._index
        label_rank = {}
        for n in self._ids:
            label = self._node_attrs[n].get(LABEL_KEY)
            if label not in label_rank:
                label_rank[label] = None
        for rank, label in enumerate(sorted(label_rank, key=repr)):
            label_rank[label] = rank
        labels_of = [self._node_attrs[n].get(LABEL_KEY) for n in self._ids]

        self._out_indptr, self._out_indices = self._build_adjacency(
            (sorted(index[x] for x in graph.out_neighbors(n)) for n in self._ids)
        )
        if self.directed:
            self._in_indptr, self._in_indices = self._build_adjacency(
                (sorted(index[x] for x in graph.in_neighbors(n)) for n in self._ids)
            )
        else:
            self._in_indptr, self._in_indices = self._out_indptr, self._out_indices

        # Union adjacency, label-partitioned: each node's slice is sorted
        # by (neighbor label rank, neighbor index); _label_slices[i] maps
        # the slice up into per-label runs.
        all_indptr = array("q", [0])
        all_indices = array("q")
        label_slices = []
        pos = 0
        for n in self._ids:
            nbrs = sorted(
                (index[x] for x in graph.neighbors(n)),
                key=lambda j: (label_rank[labels_of[j]], j),
            )
            all_indices.extend(nbrs)
            runs = []
            start = 0
            while start < len(nbrs):
                label = labels_of[nbrs[start]]
                end = start
                while end < len(nbrs) and labels_of[nbrs[end]] == label:
                    end += 1
                runs.append((label, pos + start, pos + end))
                start = end
            label_slices.append(tuple(runs))
            pos += len(nbrs)
            all_indptr.append(pos)
        self._all_indptr, self._all_indices = all_indptr, all_indices
        self._label_slices = label_slices

        by_label = {}
        for n, label in zip(self._ids, labels_of):
            by_label.setdefault(label, []).append(n)
        self._by_label = {label: frozenset(ns) for label, ns in by_label.items()}

        self._init_caches()

    @staticmethod
    def _build_adjacency(rows):
        indptr = array("q", [0])
        indices = array("q")
        pos = 0
        for row in rows:
            indices.extend(row)
            pos += len(row)
            indptr.append(pos)
        return indptr, indices

    def _init_caches(self):
        self._adj_all = None
        self._adj_out = None
        self._adj_in = None
        self._idx_sets = None
        self._np_adj = None
        self._identity_cache = None
        self._nbr_all = None
        self._nbr_out = None
        self._nbr_in = None
        self._profile_cache = None
        self._profile_index_cache = None

    # ------------------------------------------------------------------
    # Pickling: ship only canonical state; caches rebuild lazily.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "directed": self.directed,
            "_ids": self._ids,
            "_index": self._index,
            "_node_attrs": self._node_attrs,
            "_edge_attrs": self._edge_attrs,
            "_num_edges": self._num_edges,
            "_out_indptr": self._out_indptr,
            "_out_indices": self._out_indices,
            "_in_indptr": self._in_indptr,
            "_in_indices": self._in_indices,
            "_all_indptr": self._all_indptr,
            "_all_indices": self._all_indices,
            "_label_slices": self._label_slices,
            "_by_label": self._by_label,
        }

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)
        if not self.directed:
            self._in_indptr, self._in_indices = self._out_indptr, self._out_indices
        self._init_caches()

    # ------------------------------------------------------------------
    # Derived caches
    # ------------------------------------------------------------------
    def _tuples(self, indptr, indices):
        flat = indices.tolist()
        return [tuple(flat[indptr[i]:indptr[i + 1]]) for i in range(len(self._ids))]

    def _adjacency(self):
        """Per-node tuples of neighbor *indexes* (the native-BFS fuel)."""
        adj = self._adj_all
        if adj is None:
            adj = self._adj_all = self._tuples(self._all_indptr, self._all_indices)
        return adj

    def _index_sets(self):
        """Per-node frozensets of neighbor indexes.

        The native BFS expands whole frontiers with C-level set unions
        over these, which is where the CSR backend's traversal speedup
        comes from: one hash per edge inside the union instead of a
        Python-level loop iteration per edge.
        """
        sets = self._idx_sets
        if sets is None:
            sets = self._idx_sets = [frozenset(row) for row in self._adjacency()]
        return sets

    def _neighbor_sets(self, kind):
        ids = self._ids
        if kind == "all":
            sets = self._nbr_all
            if sets is None:
                sets = self._nbr_all = [
                    frozenset(ids[j] for j in row) for row in self._adjacency()
                ]
        elif kind == "out":
            sets = self._nbr_out
            if sets is None:
                if not self.directed:
                    sets = self._nbr_out = self._neighbor_sets("all")
                else:
                    sets = self._nbr_out = [
                        frozenset(ids[j] for j in row)
                        for row in self._tuples(self._out_indptr, self._out_indices)
                    ]
        else:
            sets = self._nbr_in
            if sets is None:
                if not self.directed:
                    sets = self._nbr_in = self._neighbor_sets("all")
                else:
                    sets = self._nbr_in = [
                        frozenset(ids[j] for j in row)
                        for row in self._tuples(self._in_indptr, self._in_indices)
                    ]
        return sets

    def _profiles(self):
        profiles = self._profile_cache
        if profiles is None:
            profiles = []
            for runs in self._label_slices:
                c = Counter()
                for label, start, end in runs:
                    c[label] = end - start
                profiles.append(c)
            self._profile_cache = profiles
        return profiles

    @property
    def profile_index(self):
        """A ready-made profile index (NodeProfileIndex API)."""
        idx = self._profile_index_cache
        if idx is None:
            idx = self._profile_index_cache = CSRProfileIndex(self)
        return idx

    # ------------------------------------------------------------------
    # Columnar access (int-indexed views for vectorized consumers)
    # ------------------------------------------------------------------
    @property
    def node_index(self):
        """Mapping from node id to its dense CSR index (do not mutate)."""
        return self._index

    @property
    def node_ids(self):
        """List of node ids in index order (do not mutate)."""
        return self._ids

    def frontier_arrays(self, source, max_depth=None):
        """BFS frontiers from ``source`` as sorted int64 *index* arrays.

        The vectorized census paths consume these directly instead of
        id-space sets.  Requires the optional numpy acceleration; gate
        callers on :func:`numpy_available`.
        """
        if _np is None:
            raise GraphError("frontier_arrays requires numpy")
        self._require_node(source)
        return self._frontier_arrays(source, max_depth)

    def union_adjacency(self):
        """The direction-blind adjacency as raw CSR vectors
        ``(indptr, indices)`` over node indexes — ``array('q')`` values
        that numpy views zero-copy (``np.frombuffer``)."""
        return self._all_indptr, self._all_indices

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def _require_node(self, node):
        if node not in self._index:
            raise NodeNotFoundError(node)

    def _frozen(self, op):
        raise GraphError(
            f"cannot {op}: CSRGraph is an immutable snapshot (thaw() for a "
            "mutable copy)"
        )

    def add_node(self, node, **attrs):
        self._frozen("add a node")

    def remove_node(self, node):
        self._frozen("remove a node")

    def set_node_attr(self, node, key, value):
        self._frozen("set a node attribute")

    def has_node(self, node):
        return node in self._index

    def nodes(self):
        return iter(self._ids)

    def node_attrs(self, node):
        self._require_node(node)
        return self._node_attrs[node]

    def node_attr(self, node, key, default=None):
        self._require_node(node)
        return self._node_attrs[node].get(key, default)

    def label(self, node):
        return self.node_attr(node, LABEL_KEY)

    @property
    def num_nodes(self):
        return len(self._ids)

    def __len__(self):
        return len(self._ids)

    def __contains__(self, node):
        return node in self._index

    def __iter__(self):
        return iter(self._ids)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u, v, **attrs):
        self._frozen("add an edge")

    def remove_edge(self, u, v):
        self._frozen("remove an edge")

    def has_edge(self, u, v):
        return self._edge_key(u, v) in self._edge_attrs

    def edges(self):
        return iter(self._edge_attrs)

    def edge_attrs(self, u, v):
        key = self._edge_key(u, v)
        try:
            return self._edge_attrs[key]
        except KeyError:
            raise EdgeNotFoundError(u, v) from None

    def edge_attr(self, u, v, key, default=None):
        return self.edge_attrs(u, v).get(key, default)

    @property
    def num_edges(self):
        return self._num_edges

    def _edge_key(self, u, v):
        # Mirrors Graph._edge_key so snapshots of the same graph agree.
        if self.directed:
            return (u, v)
        if u == v:
            return (u, v)
        try:
            return (u, v) if u <= v else (v, u)
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node):
        self._require_node(node)
        return self._neighbor_sets("all")[self._index[node]]

    def out_neighbors(self, node):
        self._require_node(node)
        return self._neighbor_sets("out")[self._index[node]]

    def in_neighbors(self, node):
        self._require_node(node)
        return self._neighbor_sets("in")[self._index[node]]

    def neighbors_with_label(self, node, label):
        """Neighbors of ``node`` labeled ``label`` (one contiguous run)."""
        self._require_node(node)
        ids = self._ids
        flat = self._all_indices
        for run_label, start, end in self._label_slices[self._index[node]]:
            if run_label == label:
                return tuple(ids[flat[j]] for j in range(start, end))
        return ()

    def degree(self, node):
        self._require_node(node)
        i = self._index[node]
        return self._all_indptr[i + 1] - self._all_indptr[i]

    def out_degree(self, node):
        self._require_node(node)
        i = self._index[node]
        return self._out_indptr[i + 1] - self._out_indptr[i]

    def in_degree(self, node):
        self._require_node(node)
        i = self._index[node]
        return self._in_indptr[i + 1] - self._in_indptr[i]

    # ------------------------------------------------------------------
    # Native traversal hooks (dispatched by repro.graph.traversal)
    # ------------------------------------------------------------------
    def _np_adjacency(self):
        """Zero-copy int64 views of the union-adjacency CSR vectors."""
        adj = self._np_adj
        if adj is None:
            adj = self._np_adj = (
                _np.frombuffer(self._all_indptr, dtype=_np.int64),
                _np.frombuffer(self._all_indices, dtype=_np.int64),
            )
        return adj

    def _ids_are_identity(self):
        """True when node ids are exactly the indexes ``0..n-1`` — BFS
        layers can then skip the index-to-id remapping entirely."""
        flag = self._identity_cache
        if flag is None:
            flag = self._identity_cache = all(
                type(n) is int and n == i for i, n in enumerate(self._ids)
            )
        return flag

    def _frontier_arrays(self, source, max_depth):
        """Yield BFS frontiers as sorted int64 index arrays (numpy path).

        Each expansion is four vectorized steps: gather every frontier
        node's adjacency slice out of the CSR vectors, drop visited
        entries with a boolean mask, dedupe with ``unique``, mark the
        survivors visited.  No per-edge Python bytecode at all.
        """
        indptr, indices = self._np_adjacency()
        n = len(self._ids)
        visited = _np.zeros(n, dtype=bool)
        layer_mask = _np.zeros(n, dtype=bool)
        frontier = _np.array([self._index[source]], dtype=_np.int64)
        visited[frontier] = True
        yield frontier
        d = 0
        while frontier.size and (max_depth is None or d < max_depth):
            d += 1
            if frontier.size == 1:
                u = frontier[0]
                nbrs = indices[indptr[u]:indptr[u + 1]]
            else:
                starts = indptr[frontier]
                counts = indptr[frontier + 1] - starts
                total = int(counts.sum())
                if not total:
                    return
                ends = _np.cumsum(counts)
                offsets = _np.repeat(starts - ends + counts, counts) + _np.arange(total)
                nbrs = indices[offsets]
            nbrs = nbrs[~visited[nbrs]]
            if not nbrs.size:
                return
            # Dedupe via the reusable layer mask: cheaper than np.unique
            # (no hashing, no sort), and flatnonzero returns sorted order.
            layer_mask[nbrs] = True
            frontier = _np.flatnonzero(layer_mask)
            layer_mask[frontier] = False
            visited[frontier] = True
            yield frontier

    def _frontiers(self, source, max_depth):
        """Yield BFS frontiers as sets of node indexes, layer by layer."""
        if _np is not None:
            for arr in self._frontier_arrays(source, max_depth):
                yield set(arr.tolist())
            return
        nbrs = self._index_sets()
        frontier = {self._index[source]}
        visited = set(frontier)
        yield frontier
        d = 0
        while frontier and (max_depth is None or d < max_depth):
            d += 1
            nxt = set()
            for u in frontier:
                nxt |= nbrs[u]
            nxt -= visited
            if not nxt:
                return
            visited |= nxt
            yield nxt
            frontier = nxt

    def _native_bfs_distances(self, source, max_depth=None):
        self._require_node(source)
        ids = self._ids
        dist = {}
        for d, frontier in enumerate(self._frontiers(source, max_depth)):
            for v in frontier:
                dist[ids[v]] = d
        return dist

    def _native_bfs_layers(self, source, max_depth=None):
        self._require_node(source)
        ids = self._ids
        for d, frontier in enumerate(self._frontiers(source, max_depth)):
            for v in frontier:
                yield ids[v], d

    def _native_bfs_layer_sets(self, source, max_depth=None):
        self._require_node(source)
        if _np is not None and self._ids_are_identity():
            # Index sets ARE id sets; one tolist per layer, nothing else.
            for arr in self._frontier_arrays(source, max_depth):
                yield set(arr.tolist())
            return
        ids = self._ids
        for frontier in self._frontiers(source, max_depth):
            yield {ids[v] for v in frontier}

    def _native_k_hop_nodes(self, source, k):
        self._require_node(source)
        ids = self._ids
        if _np is not None:
            layers = list(self._frontier_arrays(source, k))
            flat = _np.concatenate(layers) if len(layers) > 1 else layers[0]
            if self._ids_are_identity():
                return set(flat.tolist())
            return {ids[v] for v in flat.tolist()}
        visited = set()
        for frontier in self._frontiers(source, k):
            visited |= frontier
        return {ids[v] for v in visited}

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def thaw(self):
        """A mutable :class:`Graph` copy (attribute dicts copied one level)."""
        g = Graph(directed=self.directed)
        for n in self._ids:
            g.add_node(n, **self._node_attrs[n])
        for (u, v), attrs in self._edge_attrs.items():
            g.add_edge(u, v, **attrs)
        return g

    def copy(self):
        """Alias of :meth:`thaw`: copies of a snapshot are mutable."""
        return self.thaw()

    def labels(self):
        return set(self._by_label)

    def __repr__(self):
        kind = "directed" if self.directed else "undirected"
        return (
            f"<CSRGraph {kind} nodes={self.num_nodes} edges={self.num_edges} "
            f"labels={len(self._by_label)}>"
        )
