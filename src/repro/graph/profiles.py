"""Node profiles and the profile index (Section III-A of the paper).

A node profile is the vector of neighbor counts per label.  A database
node ``n`` is a candidate for a pattern node ``v`` iff the profile of
``v`` is contained in the profile of ``n`` — for every label, ``n`` has
at least as many neighbors with that label as ``v`` does.  The paper
computes each database node profile once and stores it "along with the
graph as an index"; :class:`NodeProfileIndex` plays that role.
"""

from collections import Counter, defaultdict

from repro.graph.graph import LABEL_KEY


def node_profile(graph, node):
    """Return ``Counter(label -> #neighbors with that label)`` of ``node``."""
    counts = Counter()
    for nbr in graph.neighbors(node):
        counts[graph.node_attr(nbr, LABEL_KEY)] += 1
    return counts


def profile_contains(big, small):
    """True if profile ``small`` is contained in profile ``big``."""
    for label, need in small.items():
        if big.get(label, 0) < need:
            return False
    return True


class NodeProfileIndex:
    """Precomputed profiles + label buckets for a database graph.

    - ``profile(n)`` returns the cached profile of node ``n``.
    - ``nodes_with_label(l)`` returns the set of nodes labeled ``l`` —
      the first filter when enumerating candidates for a labeled pattern
      node.
    """

    def __init__(self, graph):
        self._graph = graph
        self._profiles = {}
        self._by_label = defaultdict(set)
        for n in graph.nodes():
            self._profiles[n] = node_profile(graph, n)
            self._by_label[graph.node_attr(n, LABEL_KEY)].add(n)

    def profile(self, node):
        return self._profiles[node]

    def nodes_with_label(self, label):
        """Nodes whose label equals ``label``.

        ``label=None`` is the anonymous label: in an unlabeled graph all
        nodes carry it, so the bucket is the whole node set.
        """
        return self._by_label.get(label, set())

    def labels(self):
        return set(self._by_label)

    def candidates(self, label, pattern_profile):
        """Nodes labeled ``label`` whose profile contains ``pattern_profile``."""
        return [
            n
            for n in self._by_label.get(label, ())
            if profile_contains(self._profiles[n], pattern_profile)
        ]

    def __len__(self):
        return len(self._profiles)
