"""Breadth-first traversal primitives.

Everything the census algorithms need reduces to bounded BFS: k-hop
neighbor sets ``N_k(n)``, distance maps, and induced ego subgraphs
``S(n, k)``.  Neighborhood expansion is direction-blind even on directed
graphs, matching the paper's definition of a k-hop neighborhood ("nodes
reachable from n in k hops or less" through any incident edge).

Graphs may provide native traversal hooks (``_native_bfs_distances``,
``_native_bfs_layers``, ``_native_k_hop_nodes``); the entry points here
dispatch to them when present.  :class:`repro.graph.csr.CSRGraph` uses
this to run BFS over its int-indexed CSR arrays with a byte-mask
visited set — same results, a fraction of the hashing cost.
"""

from collections import deque

from repro.graph.views import induced_subgraph


def bfs_distances(graph, source, max_depth=None):
    """Map each node within ``max_depth`` hops of ``source`` to its distance.

    ``max_depth=None`` explores the whole connected component.  The source
    is included with distance 0.
    """
    native = getattr(graph, "_native_bfs_distances", None)
    if native is not None:
        return native(source, max_depth)
    dist = {source: 0}
    queue = deque((source,))
    while queue:
        node = queue.popleft()
        d = dist[node]
        if max_depth is not None and d >= max_depth:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
    return dist


def bfs_layers(graph, source, max_depth=None):
    """Yield ``(node, distance)`` pairs in BFS order from ``source``."""
    native = getattr(graph, "_native_bfs_layers", None)
    if native is not None:
        yield from native(source, max_depth)
        return
    dist = {source: 0}
    queue = deque((source,))
    while queue:
        node = queue.popleft()
        d = dist[node]
        yield node, d
        if max_depth is not None and d >= max_depth:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)


def bfs_layer_sets(graph, source, max_depth=None):
    """Yield the BFS layers of ``source`` as sets: layer ``d`` holds the
    nodes at distance exactly ``d`` (the source alone is layer 0).

    The census hot loops consume layers instead of single nodes so the
    distance bookkeeping happens once per layer and containment regions
    can be assembled with set unions; CSR snapshots produce the layers
    natively with whole-frontier set algebra.
    """
    native = getattr(graph, "_native_bfs_layer_sets", None)
    if native is not None:
        yield from native(source, max_depth)
        return
    seen = {source}
    frontier = {source}
    yield frontier
    d = 0
    while frontier and (max_depth is None or d < max_depth):
        d += 1
        nxt = set()
        for node in frontier:
            for nbr in graph.neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    nxt.add(nbr)
        if not nxt:
            return
        yield nxt
        frontier = nxt


def k_hop_nodes(graph, source, k):
    """The node set ``N_k(source)``: nodes within ``k`` hops, inclusive."""
    native = getattr(graph, "_native_k_hop_nodes", None)
    if native is not None:
        return native(source, k)
    return set(bfs_distances(graph, source, max_depth=k))


def k_hop_distances(graph, source, k):
    """Alias of :func:`bfs_distances` with a required radius."""
    return bfs_distances(graph, source, max_depth=k)


def ego_subgraph(graph, source, k):
    """The induced subgraph ``S(source, k)`` on the k-hop neighborhood."""
    return induced_subgraph(graph, k_hop_nodes(graph, source, k))


def shortest_path_length(graph, source, target, max_depth=None):
    """Hop distance from ``source`` to ``target`` or ``None`` if farther
    than ``max_depth`` (or disconnected)."""
    if source == target:
        return 0
    dist = {source: 0}
    queue = deque((source,))
    while queue:
        node = queue.popleft()
        d = dist[node]
        if max_depth is not None and d >= max_depth:
            continue
        for nbr in graph.neighbors(node):
            if nbr == target:
                return d + 1
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
    return None


def pairwise_distances(graph, nodes=None, max_depth=None):
    """All-pairs hop distances restricted to ``nodes`` (default: all).

    Returns ``{u: {v: d}}`` with unreachable pairs absent.  Intended for
    small graphs (pattern graphs, ego nets); cost is O(|nodes| * (V+E)).
    """
    if nodes is None:
        nodes = list(graph.nodes())
    return {u: bfs_distances(graph, u, max_depth=max_depth) for u in nodes}


def connected_components(graph):
    """Yield the node sets of connected components (direction-blind)."""
    seen = set()
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(bfs_distances(graph, node))
        seen |= component
        yield component


def eccentricity(graph, node):
    """Largest hop distance from ``node`` to any reachable node."""
    return max(bfs_distances(graph, node).values())
