"""GraphQL-style baseline matcher (He & Singh, SIGMOD 2008).

Reimplements the search strategy the paper compares against: the same
profile-based candidate enumeration as CN, a candidate-set refinement
pass (retain ``n`` in ``C(v)`` only if every pattern neighbor ``v'`` of
``v`` has some candidate adjacent to ``n``), and a backtracking
extraction phase that — crucially — finds extensions for the next
pattern variable by *scanning its full candidate set* and testing
adjacency against the bound prefix.  That scan over "comparatively
large candidate sets" is exactly the cost the paper's candidate
neighbor sets eliminate; keeping everything else identical makes the
F4a/F4b comparison measure that one design choice.
"""

from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.matching.base import (
    Match,
    check_new_binding,
    dedupe_matches,
    enumerate_candidates,
    neighbor_set,
)
from repro.matching.order import connected_order, earlier_neighbors
from repro.obs import current_obs


def refine_candidates(graph, pattern, candidates, max_passes=None):
    """Iteratively enforce neighborhood consistency on candidate sets.

    ``n`` survives in ``C(v)`` only when, for every positive pattern
    neighbor ``v'`` of ``v``, some node adjacent to ``n`` (respecting
    direction) belongs to ``C(v')``.
    """
    if max_passes is None:
        max_passes = len(pattern.nodes)
    budget = current_budget()
    neighbor_lists = {v: pattern.positive_neighbors(v) for v in pattern.nodes}
    passes = 0
    for _ in range(max_passes):
        passes += 1
        changed = False
        for var in pattern.nodes:
            doomed = []
            for n in candidates[var]:
                if budget is not None:
                    budget.tick()
                for other, edge in neighbor_lists[var]:
                    nbrs = neighbor_set(graph, n, var, edge)
                    if not any(x in candidates[other] for x in nbrs):
                        doomed.append(n)
                        break
            for n in doomed:
                candidates[var].discard(n)
                changed = True
        if not changed:
            break
    current_obs().add("match.gql.refine_passes", passes)
    return candidates


def gql_matches(graph, pattern, distinct=True, profile_index=None):
    """Find all matches with the GQL-style baseline."""
    pattern.validate()
    obs = current_obs()
    with obs.span("match.gql", pattern=pattern.name):
        return _gql_matches(graph, pattern, distinct, profile_index, obs)


def _gql_matches(graph, pattern, distinct, profile_index, obs):
    candidates = enumerate_candidates(graph, pattern, profile_index)
    candidates = refine_candidates(graph, pattern, candidates)
    if any(not c for c in candidates.values()):
        return []

    order = connected_order(pattern, {v: len(c) for v, c in candidates.items()})
    back_edges = [earlier_neighbors(pattern, order, i) for i in range(len(order))]

    budget = current_budget()
    matches = []
    assignment = {}
    bound = []
    # The full-candidate-set scans below are the cost CN's candidate
    # neighbor sets avoid; their total size is the F4a/F4b x-axis.
    scanned = [0]

    def adjacent(prefix_node, var_prefix, node, edge):
        return node in neighbor_set(graph, prefix_node, var_prefix, edge)

    def extend(i):
        if i == len(order):
            matches.append(Match(assignment, pattern))
            if budget is not None:
                budget.count_result()
            return
        fault_point("match.expand")
        var = order[i]
        # The GQL cost model: scan the whole candidate set of the next
        # variable and filter by adjacency with the bound prefix.
        scanned[0] += len(candidates[var])
        if budget is not None:
            budget.tick(len(candidates[var]))
        for node in candidates[var]:
            ok = True
            for earlier, edge in back_edges[i]:
                if not adjacent(assignment[earlier], earlier, node, edge):
                    ok = False
                    break
            if not ok:
                continue
            if check_new_binding(graph, pattern, assignment, var, node, bound):
                assignment[var] = node
                bound.append(var)
                extend(i + 1)
                bound.pop()
                del assignment[var]

    extend(0)
    if distinct:
        matches = dedupe_matches(matches)
    obs.add("match.gql.candidates_scanned", scanned[0])
    obs.add("match.gql.matches", len(matches))
    return matches
