"""Subgraph pattern matching (Section III of the paper).

Three matchers share one interface (``matcher(graph, pattern) -> [Match]``):

- :func:`repro.matching.cn.cn_matches` — the paper's proposed algorithm
  built on *candidate neighbor sets* (profile filtering, simultaneous
  pruning, forward extraction by intersecting candidate-neighbor sets),
- :func:`repro.matching.gql.gql_matches` — a GraphQL-style baseline that
  keeps only per-pattern-node candidate sets and pays for extraction by
  scanning them,
- :func:`repro.matching.bruteforce.bruteforce_matches` — an unoptimized
  backtracking reference used as ground truth in tests.

``find_matches`` is the public entry point and dispatches by name.
"""

from repro.matching.base import Match, MatchSet
from repro.matching.bruteforce import bruteforce_matches
from repro.matching.cn import cn_matches
from repro.matching.gql import gql_matches
from repro.matching.pattern import Pattern, PatternEdge, PatternNode
from repro.matching.predicates import Comparison, attr, const, edge_attr
from repro.matching.seeded import seeded_matches, validate_embedding

_MATCHERS = {
    "cn": cn_matches,
    "gql": gql_matches,
    "bruteforce": bruteforce_matches,
}


def find_matches(graph, pattern, method="cn", distinct=True):
    """Find all matches of ``pattern`` in ``graph``.

    Parameters
    ----------
    method:
        One of ``"cn"`` (default, the paper's algorithm), ``"gql"``, or
        ``"bruteforce"``.
    distinct:
        When true (default), automorphic embeddings of the same subgraph
        are collapsed to one match — this is the counting unit of a
        pattern census ("number of triangles", not "number of ordered
        triangles").  When false, every embedding is returned.
    """
    try:
        matcher = _MATCHERS[method]
    except KeyError:
        raise ValueError(f"unknown matcher {method!r}; expected one of {sorted(_MATCHERS)}")
    return matcher(graph, pattern, distinct=distinct)


__all__ = [
    "Pattern",
    "PatternNode",
    "PatternEdge",
    "Match",
    "MatchSet",
    "Comparison",
    "attr",
    "const",
    "edge_attr",
    "find_matches",
    "cn_matches",
    "gql_matches",
    "bruteforce_matches",
    "seeded_matches",
    "validate_embedding",
]
