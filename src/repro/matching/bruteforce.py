"""Brute-force reference matcher.

No indexes, no pruning: backtracking over *all* database nodes for every
pattern variable, checking label, adjacency, negated edges and
predicates as bindings are made.  Exponential — only suitable for the
small graphs used in tests, where it serves as ground truth for both
CN and GQL.
"""

from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.graph.graph import LABEL_KEY
from repro.matching.base import Match, check_new_binding, dedupe_matches, neighbor_set
from repro.matching.order import connected_order, earlier_neighbors


def bruteforce_matches(graph, pattern, distinct=True):
    """Find all matches of ``pattern`` in ``graph`` by exhaustive search."""
    pattern.validate()
    order = connected_order(pattern)
    back_edges = [earlier_neighbors(pattern, order, i) for i in range(len(order))]
    all_nodes = list(graph.nodes())

    budget = current_budget()
    matches = []
    assignment = {}
    bound = []

    def label_ok(var, node):
        want = pattern.label_of(var)
        return want is None or graph.node_attr(node, LABEL_KEY) == want

    def single_preds_ok(var, node):
        preds = pattern.single_var_predicates(var)
        if not preds:
            return True
        probe = {var: node}
        return all(p.evaluate(probe, graph) for p in preds)

    def extend(i):
        if i == len(order):
            matches.append(Match(assignment, pattern))
            if budget is not None:
                budget.count_result()
            return
        fault_point("match.expand")
        var = order[i]
        for node in all_nodes:
            if budget is not None:
                budget.tick()
            if not label_ok(var, node) or not single_preds_ok(var, node):
                continue
            ok = True
            for earlier, edge in back_edges[i]:
                if node not in neighbor_set(graph, assignment[earlier], earlier, edge):
                    ok = False
                    break
            if not ok:
                continue
            if check_new_binding(graph, pattern, assignment, var, node, bound):
                assignment[var] = node
                bound.append(var)
                extend(i + 1)
                bound.pop()
                del assignment[var]

    extend(0)
    if distinct:
        matches = dedupe_matches(matches)
    return matches
