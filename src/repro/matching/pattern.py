"""Pattern graphs (Section II of the paper).

A :class:`Pattern` is a small graph over *variables* (``?A``, ``?B``,
...).  Each edge may be directed or undirected and may be *negated*
(``?A!->?C``: the edge must NOT exist in a match).  Nodes may carry a
label constraint (sugar for the predicate ``?X.LABEL = const``), and the
pattern may carry arbitrary comparison predicates over node and edge
attributes.  *Subpatterns* name subsets of the pattern's nodes; the
census aggregate ``COUNTSP`` restricts the neighborhood-containment test
to a subpattern's image.
"""

from collections import Counter, deque

from repro.errors import PatternError
from repro.matching.predicates import Attr, Comparison, Const


class PatternNode:
    """A pattern variable, optionally constrained to a fixed label."""

    __slots__ = ("name", "label")

    def __init__(self, name, label=None):
        self.name = name
        self.label = label

    def __repr__(self):
        if self.label is None:
            return f"PatternNode(?{self.name})"
        return f"PatternNode(?{self.name}:{self.label})"


class PatternEdge:
    """A structural constraint between two pattern variables.

    ``directed`` — the database edge must run from ``u`` to ``v``.
    ``negated`` — the database edge must be absent (``?A!-?B`` /
    ``?A!->?B``).
    """

    __slots__ = ("u", "v", "directed", "negated")

    def __init__(self, u, v, directed=False, negated=False):
        if u == v:
            raise PatternError(f"pattern self-loop on ?{u}")
        self.u = u
        self.v = v
        self.directed = bool(directed)
        self.negated = bool(negated)

    def endpoints(self):
        return (self.u, self.v)

    def __repr__(self):
        arrow = "->" if self.directed else "-"
        bang = "!" if self.negated else ""
        return f"?{self.u}{bang}{arrow}?{self.v}"

    def unparse(self):
        return f"{repr(self)};"


class Pattern:
    """A named pattern graph with predicates and subpatterns.

    Build programmatically::

        p = Pattern('triad')
        p.add_node('A'); p.add_node('B'); p.add_node('C')
        p.add_edge('A', 'B', directed=True)
        p.add_edge('B', 'C', directed=True)
        p.add_edge('A', 'C', directed=True, negated=True)
        p.add_predicate(Comparison(attr('A', 'LABEL'), '=', attr('B', 'LABEL')))
        p.add_subpattern('coordinator', ['B'])

    or parse the paper's textual syntax with
    :func:`repro.lang.parser.parse_pattern`.
    """

    def __init__(self, name="pattern"):
        self.name = name
        self.nodes = {}
        self.edges = []
        self.predicates = []
        self.subpatterns = {}
        self._distance_cache = None
        self._edge_split_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name, label=None):
        """Declare variable ``name`` (idempotent; label merges if given)."""
        node = self.nodes.get(name)
        if node is None:
            self.nodes[name] = PatternNode(name, label)
        elif label is not None:
            if node.label is not None and node.label != label:
                raise PatternError(
                    f"?{name} already labeled {node.label!r}, cannot relabel to {label!r}"
                )
            node.label = label
        self._distance_cache = None
        return self.nodes[name]

    def add_edge(self, u, v, directed=False, negated=False):
        self.add_node(u)
        self.add_node(v)
        for e in self.edges:
            if {e.u, e.v} == {u, v} and e.directed == directed and e.negated == negated:
                if not directed or (e.u, e.v) == (u, v):
                    return e
        edge = PatternEdge(u, v, directed=directed, negated=negated)
        self.edges.append(edge)
        self._distance_cache = None
        self._edge_split_cache = None
        return edge

    def add_predicate(self, predicate):
        for var in predicate.variables():
            if var not in self.nodes:
                raise PatternError(f"predicate references unknown variable ?{var}")
        self.predicates.append(predicate)
        # Fold ``?X.LABEL = const`` into the node's label constraint so
        # profile filtering can use it.
        self._try_fold_label(predicate)
        return predicate

    def _try_fold_label(self, predicate):
        if not isinstance(predicate, Comparison) or predicate.op not in ("=", "=="):
            return
        lhs, rhs = predicate.lhs, predicate.rhs
        if isinstance(rhs, Attr) and isinstance(lhs, Const):
            lhs, rhs = rhs, lhs
        if (
            isinstance(lhs, Attr)
            and lhs.attr_name.lower() == "label"
            and isinstance(rhs, Const)
        ):
            node = self.nodes[lhs.var]
            if node.label is None:
                node.label = rhs.value

    def add_subpattern(self, name, node_names):
        missing = [n for n in node_names if n not in self.nodes]
        if missing:
            raise PatternError(f"subpattern {name!r} references unknown nodes {missing}")
        if not node_names:
            raise PatternError(f"subpattern {name!r} is empty")
        self.subpatterns[name] = tuple(node_names)
        return self.subpatterns[name]

    # ------------------------------------------------------------------
    # Structure queries (over positive edges)
    # ------------------------------------------------------------------
    def _edge_split(self):
        # Matchers call these per candidate binding; recomputing the
        # partition each time shows up in census profiles.
        split = self._edge_split_cache
        if split is None:
            split = self._edge_split_cache = (
                tuple(e for e in self.edges if not e.negated),
                tuple(e for e in self.edges if e.negated),
            )
        return split

    def positive_edges(self):
        return self._edge_split()[0]

    def negative_edges(self):
        return self._edge_split()[1]

    def positive_neighbors(self, var):
        """``[(other_var, edge)]`` for positive edges incident to ``var``."""
        out = []
        for e in self.positive_edges():
            if e.u == var:
                out.append((e.v, e))
            elif e.v == var:
                out.append((e.u, e))
        return out

    def degree(self, var):
        return len(self.positive_neighbors(var))

    def num_nodes(self):
        return len(self.nodes)

    def label_of(self, var):
        return self.nodes[var].label

    def label_profile(self, var):
        """Counter of *fixed* labels among distinct positive neighbors
        of ``var``.

        Neighbors without a label constraint contribute nothing here (a
        database node's matching neighbor could carry any label); the
        degree check in the matchers covers them.  Parallel edges to the
        same variable count once — they bind a single database neighbor.
        """
        profile = Counter()
        seen = set()
        for other, _edge in self.positive_neighbors(var):
            if other in seen:
                continue
            seen.add(other)
            label = self.nodes[other].label
            if label is not None:
                profile[label] += 1
        return profile

    def distances(self):
        """All-pairs hop distances over positive edges, direction-blind.

        Cached; used by pivot selection (ND-PVOT) and the distance
        shortcuts of the pattern-driven algorithms.
        """
        if self._distance_cache is None:
            adjacency = {v: set() for v in self.nodes}
            for e in self.positive_edges():
                adjacency[e.u].add(e.v)
                adjacency[e.v].add(e.u)
            dists = {}
            for start in self.nodes:
                d = {start: 0}
                queue = deque((start,))
                while queue:
                    x = queue.popleft()
                    for y in adjacency[x]:
                        if y not in d:
                            d[y] = d[x] + 1
                            queue.append(y)
                dists[start] = d
            self._distance_cache = dists
        return self._distance_cache

    def distance(self, u, v):
        """Hop distance between two pattern variables (``None`` if disconnected)."""
        return self.distances()[u].get(v)

    def eccentricity(self, var):
        """max_v d(var, v); raises if the pattern is disconnected."""
        d = self.distances()[var]
        if len(d) != len(self.nodes):
            raise PatternError(f"pattern {self.name!r} is disconnected")
        return max(d.values())

    def pivot(self):
        """The min-eccentricity variable (the paper's optimal pivot)."""
        self.validate()
        return min(self.nodes, key=lambda v: (self.eccentricity(v), v))

    def radius(self):
        """Eccentricity of the pivot (``max_v`` in the paper's notation)."""
        return self.eccentricity(self.pivot())

    def diameter(self):
        return max(self.eccentricity(v) for v in self.nodes)

    # ------------------------------------------------------------------
    # Validation & misc
    # ------------------------------------------------------------------
    def validate(self):
        """Raise :class:`PatternError` unless the pattern is well-formed.

        Requirements: at least one node, and the positive edges form a
        single connected component (the census algorithms rely on
        connectivity; a disconnected pattern has no well-defined pivot
        and its matches are cartesian products).
        """
        if not self.nodes:
            raise PatternError(f"pattern {self.name!r} has no nodes")
        seen = set()
        start = next(iter(self.nodes))
        queue = deque((start,))
        seen.add(start)
        while queue:
            x = queue.popleft()
            for y, _edge in self.positive_neighbors(x):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        if len(seen) != len(self.nodes):
            missing = sorted(set(self.nodes) - seen)
            raise PatternError(
                f"pattern {self.name!r} is disconnected (unreachable: {missing})"
            )
        return self

    def single_var_predicates(self, var):
        """Predicates that reference exactly ``var`` (push-down filters)."""
        return [p for p in self.predicates if p.variables() == frozenset((var,))]

    def multi_var_predicates(self):
        """Predicates spanning two or more variables."""
        return [p for p in self.predicates if len(p.variables()) >= 2]

    def num_automorphisms(self, graph_directed=None):
        """Number of automorphisms of the pattern's structure + labels.

        Computed by matching the pattern against itself with brute
        force; used by tests to relate embedding counts to distinct
        subgraph counts.
        """
        from repro.graph.graph import Graph
        from repro.matching.bruteforce import bruteforce_matches

        directed = any(e.directed for e in self.edges)
        g = Graph(directed=directed)
        for name, node in self.nodes.items():
            g.add_node(name, label=node.label)
        for e in self.positive_edges():
            if e.directed:
                g.add_edge(e.u, e.v)
            else:
                g.add_edge(e.u, e.v)
                if directed:
                    g.add_edge(e.v, e.u)
        structural = Pattern(self.name + "_struct")
        for name, node in self.nodes.items():
            structural.add_node(name, label=node.label)
        for e in self.positive_edges():
            structural.add_edge(e.u, e.v, directed=e.directed)
        embeddings = bruteforce_matches(g, structural, distinct=False)
        identity_like = [
            m
            for m in embeddings
            if all(self.nodes[v].label == structural.nodes[v].label for v in m.mapping)
        ]
        return max(1, len(identity_like))

    def unparse(self):
        """Render back into the paper's textual pattern syntax."""
        lines = [f"PATTERN {self.name} {{"]
        emitted = set()
        for e in self.edges:
            lines.append(f"    {e.unparse()}")
            emitted.add(e.u)
            emitted.add(e.v)
        for name in self.nodes:
            if name not in emitted:
                lines.append(f"    ?{name};")
        for p in self.predicates:
            lines.append(f"    {p.unparse()};")
        for name, members in self.subpatterns.items():
            inner = " ".join(f"?{m};" for m in members)
            lines.append(f"    SUBPATTERN {name} {{{inner}}}")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<Pattern {self.name!r} nodes={len(self.nodes)} "
            f"edges={len(self.edges)} preds={len(self.predicates)}>"
        )
