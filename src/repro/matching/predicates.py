"""Predicate expressions attached to pattern graphs.

A predicate is a comparison between two operands, each of which is a
constant, a node attribute reference ``?A.attr``, or an edge attribute
reference ``EDGE(?A, ?B).attr``.  Predicates are evaluated against a
(partial) assignment of pattern variables to database nodes; evaluation
of a predicate whose variables are not all bound returns ``True`` so
that matchers can apply predicates incrementally as variables bind.
"""

import operator

from repro.errors import PatternError

_OPS = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Const:
    """A literal operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def variables(self):
        return frozenset()

    def evaluate(self, assignment, graph):
        return self.value

    def __repr__(self):
        return f"Const({self.value!r})"

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("const", self.value))

    def unparse(self):
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


class Attr:
    """A node attribute reference ``?var.attr``.

    Attribute names are matched case-insensitively against node
    attributes (the language spells ``LABEL`` in caps; graphs store
    ``label``).
    """

    __slots__ = ("var", "attr_name")

    def __init__(self, var, attr_name):
        self.var = var
        self.attr_name = attr_name

    def variables(self):
        return frozenset((self.var,))

    def evaluate(self, assignment, graph):
        node = assignment[self.var]
        attrs = graph.node_attrs(node)
        if self.attr_name in attrs:
            return attrs[self.attr_name]
        lowered = self.attr_name.lower()
        return attrs.get(lowered)

    def __repr__(self):
        return f"Attr(?{self.var}.{self.attr_name})"

    def __eq__(self, other):
        return (
            isinstance(other, Attr)
            and self.var == other.var
            and self.attr_name.lower() == other.attr_name.lower()
        )

    def __hash__(self):
        return hash(("attr", self.var, self.attr_name.lower()))

    def unparse(self):
        return f"?{self.var}.{self.attr_name}"


class EdgeAttr:
    """An edge attribute reference ``EDGE(?u, ?v).attr``."""

    __slots__ = ("u", "v", "attr_name")

    def __init__(self, u, v, attr_name):
        self.u = u
        self.v = v
        self.attr_name = attr_name

    def variables(self):
        return frozenset((self.u, self.v))

    def evaluate(self, assignment, graph):
        nu, nv = assignment[self.u], assignment[self.v]
        if graph.has_edge(nu, nv):
            attrs = graph.edge_attrs(nu, nv)
        elif graph.directed and graph.has_edge(nv, nu):
            attrs = graph.edge_attrs(nv, nu)
        else:
            return None
        if self.attr_name in attrs:
            return attrs[self.attr_name]
        return attrs.get(self.attr_name.lower())

    def __repr__(self):
        return f"EdgeAttr(?{self.u}, ?{self.v}, {self.attr_name})"

    def __eq__(self, other):
        return (
            isinstance(other, EdgeAttr)
            and (self.u, self.v) == (other.u, other.v)
            and self.attr_name.lower() == other.attr_name.lower()
        )

    def __hash__(self):
        return hash(("edgeattr", self.u, self.v, self.attr_name.lower()))

    def unparse(self):
        return f"EDGE(?{self.u}, ?{self.v}).{self.attr_name}"


class Comparison:
    """``lhs op rhs`` over operands; the predicate unit of a pattern."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs, op, rhs):
        if op not in _OPS:
            raise PatternError(f"unknown comparison operator {op!r}")
        self.lhs = lhs
        self.op = op
        self.rhs = rhs

    def variables(self):
        return self.lhs.variables() | self.rhs.variables()

    def is_ready(self, assignment):
        """True when all referenced variables are bound."""
        return all(v in assignment for v in self.variables())

    def evaluate(self, assignment, graph):
        """Evaluate; unbound variables make the predicate vacuously true."""
        if not self.is_ready(assignment):
            return True
        left = self.lhs.evaluate(assignment, graph)
        right = self.rhs.evaluate(assignment, graph)
        try:
            return bool(_OPS[self.op](left, right))
        except TypeError:
            # Comparing incomparable types (e.g. None < 3) fails the
            # predicate rather than the query.
            return False

    def __repr__(self):
        return f"Comparison({self.lhs!r} {self.op} {self.rhs!r})"

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and self.lhs == other.lhs
            and self.op == other.op
            and self.rhs == other.rhs
        )

    def __hash__(self):
        return hash((self.lhs, self.op, self.rhs))

    def unparse(self):
        return f"[{self.lhs.unparse()}{self.op}{self.rhs.unparse()}]"


def const(value):
    """Shorthand constructor for a constant operand."""
    return Const(value)


def attr(var, attr_name):
    """Shorthand constructor for a node attribute operand."""
    return Attr(var, attr_name)


def edge_attr(u, v, attr_name):
    """Shorthand constructor for an edge attribute operand."""
    return EdgeAttr(u, v, attr_name)
