"""Shared match machinery: the Match record, candidate filtering, and
incremental constraint checks used by all three matchers."""

from repro.exec.budget import current_budget
from repro.graph.profiles import NodeProfileIndex, profile_contains


class Match:
    """One match of a pattern: a mapping from pattern variables to nodes.

    Two embeddings that induce the same database subgraph (same node set
    and same image of every positive pattern edge) share a
    ``canonical_key`` — this is the unit a census counts when
    ``distinct=True``.
    """

    __slots__ = ("mapping", "canonical_key")

    def __init__(self, mapping, pattern):
        self.mapping = dict(mapping)
        images = []
        for e in pattern.positive_edges():
            nu, nv = self.mapping[e.u], self.mapping[e.v]
            if e.directed:
                images.append(("d", nu, nv))
            else:
                images.append(("u", frozenset((nu, nv))))
        self.canonical_key = (frozenset(self.mapping.values()), frozenset(images))

    def image(self, var):
        """Database node matched to pattern variable ``var``."""
        return self.mapping[var]

    def nodes(self):
        """Frozenset of database nodes covered by the match."""
        return self.canonical_key[0]

    def subpattern_nodes(self, pattern, subpattern_name):
        """Images of the named subpattern's variables (μ(V_SP, M))."""
        members = pattern.subpatterns[subpattern_name]
        return frozenset(self.mapping[v] for v in members)

    def __repr__(self):
        inner = ", ".join(f"?{v}->{n!r}" for v, n in sorted(self.mapping.items()))
        return f"<Match {inner}>"

    def __eq__(self, other):
        return isinstance(other, Match) and self.mapping == other.mapping

    def __hash__(self):
        return hash(frozenset(self.mapping.items()))


class MatchSet:
    """A list of matches with distinct-subgraph bookkeeping."""

    def __init__(self, matches=()):
        self.matches = list(matches)

    def distinct(self):
        """Collapse automorphic embeddings; keeps first-seen per subgraph."""
        seen = {}
        for m in self.matches:
            seen.setdefault(m.canonical_key, m)
        return MatchSet(seen.values())

    def __len__(self):
        return len(self.matches)

    def __iter__(self):
        return iter(self.matches)

    def __getitem__(self, i):
        return self.matches[i]


def dedupe_matches(matches):
    """Distinct-subgraph filter preserving first-seen order."""
    seen = {}
    for m in matches:
        seen.setdefault(m.canonical_key, m)
    return list(seen.values())


def neighbor_set(graph, node, var, edge):
    """Database neighbors of ``node`` that could match across ``edge``.

    ``var`` is the pattern endpoint already matched to ``node``; the set
    returned contains nodes eligible for the other endpoint, respecting
    edge direction.
    """
    if not edge.directed or not graph.directed:
        return graph.neighbors(node)
    if edge.u == var:
        return graph.out_neighbors(node)
    return graph.in_neighbors(node)


def pattern_degrees(pattern, var):
    """``(total, out, in)`` neighbor lower bounds for a pattern variable.

    Counts *distinct* neighbor variables (graph degrees count distinct
    neighbors, and parallel pattern edges — ``?A-?B`` plus ``?B->?A`` —
    still bind to a single database neighbor).
    """
    total, outgoing, incoming = set(), set(), set()
    for other, e in pattern.positive_neighbors(var):
        total.add(other)
        if e.directed:
            if e.u == var:
                outgoing.add(other)
            else:
                incoming.add(other)
    return len(total), len(outgoing), len(incoming)


def enumerate_candidates(graph, pattern, profile_index=None):
    """Step 1 of both CN and GQL: the profile-filtered candidate sets.

    Returns ``{var: set(database nodes)}``.  Filters applied per node:
    label equality, (out/in/total) degree lower bounds, label-profile
    containment, and single-variable predicates.
    """
    if profile_index is None:
        # CSR snapshots carry a prebuilt profile index; building one per
        # matching pass is pure waste on a frozen graph.
        profile_index = getattr(graph, "profile_index", None)
        if profile_index is None:
            profile_index = NodeProfileIndex(graph)
    budget = current_budget()
    candidates = {}
    for var in pattern.nodes:
        label = pattern.label_of(var)
        if label is not None:
            pool = profile_index.nodes_with_label(label)
        else:
            pool = graph.nodes()
        want_profile = pattern.label_profile(var)
        total_deg, out_deg, in_deg = pattern_degrees(pattern, var)
        single_preds = pattern.single_var_predicates(var)
        chosen = set()
        for n in pool:
            if budget is not None:
                budget.tick()
            if graph.degree(n) < total_deg:
                continue
            if graph.directed:
                if graph.out_degree(n) < out_deg or graph.in_degree(n) < in_deg:
                    continue
            if want_profile and not profile_contains(profile_index.profile(n), want_profile):
                continue
            if single_preds:
                assignment = {var: n}
                if not all(p.evaluate(assignment, graph) for p in single_preds):
                    continue
            chosen.add(n)
        candidates[var] = chosen
    return candidates


def check_new_binding(graph, pattern, assignment, var, node, bound_order):
    """Constraints triggered when ``var`` binds to ``node``.

    Checks injectivity against earlier bindings, negated edges whose
    other endpoint is bound, and every predicate that just became fully
    bound.  Positive-edge adjacency is the caller's job (each matcher
    guarantees it differently).
    """
    for earlier in bound_order:
        if assignment[earlier] == node:
            return False
    assignment[var] = node
    try:
        for e in pattern.negative_edges():
            if var not in (e.u, e.v):
                continue
            other = e.v if e.u == var else e.u
            if other not in assignment:
                continue
            nu, nv = assignment[e.u], assignment[e.v]
            if e.directed:
                if graph.has_edge(nu, nv):
                    return False
            else:
                if graph.has_edge(nu, nv) or (graph.directed and graph.has_edge(nv, nu)):
                    return False
        for p in pattern.multi_var_predicates():
            variables = p.variables()
            if var in variables and all(x in assignment for x in variables):
                if not p.evaluate(assignment, graph):
                    return False
        return True
    finally:
        del assignment[var]
