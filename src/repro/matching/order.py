"""Search-order selection for match extraction.

Both CN and GQL extract matches by processing pattern variables in an
order whose every prefix induces a connected subgraph of the pattern
(Section III-D).  The heuristic here starts at the variable with the
smallest candidate set and greedily appends the connected variable with
the most edges into the prefix (ties broken by candidate-set size, then
name, for determinism).
"""

from repro.errors import PatternError


def connected_order(pattern, candidate_sizes=None):
    """Return pattern variables in a connected-prefix order.

    ``candidate_sizes`` maps variables to the size of their candidate
    set; omitted sizes default to 0 (most constrained first).
    """
    pattern.validate()
    if candidate_sizes is None:
        candidate_sizes = {}

    def size(var):
        return candidate_sizes.get(var, 0)

    remaining = set(pattern.nodes)
    start = min(remaining, key=lambda v: (size(v), -pattern.degree(v), v))
    order = [start]
    remaining.discard(start)
    prefix = {start}
    while remaining:
        frontier = []
        for var in remaining:
            links = sum(1 for other, _e in pattern.positive_neighbors(var) if other in prefix)
            if links:
                frontier.append((links, var))
        if not frontier:
            raise PatternError(f"pattern {pattern.name!r} is disconnected")
        _links, chosen = max(frontier, key=lambda t: (t[0], -size(t[1]), t[1]))
        order.append(chosen)
        prefix.add(chosen)
        remaining.discard(chosen)
    return order


def earlier_neighbors(pattern, order, index):
    """Positive pattern edges from ``order[index]`` back into the prefix.

    Returns ``[(earlier_var, edge)]`` — the ``v_{j_1} .. v_{j_l}``
    whose candidate-neighbor sets the CN extraction intersects.
    """
    var = order[index]
    prefix = set(order[:index])
    return [(other, e) for other, e in pattern.positive_neighbors(var) if other in prefix]
