"""Seeded (anchored) matching and embedding revalidation.

Incremental census maintenance needs two primitives:

- :func:`seeded_matches` — all embeddings of a pattern in which given
  variables are pinned to given nodes (e.g. "all matches that use the
  edge just inserted", found by pinning each positive pattern edge's
  endpoints to the new edge's endpoints);
- :func:`validate_embedding` — recheck one existing embedding against
  the current graph (edges may have disappeared, negated edges may now
  exist, labels/attributes may have changed).
"""

from repro.errors import PatternError
from repro.graph.graph import LABEL_KEY
from repro.matching.base import Match, check_new_binding, dedupe_matches, neighbor_set
from repro.matching.order import earlier_neighbors


def validate_embedding(graph, pattern, mapping):
    """True when ``mapping`` is currently a valid match of ``pattern``."""
    nodes = list(mapping.values())
    if len(set(nodes)) != len(nodes):
        return False
    for var, node in mapping.items():
        if not graph.has_node(node):
            return False
        want = pattern.label_of(var)
        if want is not None and graph.node_attr(node, LABEL_KEY) != want:
            return False
    for e in pattern.positive_edges():
        nu, nv = mapping[e.u], mapping[e.v]
        if e.directed and graph.directed:
            if not graph.has_edge(nu, nv):
                return False
        else:
            if not (graph.has_edge(nu, nv) or (graph.directed and graph.has_edge(nv, nu))):
                return False
    for e in pattern.negative_edges():
        nu, nv = mapping[e.u], mapping[e.v]
        if e.directed and graph.directed:
            if graph.has_edge(nu, nv):
                return False
        else:
            if graph.has_edge(nu, nv) or (graph.directed and graph.has_edge(nv, nu)):
                return False
    for p in pattern.predicates:
        if not p.evaluate(mapping, graph):
            return False
    return True


def _seeded_order(pattern, seeds):
    """A variable order starting with the seeded variables, every later
    prefix connected through positive edges (seeds themselves need not
    be mutually connected — they are pinned, not searched)."""
    order = list(seeds)
    placed = set(order)
    remaining = set(pattern.nodes) - placed
    while remaining:
        frontier = [
            v for v in remaining
            if any(o in placed for o, _e in pattern.positive_neighbors(v))
        ]
        if not frontier:
            raise PatternError(
                "pattern is disconnected from the seeded variables"
            )
        chosen = min(frontier)
        order.append(chosen)
        placed.add(chosen)
        remaining.discard(chosen)
    return order


def seeded_matches(graph, pattern, seeds, distinct=False):
    """All embeddings of ``pattern`` with ``seeds`` (var -> node) pinned.

    The seeded bindings are validated first (labels, injectivity,
    mutual edges among seeded variables, predicates); the remaining
    variables are searched by neighbor-set intersection.
    """
    pattern.validate()
    for var in seeds:
        if var not in pattern.nodes:
            raise PatternError(f"unknown seed variable ?{var}")

    order = _seeded_order(pattern, seeds)
    back_edges = [earlier_neighbors(pattern, order, i) for i in range(len(order))]
    num_seeds = len(seeds)

    # Validate the seeded prefix in one shot: labels, single-var
    # predicates, mutual structure.
    assignment = {}
    bound = []
    for i, var in enumerate(order[:num_seeds]):
        node = seeds[var]
        if not graph.has_node(node):
            return []
        want = pattern.label_of(var)
        if want is not None and graph.node_attr(node, LABEL_KEY) != want:
            return []
        probe = {var: node}
        if not all(p.evaluate(probe, graph)
                   for p in pattern.single_var_predicates(var)):
            return []
        for earlier, edge in back_edges[i]:
            if node not in neighbor_set(graph, assignment[earlier], earlier, edge):
                return []
        if not check_new_binding(graph, pattern, assignment, var, node, bound):
            return []
        assignment[var] = node
        bound.append(var)

    matches = []

    def extend(i):
        if i == len(order):
            matches.append(Match(assignment, pattern))
            return
        var = order[i]
        pool = None
        for earlier, edge in back_edges[i]:
            s = neighbor_set(graph, assignment[earlier], earlier, edge)
            pool = set(s) if pool is None else pool & set(s)
            if not pool:
                return
        if pool is None:  # unreachable for connected patterns
            pool = set(graph.nodes())
        want = pattern.label_of(var)
        for node in pool:
            if want is not None and graph.node_attr(node, LABEL_KEY) != want:
                continue
            probe = {var: node}
            if not all(p.evaluate(probe, graph)
                       for p in pattern.single_var_predicates(var)):
                continue
            if check_new_binding(graph, pattern, assignment, var, node, bound):
                assignment[var] = node
                bound.append(var)
                extend(i + 1)
                bound.pop()
                del assignment[var]

    extend(num_seeds)
    if distinct:
        matches = dedupe_matches(matches)
    return matches


def matches_using_edge(graph, pattern, u, v):
    """All embeddings whose image uses the database edge ``(u, v)``.

    Tries every positive pattern edge in both orientations (and the
    reverse database direction for undirected pattern edges on directed
    graphs), deduplicating identical embeddings.
    """
    seen = {}
    for e in pattern.positive_edges():
        orientations = [(u, v), (v, u)]
        for nu, nv in orientations:
            for m in seeded_matches(graph, pattern, {e.u: nu, e.v: nv}):
                key = frozenset(m.mapping.items())
                seen.setdefault(key, m)
    return list(seen.values())


def matches_using_node(graph, pattern, node):
    """All embeddings whose image contains ``node``."""
    seen = {}
    for var in pattern.nodes:
        for m in seeded_matches(graph, pattern, {var: node}):
            key = frozenset(m.mapping.items())
            seen.setdefault(key, m)
    return list(seen.values())
