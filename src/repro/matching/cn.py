"""The paper's candidate-neighbor (CN) subgraph matcher (Section III).

Four steps, mirroring Algorithm 1:

1. Enumerate profile-filtered candidates ``C(v)`` per pattern node.
2. For each candidate ``n`` of ``v`` and each pattern neighbor ``v'`` of
   ``v``, initialize the candidate-neighbor set
   ``CN(n, v, v') = C(v') ∩ N(n)`` (direction-aware).
3. Simultaneously prune: drop ``n`` from ``C(v)`` when any of its
   candidate-neighbor sets goes empty, and drop ``n'`` from
   ``CN(n, v, v')`` once ``n'`` leaves ``C(v')``; repeat to fixpoint
   (bounded by |V_P| passes).
4. Extract matches forward along a connected order, computing the
   candidates of the next variable as the *intersection of
   candidate-neighbor sets* of its already-bound pattern neighbors —
   the step that gives CN its orders-of-magnitude win over scanning
   full candidate sets.
"""

from repro.exec.budget import current_budget
from repro.exec.faults import fault_point
from repro.matching.base import (
    Match,
    check_new_binding,
    dedupe_matches,
    enumerate_candidates,
    neighbor_set,
)
from repro.matching.order import connected_order, earlier_neighbors
from repro.obs import current_obs


class CNState:
    """Intermediate state of the CN matcher, exposed for inspection.

    ``candidates[var]`` is ``C(v)``; ``cn[(var, node)][other]`` is
    ``CN(node, var, other)``.  Benchmarks use ``stats`` to report
    pruning effectiveness.
    """

    def __init__(self, candidates, cn, stats):
        self.candidates = candidates
        self.cn = cn
        self.stats = stats


def build_cn_state(graph, pattern, profile_index=None):
    """Run steps 1–3 (candidates, CN init, fixpoint pruning)."""
    pattern.validate()
    candidates = enumerate_candidates(graph, pattern, profile_index)
    stats = {"initial_candidates": {v: len(c) for v, c in candidates.items()}}

    # CN entries are keyed by (neighbor var, edge id): two parallel
    # pattern edges between the same pair (e.g. ?A-?B plus ?B->?A)
    # impose independent constraints and must not collide.
    edge_ids = {id(e): i for i, e in enumerate(pattern.edges)}
    neighbor_lists = {
        v: [(other, edge, edge_ids[id(edge)]) for other, edge in pattern.positive_neighbors(v)]
        for v in pattern.nodes
    }
    budget = current_budget()
    cn = {}
    for var, cset in candidates.items():
        for n in cset:
            if budget is not None:
                budget.tick()
            entry = {}
            for other, edge, eid in neighbor_lists[var]:
                # `&` allocates a fresh set, so the graph's own neighbor
                # set is never aliased into the mutable CN state.
                entry[(other, eid)] = candidates[other] & neighbor_set(
                    graph, n, var, edge
                )
            cn[(var, n)] = entry

    passes = 0
    changed = True
    while changed:
        changed = False
        passes += 1
        if budget is not None:
            budget.tick(sum(len(c) for c in candidates.values()))
        # Drop candidates with an empty candidate-neighbor set.
        for var in pattern.nodes:
            doomed = [
                n
                for n in candidates[var]
                if any(not s for s in cn[(var, n)].values())
            ]
            for n in doomed:
                candidates[var].discard(n)
                del cn[(var, n)]
                changed = True
        # Drop candidate neighbors that are no longer candidates.
        for (var, n), entry in cn.items():
            for (other, eid), s in entry.items():
                stale = s - candidates[other]
                if stale:
                    s -= stale
                    entry[(other, eid)] = s
                    changed = True

    stats["pruning_passes"] = passes
    stats["pruned_candidates"] = {v: len(c) for v, c in candidates.items()}

    # Mirror the ad-hoc stats dict onto the metrics registry; CNState.stats
    # stays the primary surface for existing consumers.
    obs = current_obs()
    if obs.enabled:
        obs.add("match.cn.pruning_passes", passes)
        obs.add("match.cn.candidates_initial",
                sum(stats["initial_candidates"].values()))
        obs.add("match.cn.candidates_pruned",
                sum(stats["initial_candidates"].values())
                - sum(stats["pruned_candidates"].values()))
    return CNState(candidates, cn, stats)


def extract_matches(graph, pattern, state, limit=None):
    """Step 4: forward extraction over the pruned CN state."""
    order = connected_order(pattern, {v: len(c) for v, c in state.candidates.items()})
    back_edges = [earlier_neighbors(pattern, order, i) for i in range(len(order))]
    edge_ids = {id(e): i for i, e in enumerate(pattern.edges)}

    budget = current_budget()
    matches = []
    assignment = {}
    bound = []

    def extend(i):
        if limit is not None and len(matches) >= limit:
            return
        if i == len(order):
            matches.append(Match(assignment, pattern))
            if budget is not None:
                budget.count_result()
            return
        fault_point("match.expand")
        var = order[i]
        if i == 0:
            pool = state.candidates[var]
        else:
            pool = None
            for earlier, edge in back_edges[i]:
                s = state.cn[(earlier, assignment[earlier])][(var, edge_ids[id(edge)])]
                pool = set(s) if pool is None else pool & s
                if not pool:
                    return
        for node in pool:
            if budget is not None:
                budget.tick()
            if check_new_binding(graph, pattern, assignment, var, node, bound):
                assignment[var] = node
                bound.append(var)
                extend(i + 1)
                bound.pop()
                del assignment[var]

    extend(0)
    return matches


def cn_matches(graph, pattern, distinct=True, profile_index=None):
    """Find all matches of ``pattern`` in ``graph`` with the CN algorithm."""
    obs = current_obs()
    with obs.span("match.cn", pattern=pattern.name):
        state = build_cn_state(graph, pattern, profile_index)
        if any(not c for c in state.candidates.values()):
            return []
        matches = extract_matches(graph, pattern, state)
        if distinct:
            matches = dedupe_matches(matches)
        obs.add("match.cn.matches", len(matches))
        return matches
