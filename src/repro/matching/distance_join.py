"""Distance-join pattern matching (Zou, Chen & Özsu — Section VI).

A variant the paper's related work discusses: a pattern edge does not
require a database *edge* between the matched nodes, only a shortest
path of length at most ``delta``.  Negated pattern edges symmetrically
require distance *greater* than ``delta`` (or disconnection).

``distance_join_matches`` returns :class:`repro.matching.base.Match`
objects, so the results compose with the census machinery:
``distance_census`` counts distance-matches per ego by feeding them to
ND-PVOT's adopted-matches path.
"""

from repro.census.pt_bas import pt_bas_census
from repro.graph.graph import LABEL_KEY
from repro.graph.traversal import k_hop_distances
from repro.matching.base import Match, dedupe_matches
from repro.matching.order import connected_order, earlier_neighbors


def distance_join_matches(graph, pattern, delta, distinct=True):
    """All matches of ``pattern`` under distance-join semantics.

    Every positive pattern edge constrains its endpoints' images to be
    within ``delta`` hops (direction is ignored: hop distance is over
    the direction-blind adjacency, matching the paper's neighborhood
    definition); every negated edge requires the images to be farther
    than ``delta`` apart.  Labels and predicates keep exact semantics.

    ``delta=1`` (on undirected patterns) degenerates to ordinary
    matching.
    """
    if delta < 1:
        raise ValueError("delta must be >= 1")
    pattern.validate()
    order = connected_order(pattern)
    back_edges = [earlier_neighbors(pattern, order, i) for i in range(len(order))]

    # Ball cache: node -> {node within delta: distance}.
    balls = {}

    def ball(node):
        b = balls.get(node)
        if b is None:
            b = k_hop_distances(graph, node, delta)
            balls[node] = b
        return b

    def label_ok(var, node):
        want = pattern.label_of(var)
        return want is None or graph.node_attr(node, LABEL_KEY) == want

    def single_preds_ok(var, node):
        preds = pattern.single_var_predicates(var)
        if not preds:
            return True
        probe = {var: node}
        return all(p.evaluate(probe, graph) for p in preds)

    matches = []
    assignment = {}

    def constraints_ok(var, node):
        # Distance constraints against every bound variable.
        for e in pattern.edges:
            if var not in (e.u, e.v):
                continue
            other = e.v if e.u == var else e.u
            if other not in assignment:
                continue
            near = node in ball(assignment[other])
            if e.negated:
                if near:
                    return False
            else:
                if not near:
                    return False
        # Multi-variable predicates that just became bound.
        probe = dict(assignment)
        probe[var] = node
        for p in pattern.multi_var_predicates():
            variables = p.variables()
            if var in variables and all(x in probe for x in variables):
                if not p.evaluate(probe, graph):
                    return False
        return True

    def extend(i):
        if i == len(order):
            matches.append(Match(assignment, pattern))
            return
        var = order[i]
        if i == 0:
            pool = graph.nodes()
        else:
            pool = None
            for earlier, _edge in back_edges[i]:
                b = set(ball(assignment[earlier]))
                pool = b if pool is None else pool & b
                if not pool:
                    return
        used = set(assignment.values())
        for node in pool:
            if node in used:
                continue
            if not label_ok(var, node) or not single_preds_ok(var, node):
                continue
            if not constraints_ok(var, node):
                continue
            assignment[var] = node
            extend(i + 1)
            del assignment[var]

    extend(0)
    if distinct:
        matches = dedupe_matches(matches)
    return matches


def distance_census(graph, pattern, k, delta, focal_nodes=None, subpattern=None):
    """Per-ego census of distance-join matches.

    Counts, for every focal node, the distance-matches whose containment
    nodes all lie within ``k`` hops — the ego-centric census over the
    relaxed matching semantics.  Evaluated with PT-BAS: ND-PVOT's bulk
    shortcut assumes pattern distances upper-bound graph distances
    between matched nodes, which distance-join matches do not satisfy.
    """
    matches = distance_join_matches(
        graph, pattern, delta, distinct=subpattern is None
    )
    return pt_bas_census(
        graph, pattern, k, focal_nodes=focal_nodes, subpattern=subpattern,
        matches=matches,
    )
