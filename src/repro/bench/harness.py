"""Timing harness for the figure-reproduction benchmarks.

Every benchmark in ``benchmarks/`` produces a :class:`Sweep`: one named
series per algorithm, one measurement per x-axis point — the same
rows/series as the paper's figures.  ``pytest-benchmark`` handles
statistical timing of representative single points; the sweeps print
the full curve shape.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List


def time_call(fn, *args, **kwargs):
    """Run ``fn`` once; return ``(seconds, result)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


@dataclass
class Measurement:
    """One timed point of a sweep."""

    series: str
    x: object
    seconds: float
    meta: dict = field(default_factory=dict)


class Sweep:
    """A collection of measurements across series and x-axis points."""

    def __init__(self, name, x_label="x"):
        self.name = name
        self.x_label = x_label
        self.measurements: List[Measurement] = []

    def run(self, series, x, fn, *args, **kwargs):
        """Time one call and record it; returns the call's result."""
        seconds, result = time_call(fn, *args, **kwargs)
        self.measurements.append(Measurement(series, x, seconds))
        return result

    def record(self, series, x, seconds, **meta):
        self.measurements.append(Measurement(series, x, seconds, meta))

    def series_names(self):
        seen = []
        for m in self.measurements:
            if m.series not in seen:
                seen.append(m.series)
        return seen

    def xs(self):
        seen = []
        for m in self.measurements:
            if m.x not in seen:
                seen.append(m.x)
        return seen

    def value(self, series, x):
        for m in self.measurements:
            if m.series == series and m.x == x:
                return m.seconds
        return None

    def as_table(self) -> Dict[str, Dict[object, float]]:
        out: Dict[str, Dict[object, float]] = {}
        for m in self.measurements:
            out.setdefault(m.series, {})[m.x] = m.seconds
        return out

    def speedup(self, baseline, series, x):
        """baseline_time / series_time at one x (None when missing)."""
        base = self.value(baseline, x)
        other = self.value(series, x)
        if base is None or other is None or other == 0:
            return None
        return base / other
