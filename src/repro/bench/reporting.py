"""Rendering of benchmark sweeps: figure-shaped text tables and the
machine-readable ``BENCH_*.json`` files that track the perf trajectory
across PRs."""

import json
import os
import platform
import sys


def sweep_payload(sweep, unit="s", **context):
    """Machine-readable dict for one sweep.

    ``context`` keys (graph sizes, pattern names, ...) are attached
    verbatim so a sweep is self-describing in the JSON file.
    """
    payload = {
        "name": sweep.name,
        "x_label": sweep.x_label,
        "unit": unit,
        "measurements": [
            {"series": m.series, "x": m.x, "seconds": m.seconds,
             **({"meta": m.meta} if m.meta else {})}
            for m in sweep.measurements
        ],
    }
    payload.update(context)
    return payload


def machine_info():
    """The hardware/runtime context a benchmark result depends on."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "cpu_count": os.cpu_count(),
    }


def write_json(path, payload):
    """Write one ``BENCH_*.json`` result (pretty, trailing newline)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_series(sweep, unit="s", fmt="{:.3f}"):
    """Render a sweep as a fixed-width table: one row per series, one
    column per x value — the textual analogue of one figure panel."""
    xs = sweep.xs()
    table = sweep.as_table()
    header = [f"{sweep.name} [{unit}]"] + [str(x) for x in xs]
    rows = [header]
    for series, points in table.items():
        row = [series]
        for x in xs:
            v = points.get(x)
            row.append("-" if v is None else fmt.format(v))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def speedup_table(sweep, baseline):
    """Per-x speedups of every series over ``baseline``."""
    xs = sweep.xs()
    lines = [f"speedup over {baseline}:"]
    for series in sweep.series_names():
        if series == baseline:
            continue
        cells = []
        for x in xs:
            s = sweep.speedup(baseline, series, x)
            cells.append("-" if s is None else f"{s:.1f}x")
        lines.append(f"  {series}: " + "  ".join(cells))
    return "\n".join(lines)
