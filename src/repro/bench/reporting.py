"""Text rendering of benchmark sweeps in the shape of the paper's figures."""


def render_series(sweep, unit="s", fmt="{:.3f}"):
    """Render a sweep as a fixed-width table: one row per series, one
    column per x value — the textual analogue of one figure panel."""
    xs = sweep.xs()
    table = sweep.as_table()
    header = [f"{sweep.name} [{unit}]"] + [str(x) for x in xs]
    rows = [header]
    for series, points in table.items():
        row = [series]
        for x in xs:
            v = points.get(x)
            row.append("-" if v is None else fmt.format(v))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def speedup_table(sweep, baseline):
    """Per-x speedups of every series over ``baseline``."""
    xs = sweep.xs()
    lines = [f"speedup over {baseline}:"]
    for series in sweep.series_names():
        if series == baseline:
            continue
        cells = []
        for x in xs:
            s = sweep.speedup(baseline, series, x)
            cells.append("-" if s is None else f"{s:.1f}x")
        lines.append(f"  {series}: " + "  ".join(cells))
    return "\n".join(lines)
