"""Benchmark harness: timing sweeps and figure-style reporting."""

from repro.bench.harness import Measurement, Sweep, time_call
from repro.bench.reporting import render_series, speedup_table

__all__ = ["time_call", "Measurement", "Sweep", "render_series", "speedup_table"]
