"""Benchmark workload builders.

The paper's synthetic evaluation uses preferential-attachment graphs
with edges = 5 x nodes and 4 uniform random labels.  These helpers
build those graphs (memoized per process — the figure benchmarks sweep
the same sizes repeatedly) and bundle graph + pattern pairs per figure.
"""

from functools import lru_cache

from repro.graph.generators import (
    labeled_preferential_attachment,
    preferential_attachment,
)
from repro.lang.catalog import standard_catalog

#: Scaled-down graph-size sweeps (the paper's 20K–1M node range is not
#: reachable for pure-Python enumeration; EXPERIMENTS.md records the
#: scale factors).
UNLABELED_SIZES = (400, 800, 1600, 3200)
LABELED_SIZES = (1000, 2000, 4000, 8000)


@lru_cache(maxsize=32)
def pa_graph(num_nodes, m=5, labeled=False, num_labels=4, seed=7):
    """A (possibly labeled) preferential-attachment benchmark graph."""
    if labeled:
        return labeled_preferential_attachment(
            num_nodes, m=m, num_labels=num_labels, seed=seed
        )
    return preferential_attachment(num_nodes, m=m, seed=seed)


def matching_workload(num_nodes, pattern_name, m=5, seed=7):
    """Graph + pattern for the F4a/F4b matcher comparisons."""
    catalog = standard_catalog()
    pattern = catalog.get(pattern_name)
    labeled = not pattern_name.endswith("-unlb")
    graph = pa_graph(num_nodes, m=m, labeled=labeled, seed=seed)
    return graph, pattern


def census_workload(num_nodes, pattern_name, k=2, m=5, seed=7):
    """Graph + pattern + radius for the F4c–F4g census benchmarks."""
    graph, pattern = matching_workload(num_nodes, pattern_name, m=m, seed=seed)
    return graph, pattern, k
