"""Synthetic DBLP-style temporal collaboration network.

The paper's Section V-B experiment uses SIGMOD/VLDB/ICDE co-authorship
from 2001–2010: structure counts in the common neighborhoods of author
pairs over 2001–2005 predict collaborations formed in 2006–2010.  That
data is not redistributable here, so this module *plants the mechanism
the experiment measures*: a community-structured collaboration process
where

- authors belong to research areas and papers draw their author lists
  from one area,
- prolific authors keep publishing (preferential attachment), and
- new collaborations preferentially *close open structures* — a pair
  with many common collaborators is more likely to co-author next era.

Because future links are generated to correlate with shared local
structure, the *ordering* of the paper's nine census measures and the
Jaccard/random baselines is reproducible even though absolute precision
values differ from the real DBLP.
"""

import random
from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.graph.graph import Graph


@dataclass
class CollaborationData:
    """Train/test split of a temporal collaboration network."""

    train_graph: Graph
    #: pairs whose first collaboration happens in the test era
    test_pairs: Set[Tuple[int, int]] = field(default_factory=set)
    #: all papers as (year, author tuple) for inspection
    papers: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)
    train_years: Tuple[int, int] = (2001, 2005)
    test_years: Tuple[int, int] = (2006, 2010)

    def candidate_pairs(self, max_distance=2):
        """Unconnected train-era author pairs within ``max_distance``
        hops of each other — the standard link-prediction candidate set
        (ranking pairs at infinite distance is pointless: every census
        measure scores them zero)."""
        from repro.graph.traversal import k_hop_nodes

        g = self.train_graph
        seen = set()
        out = []
        for n in g.nodes():
            for m in k_hop_nodes(g, n, max_distance):
                if m == n or g.has_edge(n, m):
                    continue
                pair = (n, m) if n < m else (m, n)
                if pair not in seen:
                    seen.add(pair)
                    out.append(pair)
        return out


def synthetic_dblp(num_authors=300, num_areas=4, papers_per_year=60,
                   train_years=(2001, 2005), test_years=(2006, 2010),
                   authors_per_paper=(2, 4), closure_bias=1.0, region_bias=1.0,
                   bridge_fraction=0.4, test_papers_per_year=None, seed=0):
    """Generate a :class:`CollaborationData` instance.

    Three planted mechanisms drive new collaborations, mirroring what
    the paper's measures detect in real DBLP:

    - ``closure_bias`` scales direct triadic closure (shared coauthors
      — the 1-hop common-neighborhood signal);
    - ``region_bias`` scales 2-hop-region affinity when filling teams;
    - ``bridge_fraction`` of papers are two-author *bridge* papers:
      the partner is drawn from authors at distance 2–3 of the first
      author, weighted by the overlap of their 2-hop neighborhoods.
      Distance-3 bridges have zero common coauthors, so only the
      2-hop-and-wider measures can anticipate them — this is what makes
      the paper's headline finding (common nodes within 2 hops is the
      strongest predictor) reproducible on synthetic data.
    """
    rng = random.Random(seed)
    area_of = {a: rng.randrange(num_areas) for a in range(num_authors)}
    by_area = {}
    for a, area in area_of.items():
        by_area.setdefault(area, []).append(a)

    paper_count = {a: 1 for a in range(num_authors)}  # +1 smoothing
    coauthors = {a: set() for a in range(num_authors)}
    papers = []

    def two_hop(author):
        reach = set(coauthors[author])
        for c in coauthors[author]:
            reach |= coauthors[c]
        reach.discard(author)
        return reach

    def sample_author_team(year):
        area = rng.randrange(num_areas)
        pool = by_area[area]
        size = rng.randint(*authors_per_paper)
        size = min(size, len(pool))
        # First author: preferential by paper count within the area.
        weights = [paper_count[a] for a in pool]
        first = rng.choices(pool, weights=weights)[0]
        team = {first}
        first_region = two_hop(first)
        team_coauthors = set(coauthors[first])
        while len(team) < size:
            # Subsequent authors: preferential, boosted by direct
            # triadic closure and by 2-hop region overlap with the
            # first author.
            def score(a):
                if a in team:
                    return 0.0
                common = len(coauthors[a] & team_coauthors)
                region = len(two_hop(a) & first_region)
                return paper_count[a] * (
                    1.0 + closure_bias * common + region_bias * region
                )

            weights = [score(a) for a in pool]
            if not any(weights):
                remaining = [a for a in pool if a not in team]
                if not remaining:
                    break
                chosen = rng.choice(remaining)
            else:
                chosen = rng.choices(pool, weights=weights)[0]
            team.add(chosen)
            team_coauthors |= coauthors[chosen]
        return tuple(sorted(team))

    def sample_bridge_pair():
        """A two-author paper between authors at distance 2-3, weighted
        by 2-hop neighborhood overlap."""
        first = rng.choices(range(num_authors),
                            weights=[paper_count[a] for a in range(num_authors)])[0]
        ring1 = coauthors[first]
        ring2 = set()
        for c in ring1:
            ring2 |= coauthors[c]
        ring3 = set()
        for c in ring2:
            ring3 |= coauthors[c]
        # Prefer genuine distance-3 introductions: they are invisible to
        # 1-hop common-neighbor measures but visible at 2 hops.
        candidates = list(ring3 - ring2 - ring1 - {first})
        if not candidates:
            candidates = list(ring2 - ring1 - {first})
        if not candidates:
            return None
        first_region = two_hop(first)
        weights = [1 + len(two_hop(a) & first_region) for a in candidates]
        partner = rng.choices(candidates, weights=weights)[0]
        return tuple(sorted((first, partner)))

    def publish(year):
        team = None
        if rng.random() < bridge_fraction:
            team = sample_bridge_pair()
        if team is None:
            team = sample_author_team(year)
        papers.append((year, team))
        for a in team:
            paper_count[a] += 1
        for i, a in enumerate(team):
            for b in team[i + 1:]:
                coauthors[a].add(b)
                coauthors[b].add(a)
        return team

    train_graph = Graph()
    for a in range(num_authors):
        train_graph.add_node(a, area=f"area{area_of[a]}")

    train_edges = set()
    for year in range(train_years[0], train_years[1] + 1):
        for _ in range(papers_per_year):
            team = publish(year)
            for i, a in enumerate(team):
                for b in team[i + 1:]:
                    train_graph.add_edge(a, b)
                    train_edges.add((a, b))

    test_pairs = set()
    if test_papers_per_year is None:
        test_papers_per_year = papers_per_year
    for year in range(test_years[0], test_years[1] + 1):
        for _ in range(test_papers_per_year):
            team = publish(year)
            for i, a in enumerate(team):
                for b in team[i + 1:]:
                    pair = (a, b)
                    if pair not in train_edges:
                        test_pairs.add(pair)

    return CollaborationData(
        train_graph=train_graph,
        test_pairs=test_pairs,
        papers=papers,
        train_years=train_years,
        test_years=test_years,
    )
