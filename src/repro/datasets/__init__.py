"""Dataset builders: the synthetic DBLP stand-in and benchmark workloads."""

from repro.datasets.dblp import CollaborationData, synthetic_dblp
from repro.datasets.workloads import (
    census_workload,
    matching_workload,
    pa_graph,
)

__all__ = [
    "synthetic_dblp",
    "CollaborationData",
    "pa_graph",
    "matching_workload",
    "census_workload",
]
