"""Unit tests for the WHERE expression machinery."""

import random

import pytest

from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.lang.ast import ColumnRef
from repro.lang.expressions import (
    Binary,
    Column,
    EvalContext,
    Literal,
    Rnd,
    Unary,
    evaluate_where,
    expression_columns,
)


@pytest.fixture
def ctx():
    g = Graph()
    g.add_node(1, label="A", age=30)
    g.add_node(2, label="B", age=40)
    return EvalContext(g, {"n1": 1, "n2": 2}, random.Random(0))


class TestOperands:
    def test_literal(self, ctx):
        assert Literal(5).evaluate(ctx) == 5
        assert Literal(None).evaluate(ctx) is None

    def test_column_id(self, ctx):
        assert Column(ColumnRef("n1", "ID")).evaluate(ctx) == 1

    def test_column_attr_case_insensitive(self, ctx):
        assert Column(ColumnRef("n1", "LABEL")).evaluate(ctx) == "A"

    def test_column_missing_attr_none(self, ctx):
        assert Column(ColumnRef("n1", "height")).evaluate(ctx) is None

    def test_unqualified_needs_single_binding(self, ctx):
        with pytest.raises(QueryError):
            Column(ColumnRef(None, "ID")).evaluate(ctx)

    def test_unknown_alias(self, ctx):
        with pytest.raises(QueryError):
            Column(ColumnRef("zzz", "ID")).evaluate(ctx)

    def test_rnd_in_unit_interval(self, ctx):
        values = [Rnd().evaluate(ctx) for _ in range(20)]
        assert all(0.0 <= v < 1.0 for v in values)


class TestOperators:
    def test_bad_unary(self):
        with pytest.raises(QueryError):
            Unary("!", Literal(1))

    def test_bad_binary(self):
        with pytest.raises(QueryError):
            Binary("**", Literal(1), Literal(2))

    def test_arithmetic_type_error_raises(self, ctx):
        expr = Binary("+", Literal("x"), Literal(3))
        with pytest.raises(QueryError):
            expr.evaluate(ctx)

    def test_comparison_type_error_is_false(self, ctx):
        expr = Binary("<", Literal(None), Literal(3))
        assert expr.evaluate(ctx) is False

    def test_short_circuit_and(self, ctx):
        # RHS would divide by zero; AND must not evaluate it.
        boom = Binary("/", Literal(1), Literal(0))
        expr = Binary("and", Literal(False), boom)
        assert expr.evaluate(ctx) is False

    def test_short_circuit_or(self, ctx):
        boom = Binary("/", Literal(1), Literal(0))
        expr = Binary("or", Literal(True), boom)
        assert expr.evaluate(ctx) is True

    def test_negation_chain(self, ctx):
        expr = Unary("not", Unary("not", Literal(True)))
        assert expr.evaluate(ctx) is True

    def test_unary_minus(self, ctx):
        assert Unary("-", Literal(5)).evaluate(ctx) == -5


class TestHelpers:
    def test_evaluate_where_none_is_true(self, ctx):
        assert evaluate_where(None, ctx.graph, {"n": 1}, ctx.rng) is True

    def test_expression_columns_walks_tree(self):
        expr = Binary(
            "and",
            Binary("=", Column(ColumnRef("n1", "label")), Literal("A")),
            Unary("not", Binary("<", Column(ColumnRef("n2", "age")), Literal(10))),
        )
        refs = expression_columns(expr)
        assert {r.display_name() for r in refs} == {"n1.label", "n2.age"}
