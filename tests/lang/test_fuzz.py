"""Robustness fuzzing of the lexer and parser.

Arbitrary input must either parse or raise :class:`ParseError` /
:class:`QueryError` — never an unhandled exception — and valid inputs
must round-trip.
"""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ParseError, ReproError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_pattern, parse_query, parse_script


class TestLexerFuzz:
    @settings(max_examples=200)
    @given(st.text(max_size=120))
    def test_tokenize_total(self, text):
        try:
            tokens = tokenize(text)
        except ParseError:
            return
        assert tokens[-1].kind == "EOF"

    @settings(max_examples=100)
    @given(st.text(alphabet="?ABC-><!=;{}[]().'0123456789 \n", max_size=80))
    def test_language_alphabet_total(self, text):
        try:
            tokenize(text)
        except ParseError:
            pass


class TestParserFuzz:
    @settings(max_examples=150)
    @given(st.text(max_size=100))
    @example("PATTERN p {?A-?B;}")
    @example("SELECT ID FROM nodes")
    def test_parse_script_total(self, text):
        try:
            parse_script(text)
        except ReproError:
            # ParseError or QueryError are the only sanctioned failures.
            pass

    @settings(max_examples=100)
    @given(st.text(alphabet="SELECT FROMWHEREnodesID,()?AB.-<>='0123456789", max_size=80))
    def test_parse_query_total(self, text):
        try:
            parse_query(text)
        except ReproError:
            pass


class TestDeepNesting:
    """Regression: recursive descent used to hit RecursionError (an
    unsanctioned crash) on pathologically nested expressions."""

    def test_deep_parens_raise_parse_error(self):
        text = "SELECT a FROM nodes WHERE " + "(" * 4000 + "1" + ")" * 4000
        with pytest.raises(ParseError, match="nesting too deep"):
            parse_query(text)

    def test_deep_not_chain_raises_parse_error(self):
        text = "SELECT a FROM nodes WHERE " + "NOT " * 4000 + "1"
        with pytest.raises(ParseError, match="nesting too deep"):
            parse_query(text)

    def test_deep_unary_minus_raises_parse_error(self):
        # '- ' spacing matters: '--' would lex as a comment.
        text = "SELECT a FROM nodes WHERE " + "- " * 4000 + "1"
        with pytest.raises(ParseError, match="nesting too deep"):
            parse_query(text)

    def test_reasonable_nesting_still_parses(self):
        text = "SELECT a FROM nodes WHERE " + "(" * 50 + "1" + ")" * 50
        q = parse_query(text)
        assert q.where is not None


def _names():
    return st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


class TestRoundTrips:
    @settings(max_examples=60)
    @given(_names(), st.lists(st.tuples(st.sampled_from("ABCD"), st.sampled_from("ABCD"),
                                        st.booleans(), st.booleans()),
                              min_size=1, max_size=5))
    def test_pattern_unparse_reparses(self, name, edge_specs):
        from repro.matching.pattern import Pattern

        p = Pattern(name)
        for u, v, directed, negated in edge_specs:
            if u == v:
                continue
            p.add_edge(u, v, directed=directed, negated=negated)
        if not p.nodes:
            return
        try:
            p.validate()
        except ReproError:
            return
        q = parse_pattern(p.unparse())
        assert q.name == p.name
        assert len(q.edges) == len(p.edges)
        assert {repr(e) for e in q.edges} == {repr(e) for e in p.edges}

    @settings(max_examples=40)
    @given(st.integers(0, 5), st.sampled_from(["subgraph", "intersection", "union"]))
    def test_query_shapes_parse(self, k, kind):
        if kind == "subgraph":
            text = f"SELECT ID, COUNTP(p, SUBGRAPH(ID, {k})) FROM nodes"
        else:
            fn = "SUBGRAPH-INTERSECTION" if kind == "intersection" else "SUBGRAPH-UNION"
            text = (
                f"SELECT n1.ID, COUNTP(p, {fn}(n1.ID, n2.ID, {k})) "
                "FROM nodes AS n1, nodes AS n2"
            )
        q = parse_query(text)
        agg = q.aggregates()[0]
        assert agg.neighborhood.k == k
        assert agg.neighborhood.kind == kind
