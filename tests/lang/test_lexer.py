"""Tests for the tokenizer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import EOF, IDENT, NUMBER, STRING, VARIABLE, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == EOF

    def test_variables(self):
        toks = tokenize("?A ?node_1")
        assert [t.kind for t in toks[:-1]] == [VARIABLE, VARIABLE]
        assert [t.text for t in toks[:-1]] == ["A", "node_1"]

    def test_bare_question_mark_rejected(self):
        with pytest.raises(ParseError):
            tokenize("? A")

    def test_numbers(self):
        toks = tokenize("42 3.14")
        assert [t.text for t in toks[:-1]] == ["42", "3.14"]
        assert all(t.kind == NUMBER for t in toks[:-1])

    def test_number_trailing_dot_not_swallowed(self):
        # "n1.ID"-style: dot followed by a letter stays a symbol.
        assert texts("1.x") == ["1", ".", "x"]

    def test_strings_both_quotes(self):
        assert texts("'abc' \"def\"") == ["abc", "def"]
        assert kinds("'abc'") == [STRING]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'abc")
        with pytest.raises(ParseError):
            tokenize("'ab\nc'")

    def test_identifiers_preserve_case(self):
        toks = tokenize("Select LABEL nodes")
        assert [t.text for t in toks[:-1]] == ["Select", "LABEL", "nodes"]
        assert toks[0].is_keyword("select")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("@")


class TestEdgeSymbols:
    def test_edge_operators(self):
        assert texts("?A-?B") == ["A", "-", "B"]
        assert texts("?A->?B") == ["A", "->", "B"]
        assert texts("?A!-?B") == ["A", "!-", "B"]
        assert texts("?A!->?B") == ["A", "!->", "B"]

    def test_comparison_operators(self):
        assert texts("< <= > >= = == != <>") == [
            "<", "<=", ">", ">=", "=", "==", "!=", "<>",
        ]


class TestCompoundKeywords:
    def test_subgraph_intersection_folds(self):
        toks = tokenize("SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)")
        assert toks[0].kind == IDENT
        assert toks[0].text == "SUBGRAPH-INTERSECTION"

    def test_subgraph_union_folds(self):
        assert tokenize("subgraph-union")[0].text == "subgraph-union"

    def test_subgraph_minus_other_does_not_fold(self):
        toks = tokenize("SUBGRAPH-FOO")
        assert [t.text for t in toks[:-1]] == ["SUBGRAPH", "-", "FOO"]

    def test_pattern_name_with_hyphen_stays_split(self):
        # clq3-unlb is joined by the parser, not the lexer.
        assert texts("clq3-unlb") == ["clq3", "-", "unlb"]


class TestCommentsAndPositions:
    def test_sql_comment(self):
        assert texts("SELECT -- comment\nID") == ["SELECT", "ID"]

    def test_hash_comment(self):
        assert texts("# whole line\nID") == ["ID"]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("ab\n  @")
        except ParseError as exc:
            assert exc.line == 2 and exc.column == 3
        else:
            pytest.fail("expected ParseError")
