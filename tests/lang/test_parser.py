"""Tests for the pattern and SQL parsers."""

import pytest

from repro.errors import ParseError, QueryError
from repro.lang.ast import Aggregate, ColumnRef
from repro.lang.parser import parse_pattern, parse_query, parse_script
from repro.matching.pattern import Pattern


class TestPatternParsing:
    def test_single_node(self):
        p = parse_pattern("PATTERN single_node {?A;}")
        assert p.name == "single_node"
        assert list(p.nodes) == ["A"]
        assert p.edges == []

    def test_edges_all_flavors(self):
        p = parse_pattern("PATTERN x {?A-?B; ?B->?C; ?A!->?C; ?B!-?D; ?D-?A;}")
        flavors = {(e.u, e.v, e.directed, e.negated) for e in p.edges}
        assert ("A", "B", False, False) in flavors
        assert ("B", "C", True, False) in flavors
        assert ("A", "C", True, True) in flavors
        assert ("B", "D", False, True) in flavors

    def test_hyphenated_name(self):
        p = parse_pattern("PATTERN clq3-unlb {?A-?B; ?B-?C; ?A-?C;}")
        assert p.name == "clq3-unlb"

    def test_predicates(self):
        p = parse_pattern(
            "PATTERN t {?A-?B; [?A.LABEL=?B.LABEL]; [?A.age>=30]; [EDGE(?A,?B).sign=-1];}"
        )
        assert len(p.predicates) == 3

    def test_label_constant_predicate_sets_label(self):
        p = parse_pattern("PATTERN t {?A-?B; [?A.LABEL='X'];}")
        assert p.label_of("A") == "X"

    def test_subpattern(self):
        p = parse_pattern("PATTERN t {?A->?B; ?B->?C; SUBPATTERN mid {?B;}}")
        assert p.subpatterns == {"mid": ("B",)}

    def test_table1_row4_triad(self):
        text = """
        PATTERN triad {
            ?A->?B; ?B->?C; ?A!->?C;
            [?A.LABEL=?B.LABEL];
            [?B.LABEL=?C.LABEL];
            SUBPATTERN coordinator {?B;}
        }
        """
        p = parse_pattern(text)
        assert len(p.positive_edges()) == 2
        assert len(p.negative_edges()) == 1
        assert len(p.predicates) == 2
        assert p.subpatterns == {"coordinator": ("B",)}

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_pattern("PATTERN t {?A-?B}")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_pattern("PATTERN t {?A-?B;")

    def test_garbage_in_block(self):
        with pytest.raises(ParseError):
            parse_pattern("PATTERN t {SELECT;}")

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_pattern("PATTERN t {?A;} extra")


class TestQueryParsing:
    def test_table1_row1(self):
        q = parse_query("SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes")
        assert len(q.columns) == 2
        assert isinstance(q.columns[0], ColumnRef) and q.columns[0].is_id
        agg = q.columns[1]
        assert isinstance(agg, Aggregate)
        assert agg.pattern_name == "single_node"
        assert agg.neighborhood.kind == "subgraph"
        assert agg.neighborhood.k == 2
        assert not q.is_pair_query

    def test_table1_row2_pair_query(self):
        q = parse_query(
            "SELECT n1.ID, n2.ID, "
            "COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2"
        )
        assert q.is_pair_query
        agg = q.aggregates()[0]
        assert agg.neighborhood.kind == "intersection"
        assert [t.alias for t in agg.neighborhood.targets] == ["n1", "n2"]

    def test_table1_row4_countsp(self):
        q = parse_query("SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes")
        agg = q.aggregates()[0]
        assert agg.subpattern_name == "coordinator"
        assert agg.pattern_name == "triad"
        assert agg.neighborhood.k == 0

    def test_where_clause(self):
        q = parse_query("SELECT ID FROM nodes WHERE RND() < 0.2 AND label = 'A'")
        assert q.where is not None

    def test_order_by_and_limit(self):
        q = parse_query(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) AS c FROM nodes "
            "ORDER BY c DESC, ID LIMIT 10"
        )
        assert q.aggregates()[0].output_name == "c"
        assert [o.key for o in q.order_by] == ["c", "ID"]
        assert [o.ascending for o in q.order_by] == [False, True]
        assert q.limit == 10

    def test_union_neighborhood(self):
        q = parse_query(
            "SELECT n1.ID, COUNTP(tri, SUBGRAPH-UNION(n1.ID, n2.ID, 2)) "
            "FROM nodes AS n1, nodes AS n2"
        )
        assert q.aggregates()[0].neighborhood.kind == "union"

    def test_default_alias_single_table(self):
        q = parse_query("SELECT ID FROM nodes")
        assert q.tables[0].alias == "nodes"

    def test_pair_query_needs_aliases(self):
        with pytest.raises(ParseError):
            parse_query("SELECT ID FROM nodes, nodes")

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT n1.ID FROM nodes AS n1, nodes AS n1")

    def test_three_tables_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT a.ID FROM nodes AS a, nodes AS b, nodes AS c")

    def test_float_radius_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNTP(t, SUBGRAPH(ID, 1.5)) FROM nodes")

    def test_bad_neighborhood_function(self):
        with pytest.raises(ParseError):
            parse_query("SELECT COUNTP(t, HOOD(ID, 1)) FROM nodes")

    def test_hyphenated_pattern_name_in_countp(self):
        q = parse_query("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes")
        assert q.aggregates()[0].pattern_name == "clq3-unlb"


class TestWhereExpressions:
    def evaluate(self, text, graph, bindings, seed=0):
        import random

        from repro.lang.expressions import evaluate_where

        q = parse_query(f"SELECT ID FROM nodes WHERE {text}")
        return evaluate_where(q.where, graph, bindings, random.Random(seed))

    @pytest.fixture
    def g(self):
        from repro.graph.graph import Graph

        g = Graph()
        g.add_node(1, label="A", age=30)
        g.add_node(2, label="B", age=20)
        return g

    def test_comparisons(self, g):
        assert self.evaluate("ID = 1", g, {"nodes": 1})
        assert not self.evaluate("ID = 1", g, {"nodes": 2})
        assert self.evaluate("age >= 30", g, {"nodes": 1})

    def test_boolean_combinators(self, g):
        assert self.evaluate("label = 'A' AND age = 30", g, {"nodes": 1})
        assert self.evaluate("label = 'Z' OR age = 30", g, {"nodes": 1})
        assert self.evaluate("NOT label = 'Z'", g, {"nodes": 1})

    def test_precedence_or_lower_than_and(self, g):
        # a OR b AND c == a OR (b AND c)
        assert self.evaluate("label = 'A' OR label = 'Z' AND age = 99", g, {"nodes": 1})

    def test_arithmetic(self, g):
        assert self.evaluate("age + 10 = 40", g, {"nodes": 1})
        assert self.evaluate("age * 2 > 50", g, {"nodes": 1})
        assert self.evaluate("-age < 0", g, {"nodes": 1})

    def test_parentheses(self, g):
        assert self.evaluate("(label = 'Z' OR label = 'A') AND age = 30", g, {"nodes": 1})

    def test_rnd_deterministic(self, g):
        first = self.evaluate("RND() < 0.5", g, {"nodes": 1}, seed=4)
        second = self.evaluate("RND() < 0.5", g, {"nodes": 1}, seed=4)
        assert first == second

    def test_missing_attr_comparison_false(self, g):
        assert not self.evaluate("height > 3", g, {"nodes": 1})

    def test_division_by_zero_raises(self, g):
        with pytest.raises(QueryError):
            self.evaluate("age / 0 = 1", g, {"nodes": 1})

    def test_pair_bindings(self, g):
        assert self.evaluate("n1.ID > n2.ID", g, {"n1": 2, "n2": 1})
        assert not self.evaluate("n1.ID > n2.ID", g, {"n1": 1, "n2": 2})


class TestScripts:
    def test_mixed_script(self):
        statements = parse_script(
            """
            PATTERN tri {?A-?B; ?B-?C; ?A-?C;}
            SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes;
            SELECT ID FROM nodes WHERE ID = 1;
            """
        )
        assert isinstance(statements[0], Pattern)
        assert len(statements) == 3

    def test_empty_script(self):
        assert parse_script("") == []
        assert parse_script(" ;; ") == []

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_script("DELETE FROM nodes")
