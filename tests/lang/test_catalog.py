"""Tests for the pattern catalog and standard patterns."""

import pytest

from repro.errors import QueryError
from repro.lang.catalog import PatternCatalog, standard_catalog, standard_patterns
from repro.matching.pattern import Pattern


class TestCatalog:
    def test_register_and_get(self):
        cat = PatternCatalog()
        p = Pattern("x")
        p.add_node("A")
        cat.register(p)
        assert cat.get("x") is p
        assert "x" in cat and "y" not in cat

    def test_get_unknown_raises_with_suggestions(self):
        cat = standard_catalog()
        with pytest.raises(QueryError, match="clq3"):
            cat.get("nope")

    def test_replace_control(self):
        cat = PatternCatalog()
        p1 = Pattern("x")
        p1.add_node("A")
        cat.register(p1)
        p2 = Pattern("x")
        p2.add_node("B")
        cat.register(p2)  # replace allowed by default
        assert cat.get("x") is p2
        with pytest.raises(QueryError):
            cat.register(p1, replace=False)

    def test_invalid_pattern_rejected_at_register(self):
        cat = PatternCatalog()
        bad = Pattern("dis")
        bad.add_node("A")
        bad.add_node("B")  # disconnected
        with pytest.raises(Exception):
            cat.register(bad)


class TestStandardPatterns:
    def test_expected_names_present(self):
        names = {p.name for p in standard_patterns()}
        assert {"clq3", "clq4", "sqr", "clq3-unlb", "clq4-unlb",
                "single_node", "single_edge", "square", "path3", "star3"} <= names

    def test_clq3_is_labeled_triangle(self):
        cat = standard_catalog()
        p = cat.get("clq3")
        assert len(p.nodes) == 3
        assert len(p.positive_edges()) == 3
        assert {p.label_of(v) for v in p.nodes} == {"A", "B", "C"}

    def test_unlb_variants_unlabeled(self):
        cat = standard_catalog()
        for name in ("clq3-unlb", "clq4-unlb", "sqr-unlb"):
            p = cat.get(name)
            assert all(p.label_of(v) is None for v in p.nodes)

    def test_clq4_is_complete(self):
        p = standard_catalog().get("clq4")
        assert len(p.positive_edges()) == 6

    def test_sqr_is_cycle_not_clique(self):
        p = standard_catalog().get("sqr")
        assert len(p.nodes) == 4
        assert len(p.positive_edges()) == 4

    def test_all_valid(self):
        for p in standard_patterns():
            p.validate()

    def test_fresh_objects_each_call(self):
        a = standard_catalog().get("clq3")
        b = standard_catalog().get("clq3")
        assert a is not b
