"""Unit tests for request-scoped telemetry.

The daemon-facing contracts: every request gets an identity and a
private span tree that tees into the shared registry, head sampling
controls only ring-buffer retention, ring buffers evict FIFO at their
configured capacity, quantiles come out of the fixed log-scaled
buckets, and log records inside a request carry its IDs.
"""

import io
import json
import logging

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    Telemetry,
    configure_logging,
    current_request,
    get_logger,
)
from repro.obs.metrics import render_label_key, split_label_key
from repro.obs.telemetry import _Ring


class TestLabelKeys:
    def test_roundtrip(self):
        key = render_label_key("server.request_seconds",
                               {"endpoint": "query", "backend": "csr"})
        assert key == "server.request_seconds{backend=csr,endpoint=query}"
        name, labels = split_label_key(key)
        assert name == "server.request_seconds"
        assert labels == {"backend": "csr", "endpoint": "query"}

    def test_unlabeled_passthrough(self):
        assert render_label_key("x.y", None) == "x.y"
        assert split_label_key("x.y") == ("x.y", {})

    def test_registry_separates_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"endpoint": "query"}).inc(2)
        reg.counter("hits", labels={"endpoint": "update"}).inc(3)
        snap = reg.snapshot()["counters"]
        assert snap["hits{endpoint=query}"] == 2
        assert snap["hits{endpoint=update}"] == 3


class TestQuantiles:
    def test_interpolated_from_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        # p50: rank 2 of 4 falls in the (1, 2] bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        # p100 of all-finite observations is the top finite bound.
        assert h.quantile(1.0) == 4.0

    def test_inf_bucket_reports_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(50.0)
        assert h.quantile(0.99) == 50.0

    def test_empty_histogram_is_none(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat").quantile(0.95) is None

    def test_out_of_range_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("lat").quantile(1.5)

    def test_snapshot_carries_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=LATENCY_BUCKETS)
        for _ in range(100):
            h.observe(0.01)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["p50"] is not None
        assert snap["p95"] is not None
        assert snap["p99"] is not None
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestRing:
    def test_fifo_eviction_at_capacity(self):
        ring = _Ring(3)
        for i in range(5):
            ring.put(i, f"v{i}")
        assert len(ring) == 3
        assert ring.get(0) is None
        assert ring.get(1) is None
        assert [v for v in ring.values()] == ["v2", "v3", "v4"]

    def test_overwrite_refreshes_position(self):
        ring = _Ring(2)
        ring.put("a", 1)
        ring.put("b", 2)
        ring.put("a", 3)
        ring.put("c", 4)
        assert ring.get("b") is None
        assert ring.get("a") == 3


class TestSampling:
    def run_requests(self, telemetry, n=20):
        ids = []
        for _ in range(n):
            with telemetry.request("query") as trace:
                trace.status = 200
                ids.append(trace.request_id)
        return ids

    def test_rate_zero_retains_nothing(self):
        t = Telemetry(sample_rate=0.0)
        self.run_requests(t)
        assert len(t.traces) == 0
        assert t.trace_summaries() == []

    def test_rate_one_retains_everything(self):
        t = Telemetry(sample_rate=1.0, trace_buffer=64)
        ids = self.run_requests(t)
        assert len(t.traces) == len(ids)
        assert t.trace(ids[-1]).request_id == ids[-1]

    def test_unsampled_requests_still_record_latency(self):
        t = Telemetry(sample_rate=0.0)
        self.run_requests(t, n=5)
        key = render_label_key("server.request_seconds", {"endpoint": "query"})
        assert t.registry.snapshot()["histograms"][key]["count"] == 5

    def test_trace_ring_evicts_fifo(self):
        t = Telemetry(sample_rate=1.0, trace_buffer=4)
        ids = self.run_requests(t, n=10)
        assert len(t.traces) == 4
        retained = [s["request_id"] for s in t.trace_summaries()]
        assert set(retained) == set(ids[-4:])
        assert t.trace(ids[0]) is None


class TestRequestScope:
    def test_ids_and_root_span(self):
        t = Telemetry(sample_rate=1.0)
        with t.request("query") as trace:
            assert current_request() is trace
            assert len(trace.request_id) == 16
            assert trace.trace_id.startswith(trace.request_id)
            assert trace.root.name == "server.request"
            with trace.ctx.span("query.execute"):
                pass
            trace.status = 200
        assert current_request() is None
        doc = t.trace(trace.request_id).to_dict()
        assert doc["spans"]["children"][0]["name"] == "query.execute"
        assert doc["status"] == 200

    def test_tee_into_shared_registry(self):
        shared = MetricsRegistry()
        t = Telemetry(registry=shared, sample_rate=1.0)
        with t.request("query") as trace:
            trace.ctx.add("census.match_units", 7)
            with trace.ctx.span("query.execute"):
                pass
            trace.status = 200
        # Both the private and shared registry saw the counter and the
        # span timer, exactly once each.
        assert shared.snapshot()["counters"]["census.match_units"] == 7
        assert trace.ctx.registry.snapshot()["counters"]["census.match_units"] == 7
        assert shared.snapshot()["histograms"]["span.query.execute"]["count"] == 1

    def test_exception_marks_500_and_unwinds(self):
        t = Telemetry(sample_rate=1.0)
        with pytest.raises(RuntimeError):
            with t.request("query"):
                raise RuntimeError("boom")
        assert current_request() is None
        assert t.trace_summaries()[0]["status"] == 500
        assert t.in_flight() == []

    def test_in_flight_visible_during_request(self):
        t = Telemetry(sample_rate=0.0)
        with t.request("query") as trace:
            with trace.ctx.span("query.scan"):
                live = t.in_flight()
                assert [r["request_id"] for r in live] == [trace.request_id]
                assert live[0]["current_span"] == "query.scan"
                assert live[0]["age_ms"] >= 0
        assert t.in_flight() == []

    def test_follower_records_wait_not_request_latency(self):
        t = Telemetry(sample_rate=0.0)
        with t.request("query") as trace:
            trace.link_leader("leader1234567890", 0.25)
            trace.status = 200
        snap = t.registry.snapshot()
        labels = {"endpoint": "query"}
        wait_key = render_label_key("server.coalesced_wait_seconds", labels)
        req_key = render_label_key("server.request_seconds", labels)
        hits_key = render_label_key("server.coalesced_hits", labels)
        assert snap["histograms"][wait_key]["count"] == 1
        assert snap["counters"][hits_key] == 1
        assert req_key not in snap["histograms"]


class TestSlowCapture:
    def test_threshold_and_jsonl(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        t = Telemetry(sample_rate=0.0, slow_query_ms=0.0, slow_log_path=str(log))
        with t.request("query", on_slow=lambda trace: "PLAN TEXT") as trace:
            trace.query = "SELECT ID FROM nodes"
            trace.status = 200
        records = t.slow_records()
        assert len(records) == 1
        assert records[0]["plan"] == "PLAN TEXT"
        assert records[0]["query"] == "SELECT ID FROM nodes"
        on_disk = [json.loads(line) for line in log.read_text().splitlines()]
        assert on_disk[0]["request_id"] == trace.request_id
        assert on_disk[0]["plan"] == "PLAN TEXT"

    def test_disabled_by_default(self):
        t = Telemetry(sample_rate=0.0)
        with t.request("query") as trace:
            trace.status = 200
        assert t.slow_records() == []

    def test_fast_requests_not_captured(self):
        t = Telemetry(sample_rate=0.0, slow_query_ms=60_000.0)
        with t.request("query") as trace:
            trace.status = 200
        assert t.slow_records() == []

    def test_on_slow_failure_is_swallowed(self):
        def broken(trace):
            raise RuntimeError("renderer broke")

        t = Telemetry(sample_rate=0.0, slow_query_ms=0.0)
        with t.request("query", on_slow=broken) as trace:
            trace.status = 200
        assert t.slow_records()[0]["plan"] is None

    def test_slow_ring_evicts_fifo(self):
        t = Telemetry(sample_rate=0.0, slow_query_ms=0.0, slow_buffer=2)
        ids = []
        for _ in range(4):
            with t.request("query") as trace:
                trace.status = 200
                ids.append(trace.request_id)
        captured = [r["request_id"] for r in t.slow_records()]
        assert set(captured) == set(ids[-2:])


class TestLogCorrelation:
    def test_records_carry_request_ids_inside_a_request(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            log = get_logger("repro.test.telemetry")
            t = Telemetry(sample_rate=0.0)
            with t.request("query") as trace:
                log.info("inside")
            log.info("outside")
        finally:
            configure_logging("warning", stream=io.StringIO())
        lines = stream.getvalue().splitlines()
        assert f"request_id={trace.request_id}" in lines[0]
        assert f"trace_id={trace.trace_id}" in lines[0]
        assert "request_id=" not in lines[1]

    def test_custom_format_can_use_fields(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream,
                          fmt="%(request_id)s|%(message)s")
        try:
            log = get_logger("repro.test.telemetry2")
            t = Telemetry(sample_rate=0.0)
            with t.request("query") as trace:
                log.info("m")
        finally:
            configure_logging("warning", stream=io.StringIO())
        assert stream.getvalue().startswith(trace.request_id + "|")


class TestLogging:
    def test_null_handler_outside_configuration(self):
        # Guard: importing telemetry must not implicitly configure logs.
        logger = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)
