"""Tests for JSON and Prometheus exporters."""

import json

from repro.obs import MetricsRegistry, prometheus_name, to_json, to_prometheus


def make_registry():
    reg = MetricsRegistry()
    reg.counter("census.nd_pvot.bulk_added").inc(12)
    reg.gauge("storage.page_cache.resident").set(44)
    h = reg.histogram("span.query.execute", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    return reg


class TestJson:
    def test_roundtrips_through_json(self):
        doc = json.loads(to_json(make_registry()))
        assert doc["counters"]["census.nd_pvot.bulk_added"] == 12
        assert doc["gauges"]["storage.page_cache.resident"] == 44
        hist = doc["histograms"]["span.query.execute"]
        assert hist["count"] == 3
        assert hist["inf"] == 1


class TestPrometheusNames:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            prometheus_name("census.nd_pvot.bulk_added")
            == "repro_census_nd_pvot_bulk_added"
        )

    def test_unsafe_chars_sanitized(self):
        assert prometheus_name("a b-c", prefix="") == "a_b_c"

    def test_leading_digit_escaped(self):
        assert prometheus_name("9lives", prefix="")[0] == "_"


class TestPrometheusText:
    def test_counter_family(self):
        text = to_prometheus(make_registry())
        assert "# TYPE repro_census_nd_pvot_bulk_added_total counter" in text
        assert "repro_census_nd_pvot_bulk_added_total 12" in text

    def test_gauge_family(self):
        text = to_prometheus(make_registry())
        assert "repro_storage_page_cache_resident 44" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(make_registry())
        assert 'repro_span_query_execute_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_span_query_execute_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_span_query_execute_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_span_query_execute_seconds_count 3" in text

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_seconds_suffix_not_doubled(self):
        # Regression: census.parallel.chunk_seconds used to export as
        # repro_census_parallel_chunk_seconds_seconds.
        reg = MetricsRegistry()
        reg.histogram("census.parallel.chunk_seconds", buckets=(1.0,)).observe(0.5)
        text = to_prometheus(reg)
        assert "repro_census_parallel_chunk_seconds_count 1" in text
        assert "chunk_seconds_seconds" not in text


class TestLabeledExposition:
    def make_registry(self):
        reg = MetricsRegistry()
        for endpoint, values in (("query", (0.005, 0.05)), ("update", (0.002,))):
            h = reg.histogram(
                "server.request_seconds", buckets=(0.01, 0.1),
                labels={"endpoint": endpoint, "backend": "csr"},
            )
            for v in values:
                h.observe(v)
        reg.counter("server.coalesced_hits", labels={"endpoint": "query"}).inc(4)
        return reg

    def test_labeled_histogram_series(self):
        text = to_prometheus(self.make_registry())
        assert ('repro_server_request_seconds_bucket'
                '{backend="csr",endpoint="query",le="0.01"} 1') in text
        assert ('repro_server_request_seconds_bucket'
                '{backend="csr",endpoint="query",le="+Inf"} 2') in text
        assert ('repro_server_request_seconds_count'
                '{backend="csr",endpoint="query"} 2') in text
        assert ('repro_server_request_seconds_bucket'
                '{backend="csr",endpoint="update",le="+Inf"} 1') in text

    def test_type_line_once_per_family(self):
        text = to_prometheus(self.make_registry())
        assert text.count("# TYPE repro_server_request_seconds histogram") == 1

    def test_labeled_counter(self):
        text = to_prometheus(self.make_registry())
        assert ('repro_server_coalesced_hits_total{endpoint="query"} 4') in text

    def test_per_endpoint_p95_derivable(self):
        # The acceptance bar: cumulative per-endpoint buckets suffice to
        # compute a p95 from a scrape alone.
        text = to_prometheus(self.make_registry())
        buckets = {}
        for line in text.splitlines():
            if (line.startswith("repro_server_request_seconds_bucket")
                    and 'endpoint="query"' in line):
                labels, value = line.rsplit(" ", 1)
                le = labels.split('le="')[1].split('"')[0]
                buckets[le] = int(value)
        total = buckets["+Inf"]
        rank = 0.95 * total
        p95_bound = next(
            le for le in ("0.01", "0.1", "+Inf") if buckets[le] >= rank
        )
        assert p95_bound == "0.1"

    def test_json_snapshot_carries_quantiles(self):
        doc = json.loads(to_json(self.make_registry()))
        key = "server.request_seconds{backend=csr,endpoint=query}"
        hist = doc["histograms"][key]
        assert hist["count"] == 2
        assert hist["p50"] is not None and hist["p95"] is not None
        assert hist["p50"] <= hist["p95"]
