"""Tests for JSON and Prometheus exporters."""

import json

from repro.obs import MetricsRegistry, prometheus_name, to_json, to_prometheus


def make_registry():
    reg = MetricsRegistry()
    reg.counter("census.nd_pvot.bulk_added").inc(12)
    reg.gauge("storage.page_cache.resident").set(44)
    h = reg.histogram("span.query.execute", buckets=(0.01, 0.1))
    h.observe(0.005)
    h.observe(0.05)
    h.observe(5.0)
    return reg


class TestJson:
    def test_roundtrips_through_json(self):
        doc = json.loads(to_json(make_registry()))
        assert doc["counters"]["census.nd_pvot.bulk_added"] == 12
        assert doc["gauges"]["storage.page_cache.resident"] == 44
        hist = doc["histograms"]["span.query.execute"]
        assert hist["count"] == 3
        assert hist["inf"] == 1


class TestPrometheusNames:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            prometheus_name("census.nd_pvot.bulk_added")
            == "repro_census_nd_pvot_bulk_added"
        )

    def test_unsafe_chars_sanitized(self):
        assert prometheus_name("a b-c", prefix="") == "a_b_c"

    def test_leading_digit_escaped(self):
        assert prometheus_name("9lives", prefix="")[0] == "_"


class TestPrometheusText:
    def test_counter_family(self):
        text = to_prometheus(make_registry())
        assert "# TYPE repro_census_nd_pvot_bulk_added_total counter" in text
        assert "repro_census_nd_pvot_bulk_added_total 12" in text

    def test_gauge_family(self):
        text = to_prometheus(make_registry())
        assert "repro_storage_page_cache_resident 44" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(make_registry())
        assert 'repro_span_query_execute_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_span_query_execute_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_span_query_execute_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_span_query_execute_seconds_count 3" in text

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
