"""Tests for ObsContext activation, span trees, and the disabled path."""

import threading

from repro.obs import DISABLED, ObsContext, activate, current_obs, render_span_tree


class TestAmbientContext:
    def test_disabled_by_default(self):
        assert current_obs() is DISABLED
        assert not current_obs().enabled

    def test_activation_scopes_the_context(self):
        ctx = ObsContext()
        with activate(ctx):
            assert current_obs() is ctx
        assert current_obs() is DISABLED

    def test_context_manager_form_activates(self):
        with ObsContext() as ctx:
            assert current_obs() is ctx
            ctx.add("x")
        assert current_obs() is DISABLED
        assert ctx.registry.counter("x").value == 1

    def test_disabled_hooks_are_noops(self):
        obs = current_obs()
        with obs.span("anything", k=3) as sp:
            sp.set("a", 1)
            obs.add("counter", 5)
            obs.observe("hist", 1.0)
            obs.set_gauge("gauge", 2)
        # Nothing raised, nothing recorded anywhere.

    def test_threads_do_not_inherit_activation(self):
        ctx = ObsContext()
        seen = []
        with activate(ctx):
            t = threading.Thread(target=lambda: seen.append(current_obs()))
            t.start()
            t.join()
        assert seen == [DISABLED]


class TestSpans:
    def test_span_nesting_builds_a_tree(self):
        with ObsContext() as ctx:
            with ctx.span("root") as root:
                with ctx.span("child-a"):
                    with ctx.span("grandchild"):
                        pass
                with ctx.span("child-b", k=2):
                    pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.children[1].attrs == {"k": 2}
        assert ctx.roots == [root]

    def test_counters_attach_to_innermost_span(self):
        with ObsContext() as ctx:
            with ctx.span("outer") as outer:
                ctx.add("ops", 1)
                with ctx.span("inner") as inner:
                    ctx.add("ops", 10)
        assert outer.metrics == {"ops": 1}
        assert inner.metrics == {"ops": 10}
        assert outer.subtree_metrics() == {"ops": 11}
        assert ctx.registry.counter("ops").value == 11

    def test_span_durations_nest_consistently(self):
        with ObsContext() as ctx:
            with ctx.span("outer") as outer:
                with ctx.span("inner") as inner:
                    pass
        assert outer.end_time is not None
        assert inner.duration <= outer.duration

    def test_span_timer_recorded_in_registry(self):
        with ObsContext() as ctx:
            with ctx.span("stage"):
                pass
        assert ctx.registry.histogram("span.stage").count == 1

    def test_find_and_walk(self):
        with ObsContext() as ctx:
            with ctx.span("a"):
                with ctx.span("b", tag="x"):
                    pass
                with ctx.span("b", tag="y"):
                    pass
        root = ctx.root("a")
        assert root.find("b", tag="y").attrs["tag"] == "y"
        assert [s.name for s in root.walk()] == ["a", "b", "b"]

    def test_to_dict_roundtrips_structure(self):
        with ObsContext() as ctx:
            with ctx.span("root", k=1):
                ctx.add("n", 2)
        doc = ctx.root().to_dict()
        assert doc["name"] == "root"
        assert doc["attrs"] == {"k": 1}
        assert doc["metrics"] == {"n": 2}
        assert doc["children"] == []
        assert doc["duration_s"] >= 0


class TestReport:
    def test_report_contains_tree_counters_and_timers(self):
        with ObsContext() as ctx:
            with ctx.span("query.execute"):
                ctx.add("census.match_units", 7)
        text = ctx.report()
        assert "query.execute" in text
        assert "census.match_units" in text and "7" in text
        assert "counters:" in text
        assert "timers:" in text

    def test_render_span_tree_indents_children(self):
        with ObsContext() as ctx:
            with ctx.span("parent"):
                with ctx.span("child"):
                    pass
        text = render_span_tree(ctx.root())
        lines = text.splitlines()
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")
