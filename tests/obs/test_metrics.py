"""Tests for the metrics registry primitives."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("shared")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_observe_accumulates(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 20.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 22.5
        assert h.min == 0.5 and h.max == 20.0
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf

    def test_mean_of_empty_is_zero(self):
        reg = MetricsRegistry()
        assert reg.histogram("empty").mean == 0.0


class TestTimer:
    def test_time_scope_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("t").time():
            pass
        h = reg.histogram("t")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_timer_shares_histogram(self):
        reg = MetricsRegistry()
        reg.timer("t").observe(0.5)
        assert reg.histogram("t").count == 1


class TestSnapshot:
    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"] == [(1.0, 1)]

    def test_len_counts_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        assert len(reg) == 3
