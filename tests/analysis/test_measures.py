"""Tests that classic ego measures computed via census queries match
their direct combinatorial definitions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.measures import (
    clustering_coefficient,
    clustering_coefficient_via_census,
    degree_via_census,
    jaccard_coefficient,
    jaccard_via_census,
    k_clustering_coefficient,
)
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.graph import Graph


class TestDegree:
    def test_degree_census_equals_direct(self):
        g = preferential_attachment(60, m=2, seed=1)
        via = degree_via_census(g)
        assert via == {n: g.degree(n) for n in g.nodes()}

    def test_isolated_node(self):
        g = Graph()
        g.add_node(1)
        assert degree_via_census(g) == {1: 0}

    @given(st.integers(5, 40), st.integers(0, 100))
    def test_property(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        assert degree_via_census(g) == {x: g.degree(x) for x in g.nodes()}


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        assert clustering_coefficient(g, 1) == 1.0

    def test_star_has_zero(self):
        g = Graph()
        for i in range(1, 5):
            g.add_edge(0, i)
        assert clustering_coefficient(g, 0) == 0.0

    def test_low_degree_zero(self):
        g = Graph()
        g.add_edge(1, 2)
        assert clustering_coefficient(g, 1) == 0.0

    @settings(max_examples=20)
    @given(st.integers(6, 30), st.integers(0, 100))
    def test_census_equals_direct(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        via = clustering_coefficient_via_census(g)
        for node in g.nodes():
            assert abs(via[node] - clustering_coefficient(g, node)) < 1e-12

    def test_k_clustering_k1_relates_to_local(self):
        g = preferential_attachment(30, m=2, seed=3)
        for node in list(g.nodes())[:10]:
            k1 = k_clustering_coefficient(g, node, 1)
            assert 0.0 <= k1 <= 1.0


class TestJaccard:
    def test_identical_neighborhoods(self):
        g = Graph()
        g.add_edge(1, 2)
        # N_1(1) = {1,2}, N_1(2) = {1,2} -> jaccard 1.0
        assert jaccard_coefficient(g, 1, 2) == 1.0

    def test_disjoint_components(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        assert jaccard_coefficient(g, 1, 3) == 0.0

    @settings(max_examples=15)
    @given(st.integers(6, 24), st.integers(1, 2), st.integers(0, 100))
    def test_census_equals_direct(self, n, radius, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        pairs = [(0, 1), (1, 2), (0, n - 1)]
        via = jaccard_via_census(g, pairs, radius=radius)
        for pair in pairs:
            direct = jaccard_coefficient(g, pair[0], pair[1], radius)
            assert abs(via[pair] - direct) < 1e-12

    def test_bounds(self):
        g = preferential_attachment(40, m=3, seed=5)
        vals = jaccard_via_census(g, [(0, 1), (2, 3)], radius=1)
        assert all(0.0 <= v <= 1.0 for v in vals.values())
