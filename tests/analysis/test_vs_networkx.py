"""Cross-validation against networkx as an independent reference.

networkx implements triangle counting and clustering coefficients with
entirely different algorithms; agreeing with it on random graphs is
external evidence that the census stack's semantics are right.
"""

import pytest

networkx = pytest.importorskip("networkx")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graphlets import orbit_counts
from repro.analysis.measures import clustering_coefficient_via_census
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.interop import to_networkx


class TestTriangles:
    @settings(max_examples=15)
    @given(st.integers(5, 40), st.integers(0, 200))
    def test_orbit2_equals_nx_triangles(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        ours = orbit_counts(g, 2)
        theirs = networkx.triangles(to_networkx(g))
        assert ours == theirs

    def test_karate_club(self):
        nxg = networkx.karate_club_graph()
        from repro.graph.interop import from_networkx

        g = from_networkx(nxg)
        assert orbit_counts(g, 2) == networkx.triangles(nxg)


class TestClustering:
    @settings(max_examples=15)
    @given(st.integers(5, 30), st.integers(0, 200))
    def test_clustering_coefficient_matches(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        ours = clustering_coefficient_via_census(g)
        theirs = networkx.clustering(to_networkx(g))
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node])


class TestDegreeAndJaccard:
    def test_jaccard_against_nx_on_open_neighborhoods(self):
        # networkx's jaccard_coefficient uses open neighborhoods; the
        # paper's census formulation uses closed ones.  Verify the
        # exact algebraic relationship on adjacent-free pairs.
        g = preferential_attachment(40, m=2, seed=3)
        nxg = to_networkx(g)
        from repro.analysis.measures import jaccard_coefficient

        pairs = [(0, 5), (1, 7), (2, 9)]
        pairs = [p for p in pairs if not g.has_edge(*p)]
        for u, v, nx_j in networkx.jaccard_coefficient(nxg, pairs):
            nu = set(g.neighbors(u))
            nv = set(g.neighbors(v))
            closed = jaccard_coefficient(g, u, v, radius=1)
            closed_direct = len((nu | {u}) & (nv | {v})) / len((nu | {u}) | (nv | {v}))
            assert closed == pytest.approx(closed_direct)
            open_direct = len(nu & nv) / len(nu | nv) if nu | nv else 0.0
            assert nx_j == pytest.approx(open_direct)
