"""Tests for census-based node signatures (graph-indexing application)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.signatures import SignatureIndex, default_basis
from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.graph.graph import Graph
from repro.matching import bruteforce_matches
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def square():
    p = Pattern("sqr")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("C", "D")
    p.add_edge("D", "A")
    return p


class TestSignatures:
    def test_signature_components(self):
        # A triangle node: 3 edges, 3 wedges, 1 triangle in its 1-hop net.
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        index = SignatureIndex(g)
        assert index.signature(1) == (3, 3, 1)

    def test_default_basis_patterns(self):
        names = [b.name for b in default_basis()]
        assert names == ["sig_edge", "sig_wedge", "sig_triangle"]

    def test_pattern_signatures_on_triangle(self):
        g = preferential_attachment(10, m=2, seed=0)
        index = SignatureIndex(g)
        sigs = index.pattern_signatures(triangle())
        assert all(sig == (3, 3, 1) for sig in sigs.values())


class TestSoundness:
    @settings(max_examples=20)
    @given(st.integers(8, 28), st.integers(0, 100))
    def test_never_prunes_true_images_triangle(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        index = SignatureIndex(g)
        candidate_sets = index.candidates(triangle())
        for match in bruteforce_matches(g, triangle()):
            for var, node in match.mapping.items():
                assert node in candidate_sets[var]

    @settings(max_examples=15)
    @given(st.integers(8, 22), st.integers(0, 100))
    def test_never_prunes_true_images_square(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        index = SignatureIndex(g)
        candidate_sets = index.candidates(square())
        for match in bruteforce_matches(g, square()):
            for var, node in match.mapping.items():
                assert node in candidate_sets[var]


class TestPruning:
    def test_prunes_low_degree_nodes_for_cliques(self):
        g = labeled_preferential_attachment(150, m=2, seed=4)
        index = SignatureIndex(g)
        power = index.pruning_power(triangle())
        assert 0.0 < power < 1.0

    def test_leaf_cannot_match_triangle(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        g.add_edge(3, 4)  # leaf node 4
        index = SignatureIndex(g)
        candidate_sets = index.candidates(triangle())
        for var in "ABC":
            assert 4 not in candidate_sets[var]

    def test_len(self):
        g = preferential_attachment(20, m=1, seed=0)
        assert len(SignatureIndex(g)) == 20
