"""Tests for structural-hole measures (effective size, efficiency)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.measures import effective_size, effective_size_via_census, efficiency
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph


def star(leaves):
    g = Graph()
    for i in range(1, leaves + 1):
        g.add_edge(0, i)
    return g


class TestEffectiveSize:
    def test_star_center_is_fully_effective(self):
        # No ties among alters: effective size equals degree.
        g = star(5)
        assert effective_size(g, 0) == 5.0
        assert efficiency(g, 0) == 1.0

    def test_clique_member_is_redundant(self):
        # K4: each ego's 3 alters have 3 ties among them -> 3 - 2*3/3 = 1.
        g = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(i, j)
        assert effective_size(g, 0) == 1.0
        assert efficiency(g, 0) == 1.0 / 3.0

    def test_isolated_node(self):
        g = Graph()
        g.add_node(9)
        assert effective_size(g, 9) == 0.0
        assert efficiency(g, 9) == 0.0

    @settings(max_examples=20)
    @given(st.integers(5, 40), st.integers(0, 100))
    def test_census_formulation_matches_direct(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        via = effective_size_via_census(g)
        for node in g.nodes():
            assert abs(via[node] - effective_size(g, node)) < 1e-12

    @settings(max_examples=15)
    @given(st.integers(5, 30), st.integers(0, 100))
    def test_bounds(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        for node in g.nodes():
            es = effective_size(g, node)
            assert 0.0 <= es <= g.degree(node) + 1e-12
