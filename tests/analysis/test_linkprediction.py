"""Tests for the link prediction harness."""

import pytest

from repro.analysis.linkprediction import (
    LinkPredictionExperiment,
    jaccard_scores,
    precision_at_k,
    random_scores,
    structure_pattern,
    structure_scores,
)
from repro.graph.graph import Graph


class TestStructurePatterns:
    def test_three_structures(self):
        assert len(structure_pattern("node").nodes) == 1
        assert len(structure_pattern("edge").positive_edges()) == 1
        assert len(structure_pattern("triangle").positive_edges()) == 3

    def test_unknown_structure(self):
        with pytest.raises(ValueError):
            structure_pattern("pentagon")


class TestPrecisionAtK:
    def test_perfect_predictor(self):
        scores = {(1, 2): 0.9, (3, 4): 0.8, (5, 6): 0.1}
        truth = {(1, 2), (3, 4)}
        assert precision_at_k(scores, truth, 2) == 1.0

    def test_zero_predictor(self):
        scores = {(1, 2): 0.9}
        assert precision_at_k(scores, {(7, 8)}, 1) == 0.0

    def test_order_insensitive_pairs(self):
        scores = {(2, 1): 1.0}
        assert precision_at_k(scores, {(1, 2)}, 1) == 1.0

    def test_k_larger_than_scores(self):
        scores = {(1, 2): 1.0}
        assert precision_at_k(scores, {(1, 2)}, 10) == 1.0

    def test_empty_scores(self):
        assert precision_at_k({}, {(1, 2)}, 5) == 0.0

    def test_deterministic_tie_breaking(self):
        scores = {(1, 2): 1.0, (3, 4): 1.0, (5, 6): 1.0}
        truth = {(1, 2)}
        assert precision_at_k(scores, truth, 1) == precision_at_k(scores, truth, 1)


class TestScores:
    @pytest.fixture
    def g(self):
        # 1 and 2 share two common neighbors (3, 4), which are connected.
        g = Graph()
        for u, v in [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (5, 6)]:
            g.add_edge(u, v)
        return g

    def test_node_scores_count_common_neighborhood(self, g):
        scores = structure_scores(g, [(1, 2), (1, 5)], "node", 1)
        assert scores[(1, 2)] == 2  # nodes 3 and 4
        assert scores[(1, 5)] == 0

    def test_edge_scores(self, g):
        scores = structure_scores(g, [(1, 2)], "edge", 1)
        assert scores[(1, 2)] == 1  # the 3-4 edge

    def test_triangle_scores_radius2(self, g):
        scores = structure_scores(g, [(1, 2)], "triangle", 2)
        assert scores[(1, 2)] >= 1

    def test_jaccard_scores_bounds(self, g):
        scores = jaccard_scores(g, [(1, 2), (5, 6)])
        assert all(0 <= v <= 1 for v in scores.values())

    def test_random_scores_deterministic(self):
        pairs = [(1, 2), (3, 4)]
        assert random_scores(pairs, seed=1) == random_scores(pairs, seed=1)


class TestExperiment:
    def test_report_structure(self):
        g = Graph()
        for u, v in [(1, 3), (2, 3), (1, 4), (2, 4), (5, 3)]:
            g.add_edge(u, v)
        exp = LinkPredictionExperiment(g, {(1, 2)}, [(1, 2), (1, 5), (2, 5)])
        rows = exp.report(ks=(1, 2))
        names = [name for name, _p in rows]
        assert "node@2hop" in names and "jaccard" in names and "random" in names
        assert len(rows) == 11
        for _name, precisions in rows:
            assert set(precisions) == {1, 2}
            assert all(0.0 <= v <= 1.0 for v in precisions.values())

    def test_planted_signal_is_found(self):
        # Pairs with many common neighbors are the future links.
        g = Graph()
        # hub structure: (1,2) share 3 neighbors; (7,8) share none.
        for c in (3, 4, 5):
            g.add_edge(1, c)
            g.add_edge(2, c)
        g.add_edge(7, 3)
        g.add_edge(8, 6)
        exp = LinkPredictionExperiment(g, {(1, 2)}, [(1, 2), (7, 8)])
        assert exp.precision(("node", 1), 1) == 1.0

    def test_scores_cached(self):
        g = Graph()
        g.add_edge(1, 2)
        exp = LinkPredictionExperiment(g, set(), [(1, 2)])
        a = exp.scores(("node", 1))
        assert exp.scores(("node", 1)) is a
