"""Tests for graphlet orbit profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graphlets import (
    gdd_distance,
    graphlet_degree_distribution,
    graphlet_profiles,
    orbit_counts,
)
from repro.graph.generators import erdos_renyi, preferential_attachment, watts_strogatz
from repro.graph.graph import Graph


def direct_orbits(graph, node):
    """Reference implementation by direct enumeration."""
    nbrs = set(graph.neighbors(node))
    orbit2 = 0
    for u in nbrs:
        for v in nbrs:
            if repr(u) < repr(v) and graph.has_edge(u, v):
                orbit2 += 1
    # orbit 1: node is the center of an open wedge.
    orbit1 = 0
    nbr_list = sorted(nbrs, key=repr)
    for i, u in enumerate(nbr_list):
        for v in nbr_list[i + 1:]:
            if not graph.has_edge(u, v):
                orbit1 += 1
    # orbit 0: node is an end of an open wedge (node - m - far).
    orbit0 = 0
    for m in nbrs:
        for far in graph.neighbors(m):
            if far != node and far not in nbrs:
                orbit0 += 1
    return orbit0, orbit1, orbit2


class TestOrbitCounts:
    def test_triangle_graph(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        profiles = graphlet_profiles(g)
        assert profiles == {1: (0, 0, 1), 2: (0, 0, 1), 3: (0, 0, 1)}

    def test_path_graph(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        profiles = graphlet_profiles(g)
        assert profiles[1] == (1, 0, 0)
        assert profiles[2] == (0, 1, 0)
        assert profiles[3] == (1, 0, 0)

    def test_star_center(self):
        g = Graph()
        for leaf in (2, 3, 4):
            g.add_edge(1, leaf)
        profiles = graphlet_profiles(g)
        assert profiles[1] == (0, 3, 0)  # C(3,2) open wedges centered at 1
        assert profiles[2] == (2, 0, 0)

    def test_unknown_orbit(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            orbit_counts(g, 9)

    @settings(max_examples=20)
    @given(st.integers(5, 22), st.integers(0, 120))
    def test_matches_direct_enumeration(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        profiles = graphlet_profiles(g)
        for node in g.nodes():
            assert profiles[node] == direct_orbits(g, node)


class TestDistributionsAndDistance:
    def test_distribution_sums_to_node_count(self):
        g = preferential_attachment(60, m=2, seed=1)
        dist = graphlet_degree_distribution(g, 2)
        assert sum(dist.values()) == g.num_nodes

    def test_distance_zero_for_same_graph(self):
        g = preferential_attachment(40, m=2, seed=2)
        assert gdd_distance(g, g) == pytest.approx(0.0)

    def test_distance_separates_graph_families(self):
        # Two PA graphs should be closer to each other than to a ring
        # lattice of the same size.
        pa1 = preferential_attachment(80, m=3, seed=3)
        pa2 = preferential_attachment(80, m=3, seed=4)
        ring = watts_strogatz(80, k=6, beta=0.0, seed=5)
        assert gdd_distance(pa1, pa2) < gdd_distance(pa1, ring)

    def test_distance_symmetric(self):
        a = preferential_attachment(30, m=2, seed=6)
        b = erdos_renyi(30, 60, seed=7)
        assert gdd_distance(a, b) == pytest.approx(gdd_distance(b, a))
