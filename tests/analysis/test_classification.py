"""Tests for census-based node classification."""

import random

from repro.analysis.classification import (
    classification_accuracy,
    collective_classify,
    neighbor_label_counts,
)
from repro.graph.generators import stochastic_block_model
from repro.graph.graph import Graph


def homophilous_graph(seed=0, hide_fraction=0.3):
    """SBM with two blocks; block id is the class; a fraction hidden."""
    g = stochastic_block_model([25, 25], p_in=0.3, p_out=0.02, seed=seed)
    truth = {}
    rng = random.Random(seed + 1)
    for n in g.nodes():
        cls = f"c{g.node_attr(n, 'block')}"
        truth[n] = cls
        if rng.random() < hide_fraction:
            g.set_node_attr(n, "cls", None)
        else:
            g.set_node_attr(n, "cls", cls)
    return g, truth


class TestNeighborCounts:
    def test_counts_labeled_alters(self):
        g = Graph()
        g.add_node(1, cls=None)
        g.add_node(2, cls="a")
        g.add_node(3, cls="a")
        g.add_node(4, cls="b")
        for v in (2, 3, 4):
            g.add_edge(1, v)
        counts = neighbor_label_counts(g, ["a", "b"], nodes=[1])
        assert counts[1] == {"a": 2, "b": 1}

    def test_k2_horizon(self):
        g = Graph()
        g.add_node(1, cls=None)
        g.add_node(2, cls=None)
        g.add_node(3, cls="a")
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        near = neighbor_label_counts(g, ["a"], nodes=[1], k=1)
        far = neighbor_label_counts(g, ["a"], nodes=[1], k=2)
        assert near[1]["a"] == 0
        assert far[1]["a"] == 1

    def test_empty_classes(self):
        g = Graph()
        g.add_node(1)
        assert neighbor_label_counts(g, [], nodes=[1]) == {}


class TestCollectiveClassification:
    def test_recovers_planted_classes(self):
        g, truth = homophilous_graph(seed=3)
        predictions = collective_classify(g, ["c0", "c1"])
        assert predictions  # something was classified
        assert classification_accuracy(predictions, truth) > 0.85

    def test_updates_graph_in_place(self):
        g, _truth = homophilous_graph(seed=4)
        predictions = collective_classify(g, ["c0", "c1"])
        for n, cls in predictions.items():
            assert g.node_attr(n, "cls") == cls

    def test_isolated_node_stays_unassigned(self):
        g = Graph()
        g.add_node(1, cls="a")
        g.add_node(2, cls=None)  # isolated
        predictions = collective_classify(g, ["a"])
        assert 2 not in predictions

    def test_propagation_reaches_chains(self):
        # a - ? - ? : the middle gets labeled round 1, the end round 2.
        g = Graph()
        g.add_node(1, cls="a")
        g.add_node(2, cls=None)
        g.add_node(3, cls=None)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        predictions = collective_classify(g, ["a"], max_rounds=3)
        assert predictions == {2: "a", 3: "a"}

    def test_accuracy_empty(self):
        assert classification_accuracy({}, {}) == 0.0
