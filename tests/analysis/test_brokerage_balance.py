"""Tests for brokerage role census and structural-balance census."""

import pytest

from repro.analysis.balance import (
    balance_instability,
    signed_triangle_pattern,
    unstable_triangle_census,
)
from repro.analysis.brokerage import (
    BROKERAGE_ROLES,
    brokerage_pattern,
    brokerage_profile,
    brokerage_scores,
)
from repro.graph.generators import signed_network
from repro.graph.graph import Graph


def org_graph(edges, orgs):
    g = Graph(directed=True)
    for node, org in orgs.items():
        g.add_node(node, org=org)
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestBrokerage:
    def test_coordinator(self):
        g = org_graph([(1, 2), (2, 3)], {1: "x", 2: "x", 3: "x"})
        scores = brokerage_scores(g, "coordinator")
        assert scores == {1: 0, 2: 1, 3: 0}

    def test_gatekeeper(self):
        g = org_graph([(1, 2), (2, 3)], {1: "out", 2: "x", 3: "x"})
        assert brokerage_scores(g, "gatekeeper")[2] == 1
        assert brokerage_scores(g, "coordinator")[2] == 0

    def test_representative(self):
        g = org_graph([(1, 2), (2, 3)], {1: "x", 2: "x", 3: "out"})
        assert brokerage_scores(g, "representative")[2] == 1

    def test_consultant(self):
        g = org_graph([(1, 2), (2, 3)], {1: "x", 2: "mid", 3: "x"})
        assert brokerage_scores(g, "consultant")[2] == 1

    def test_liaison(self):
        g = org_graph([(1, 2), (2, 3)], {1: "a", 2: "b", 3: "c"})
        assert brokerage_scores(g, "liaison")[2] == 1

    def test_closed_triad_not_counted(self):
        # A->C edge exists: B is not a broker.
        g = org_graph([(1, 2), (2, 3), (1, 3)], {1: "x", 2: "x", 3: "x"})
        assert brokerage_scores(g, "coordinator")[2] == 0

    def test_roles_partition_open_triads(self):
        from repro.graph.generators import organizational_network

        g = organizational_network(60, num_orgs=3, m=2, seed=1)
        totals = {}
        for role in BROKERAGE_ROLES:
            for n, c in brokerage_scores(g, role).items():
                totals[n] = totals.get(n, 0) + c
        # Sum over roles == count of all open directed triads per middle.
        open_triad = brokerage_pattern("coordinator")
        open_triad.predicates.clear()  # structure only
        from repro.census import census

        expected = census(g, open_triad, 0, subpattern="broker", algorithm="nd-bas")
        assert totals == expected

    def test_unknown_role(self):
        g = org_graph([(1, 2)], {1: "x", 2: "x"})
        with pytest.raises(ValueError):
            brokerage_scores(g, "kingmaker")

    def test_profile(self):
        g = org_graph([(1, 2), (2, 3)], {1: "x", 2: "x", 3: "x"})
        profile = brokerage_profile(g, 2)
        assert profile["coordinator"] == 1
        assert sum(profile.values()) == 1


def signed_triangle(signs):
    g = Graph()
    edges = [(1, 2), (2, 3), (1, 3)]
    for (u, v), s in zip(edges, signs):
        g.add_edge(u, v, sign=s)
    return g


class TestBalance:
    def test_pattern_validates_count(self):
        with pytest.raises(ValueError):
            signed_triangle_pattern(4)

    @pytest.mark.parametrize("signs,unstable", [
        ((1, 1, 1), 0),
        ((-1, 1, 1), 1),
        ((-1, -1, 1), 0),
        ((-1, -1, -1), 1),
    ])
    def test_single_triangle_classification(self, signs, unstable):
        g = signed_triangle(signs)
        counts = unstable_triangle_census(g, 1)
        assert counts[1] == unstable

    def test_each_sign_multiset_counted_once(self):
        g = signed_triangle((-1, 1, 1))
        one_neg = signed_triangle_pattern(1)
        from repro.census import census

        assert census(g, one_neg, 1, algorithm="nd-bas")[1] == 1

    def test_instability_fraction(self):
        g = signed_triangle((-1, 1, 1))
        frac = balance_instability(g, 1)
        assert frac[1] == 1.0
        g2 = signed_triangle((1, 1, 1))
        assert balance_instability(g2, 1)[1] == 0.0

    def test_no_triangles_zero(self):
        g = Graph()
        g.add_edge(1, 2, sign=1)
        assert balance_instability(g, 2)[1] == 0.0

    def test_on_random_signed_network(self):
        g = signed_network(60, m=2, negative_fraction=0.4, seed=2)
        unstable = unstable_triangle_census(g, 1)
        # Cross-check against a direct triangle enumeration.
        from repro.matching import find_matches
        from repro.matching.pattern import Pattern

        tri = Pattern("t")
        tri.add_edge("A", "B")
        tri.add_edge("B", "C")
        tri.add_edge("A", "C")
        total_unstable = 0
        for m in find_matches(g, tri):
            nodes = sorted(m.nodes())
            signs = [
                g.edge_attr(nodes[0], nodes[1], "sign"),
                g.edge_attr(nodes[1], nodes[2], "sign"),
                g.edge_attr(nodes[0], nodes[2], "sign"),
            ]
            if signs.count(-1) % 2 == 1:
                total_unstable += 1
        # Every unstable triangle contributes to each of its 3 members'
        # 1-hop counts at least (its own nodes see it).
        if total_unstable == 0:
            assert all(v == 0 for v in unstable.values())
        else:
            assert sum(unstable.values()) >= 3 * total_unstable
