"""Tests for structural role extraction."""

import pytest

from repro.analysis.roles import census_feature_vectors, extract_roles, role_summary
from repro.errors import CensusError
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def star_of_stars():
    """A hub connected to satellite hubs, each with leaves: three clear
    structural roles (center, satellite, leaf)."""
    g = Graph()
    node = 1
    satellites = []
    for _ in range(4):
        sat = node
        node += 1
        g.add_edge(0, sat)
        satellites.append(sat)
        for _ in range(4):
            g.add_edge(sat, node)
            node += 1
    return g, satellites


class TestFeatureVectors:
    def test_custom_queries(self):
        g, _sats = star_of_stars()
        edge = Pattern("edge")
        edge.add_edge("A", "B")
        tri = Pattern("tri")
        tri.add_edge("A", "B")
        tri.add_edge("B", "C")
        tri.add_edge("A", "C")
        vectors = census_feature_vectors(g, [(edge, 1), (tri, 1)])
        assert all(len(v) == 2 for v in vectors.values())
        # Edge count in a leaf's 1-hop net is exactly 1; no triangles.
        leaf = max(g.nodes())
        assert vectors[leaf] == (1, 0)

    def test_subpattern_feature(self):
        g, _sats = star_of_stars()
        path = Pattern("path")
        path.add_edge("A", "B")
        path.add_edge("B", "C")
        path.add_subpattern("center", ["B"])
        vectors = census_feature_vectors(g, [(path, 0, "center")])
        # The root has degree 4 -> C(4,2)=6 centered wedges.
        assert vectors[0] == (6,)

    def test_requires_queries(self):
        g, _sats = star_of_stars()
        with pytest.raises(CensusError):
            census_feature_vectors(g, [])


class TestRoleExtraction:
    def test_separates_leaves_from_hubs(self):
        g, satellites = star_of_stars()
        roles = extract_roles(g, num_roles=2, seed=1)
        leaves = [n for n in g.nodes() if g.degree(n) == 1]
        leaf_roles = {roles[n] for n in leaves}
        assert len(leaf_roles) == 1  # all leaves share a role
        sat_roles = {roles[s] for s in satellites}
        assert len(sat_roles) == 1
        assert leaf_roles != sat_roles

    def test_role_count_bounded(self):
        g, _sats = star_of_stars()
        roles = extract_roles(g, num_roles=3, seed=2)
        assert set(roles) == set(g.nodes())
        assert max(roles.values()) <= 2

    def test_invalid_role_count(self):
        g, _sats = star_of_stars()
        with pytest.raises(CensusError):
            extract_roles(g, num_roles=0)

    def test_summary(self):
        g, _sats = star_of_stars()
        roles = extract_roles(g, num_roles=2, seed=1)
        summary = role_summary(g, roles)
        assert sum(e["size"] for e in summary.values()) == g.num_nodes
        assert all(e["mean_degree"] > 0 for e in summary.values())

    def test_deterministic(self):
        g, _sats = star_of_stars()
        assert extract_roles(g, 3, seed=5) == extract_roles(g, 3, seed=5)
