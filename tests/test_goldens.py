"""Golden regression tests.

Everything in this repo is seeded, so exact outputs on fixed workloads
are stable; these goldens pin them down to catch silent behavioral
drift (a changed generator, a changed tie-break, a changed counting
rule) that agreement-style tests cannot see because all algorithms
would drift together.

If a golden fails after an *intentional* semantic change, re-derive the
expected value by hand (the workloads are small) before updating it.
"""

import pytest

from repro import Graph, QueryEngine
from repro.census import census
from repro.graph.generators import preferential_attachment
from repro.matching import find_matches
from repro.matching.pattern import Pattern


@pytest.fixture(scope="module")
def pa30():
    return preferential_attachment(30, m=2, seed=42)


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestGeneratorGoldens:
    def test_pa30_shape(self, pa30):
        assert pa30.num_nodes == 30
        assert pa30.num_edges == 57

    def test_pa30_degree_sequence_head(self, pa30):
        degrees = sorted((pa30.degree(n) for n in pa30.nodes()), reverse=True)
        assert degrees[:5] == [14, 12, 9, 8, 6]


class TestMatchingGoldens:
    def test_pa30_triangle_count(self, pa30):
        assert len(find_matches(pa30, triangle())) == 20

    def test_pa30_embedding_count(self, pa30):
        assert len(find_matches(pa30, triangle(), distinct=False)) == 120


class TestCensusGoldens:
    def test_pa30_triangle_census_k1(self, pa30):
        counts = census(pa30, triangle(), 1, algorithm="nd-bas")
        assert sum(counts.values()) == 60
        assert max(counts.values()) == 11

    def test_pa30_topk(self, pa30):
        from repro.census.topk import census_topk

        top = census_topk(pa30, triangle(), 1, 3)
        assert [c for _n, c in top] == [11, 10, 6]


class TestLanguageGoldens:
    def test_bowtie_script(self):
        g = Graph()
        for u, v in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
            g.add_edge(u, v)
        eng = QueryEngine(g)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) AS c, "
            "COUNTP(single_edge, SUBGRAPH(ID, 1)) AS e "
            "FROM nodes ORDER BY ID"
        )
        assert t.rows == [
            (1, 1, 3), (2, 1, 3), (3, 2, 6), (4, 1, 3), (5, 1, 3),
        ]

    def test_rnd_sampling_golden(self):
        g = preferential_attachment(20, m=1, seed=7)
        eng = QueryEngine(g, seed=123)
        t = eng.execute("SELECT ID FROM nodes WHERE RND() < 0.3 ORDER BY ID")
        # Fixed seed 123 over nodes 0..19 in insertion order.
        assert [r[0] for r in t.rows] == t.column("ID")
        assert t == eng.execute("SELECT ID FROM nodes WHERE RND() < 0.3 ORDER BY ID")


class TestAnalysisGoldens:
    def test_pa30_graphlet_profile_of_hub(self, pa30):
        from repro.analysis.graphlets import graphlet_profiles

        hub = max(pa30.nodes(), key=pa30.degree)
        profiles = graphlet_profiles(pa30)
        orbit0, orbit1, orbit2 = profiles[hub]
        assert orbit2 == 10
        assert orbit1 == 81
        assert orbit0 == 26
