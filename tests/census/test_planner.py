"""Tests for the rule-based algorithm planner."""

from repro.census import ALGORITHMS, census
from repro.census.planner import choose_algorithm
from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.matching.pattern import Pattern


def unlabeled_triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def labeled_triangle():
    p = Pattern("tri")
    p.add_node("A", label="A")
    p.add_node("B", label="B")
    p.add_node("C", label="C")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestChoices:
    def test_unselective_pattern_goes_node_driven(self):
        g = preferential_attachment(100, m=2, seed=0)
        assert choose_algorithm(g, unlabeled_triangle(), 2) == "nd-pvot"

    def test_selective_pattern_goes_pattern_driven(self):
        g = labeled_preferential_attachment(100, m=2, seed=0)
        assert choose_algorithm(g, labeled_triangle(), 2) == "pt-opt"

    def test_tiny_focal_set_goes_node_driven(self):
        g = labeled_preferential_attachment(100, m=2, seed=0)
        assert choose_algorithm(g, labeled_triangle(), 2, focal_nodes=[0, 1]) == "nd-pvot"

    def test_choice_is_registered_algorithm(self):
        g = preferential_attachment(50, m=2, seed=1)
        assert choose_algorithm(g, unlabeled_triangle(), 1) in ALGORITHMS

    def test_auto_produces_correct_counts(self):
        g = labeled_preferential_attachment(40, m=2, seed=2)
        auto = census(g, labeled_triangle(), 2, algorithm="auto")
        ref = census(g, labeled_triangle(), 2, algorithm="nd-bas")
        assert auto == ref


class TestEstimator:
    def test_label_constraints_shrink_estimate(self):
        from repro.census.planner import estimate_matches

        g = labeled_preferential_attachment(200, m=2, seed=0)
        assert estimate_matches(g, labeled_triangle()) < estimate_matches(
            g, unlabeled_triangle()
        )

    def test_absent_label_estimates_zero(self):
        from repro.census.planner import estimate_matches
        from repro.matching.pattern import Pattern

        g = preferential_attachment(50, m=2, seed=0)
        p = Pattern("z")
        p.add_node("A", label="Z")
        assert estimate_matches(g, p) == 0.0

    def test_ballpark_on_unlabeled_triangles(self):
        from repro.census.planner import estimate_matches
        from repro.matching import cn_matches

        g = preferential_attachment(150, m=2, seed=3)
        est = estimate_matches(g, unlabeled_triangle())
        actual = len(cn_matches(g, unlabeled_triangle()))
        # Independence estimates on PA graphs land within an order of
        # magnitude — enough for the planner's family decision.
        assert actual / 10 <= est <= actual * 10 + 10

    def test_empty_graph(self):
        from repro.census.planner import estimate_matches
        from repro.graph.graph import Graph

        assert estimate_matches(Graph(), unlabeled_triangle()) == 0.0

    def test_predicates_discount(self):
        from repro.census.planner import estimate_matches
        from repro.matching.pattern import Pattern
        from repro.matching.predicates import Attr, Comparison

        g = preferential_attachment(80, m=2, seed=1)
        plain = Pattern("e")
        plain.add_edge("A", "B")
        constrained = Pattern("e2")
        constrained.add_edge("A", "B")
        constrained.add_predicate(
            Comparison(Attr("A", "score"), ">", Attr("B", "score"))
        )
        assert estimate_matches(g, constrained) < estimate_matches(g, plain)
