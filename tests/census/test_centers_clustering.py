"""Tests for center selection, the center distance index, and K-means
match clustering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.census.base import CensusRequest, prepare_matches
from repro.census.centers import CenterIndex, select_centers
from repro.census.clustering import cluster_matches, kmeans
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.graph.traversal import shortest_path_length
from repro.matching.pattern import Pattern


class TestSelectCenters:
    def test_degree_strategy_picks_hubs(self):
        g = preferential_attachment(200, m=3, seed=1)
        centers = select_centers(g, 5, strategy="degree")
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        assert sorted((g.degree(c) for c in centers), reverse=True) == degrees[:5]

    def test_random_strategy_deterministic(self):
        g = preferential_attachment(100, m=2, seed=1)
        assert select_centers(g, 5, "random", seed=3) == select_centers(g, 5, "random", seed=3)

    def test_zero_centers(self):
        g = preferential_attachment(10, m=1, seed=0)
        assert select_centers(g, 0) == []

    def test_unknown_strategy(self):
        g = preferential_attachment(10, m=1, seed=0)
        with pytest.raises(ValueError):
            select_centers(g, 2, "pagerank")


class TestCenterIndex:
    def test_distances_exact(self):
        g = preferential_attachment(80, m=2, seed=2)
        centers = select_centers(g, 3)
        index = CenterIndex(g, centers)
        for c in centers:
            for n in list(g.nodes())[:20]:
                assert index.distance(c, n) == shortest_path_length(g, c, n)

    def test_bound_is_valid_upper_bound(self):
        g = preferential_attachment(80, m=2, seed=3)
        index = CenterIndex(g, select_centers(g, 4))
        nodes = list(g.nodes())
        for m in nodes[:8]:
            for n in nodes[10:18]:
                bound = index.bound(m, n, cap=99)
                true = shortest_path_length(g, m, n)
                if true is not None and bound < 99:
                    assert bound >= true

    def test_unreachable_returns_none(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        index = CenterIndex(g, [1])
        assert index.distance(1, 2) is None

    def test_feature_vector_shape(self):
        g = preferential_attachment(40, m=2, seed=4)
        index = CenterIndex(g, select_centers(g, 3))
        vec = index.feature_vector([0, 1], missing=99)
        assert len(vec) == 6

    def test_empty_index_falsy(self):
        g = preferential_attachment(10, m=1, seed=0)
        assert not CenterIndex(g, [])
        assert CenterIndex(g, [0])


class TestKMeans:
    def test_separates_obvious_clusters(self):
        vectors = [[0.0], [0.1], [0.2], [10.0], [10.1], [10.2]]
        clusters = kmeans(vectors, 2, seed=1)
        as_sets = sorted((sorted(c) for c in clusters), key=len)
        assert sorted(map(tuple, as_sets)) == [(0, 1, 2), (3, 4, 5)]

    def test_empty_input(self):
        assert kmeans([], 3) == []

    def test_more_clusters_than_points(self):
        clusters = kmeans([[1.0], [2.0]], 10, seed=0)
        assert sorted(i for c in clusters for i in c) == [0, 1]

    @given(st.lists(st.lists(st.floats(0, 10), min_size=2, max_size=2), min_size=1,
                    max_size=30), st.integers(1, 5), st.integers(0, 20))
    def test_partition_property(self, vectors, k, seed):
        clusters = kmeans(vectors, k, seed=seed)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(len(vectors)))


class TestClusterMatches:
    def _units(self, graph):
        p = Pattern("edge")
        p.add_edge("A", "B")
        request = CensusRequest(graph, p, 1)
        return prepare_matches(request)

    def test_none_strategy_isolates(self):
        g = preferential_attachment(30, m=2, seed=5)
        units = self._units(g)
        clusters = cluster_matches(units, None, 4, strategy="none")
        assert all(len(c) == 1 for c in clusters)

    def test_random_strategy_partitions(self):
        g = preferential_attachment(30, m=2, seed=5)
        units = self._units(g)
        index = CenterIndex(g, select_centers(g, 2))
        clusters = cluster_matches(units, index, 4, strategy="random", seed=1)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(len(units)))
        assert len(clusters) <= 4

    def test_kmeans_strategy_partitions(self):
        g = preferential_attachment(40, m=2, seed=6)
        units = self._units(g)
        index = CenterIndex(g, select_centers(g, 3))
        clusters = cluster_matches(units, index, 5, strategy="kmeans", seed=1)
        flat = sorted(i for c in clusters for i in c)
        assert flat == list(range(len(units)))

    def test_kmeans_without_centers_falls_back(self):
        g = preferential_attachment(20, m=2, seed=7)
        units = self._units(g)
        clusters = cluster_matches(units, CenterIndex(g, []), 3, strategy="kmeans")
        assert all(len(c) == 1 for c in clusters)

    def test_unknown_strategy(self):
        g = preferential_attachment(20, m=2, seed=7)
        units = self._units(g)
        with pytest.raises(ValueError):
            cluster_matches(units, None, 3, strategy="dbscan")
