"""Tests for incremental census maintenance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import census
from repro.census.incremental import IncrementalCensus
from repro.errors import CensusError
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def open_triad():
    p = Pattern("open")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C", negated=True)
    return p


def assert_matches_recompute(inc):
    expected = census(inc.graph, inc.pattern, inc.k, subpattern=inc.subpattern,
                      algorithm="nd-bas")
    assert inc.snapshot() == expected


class TestInsertions:
    def test_closing_a_triangle(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        inc = IncrementalCensus(g, triangle(), 1)
        assert inc[1] == 0
        inc.add_edge(1, 3)
        assert inc[1] == 1 and inc[2] == 1 and inc[3] == 1
        assert_matches_recompute(inc)

    def test_far_nodes_untouched(self):
        g = Graph()
        for i in range(9):
            g.add_edge(i, i + 1)  # long path
        inc = IncrementalCensus(g, triangle(), 1)
        before = inc.refreshed_nodes
        inc.add_edge(0, 2)  # triangle at one end
        touched = inc.refreshed_nodes - before
        assert touched < 9  # the far end was not recomputed
        assert_matches_recompute(inc)

    def test_negated_pattern_loses_matches(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        inc = IncrementalCensus(g, open_triad(), 1)
        assert inc[2] == 1  # 1-2-3 is open
        inc.add_edge(1, 3)  # closes it
        assert inc[2] == 0
        assert_matches_recompute(inc)

    def test_new_nodes_via_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        inc = IncrementalCensus(g, triangle(), 2)
        inc.add_edge(3, 4)
        assert inc[3] == 0
        assert_matches_recompute(inc)

    def test_add_isolated_node(self):
        g = Graph()
        g.add_edge(1, 2)
        inc = IncrementalCensus(g, triangle(), 1)
        inc.add_node(99)
        assert inc[99] == 0
        assert_matches_recompute(inc)

    def test_attribute_merge_refreshes(self):
        g = Graph()
        g.add_node(1, label="X")
        g.add_node(2, label="X")
        g.add_node(3, label="Y")
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("same")
        p.add_edge("A", "B")
        from repro.matching.predicates import Attr, Comparison

        p.add_predicate(Comparison(Attr("A", "label"), "=", Attr("B", "label")))
        inc = IncrementalCensus(g, p, 1)
        assert inc[3] == 0  # 3's 1-hop holds only the mixed-label 2-3 edge
        inc.add_node(3, label="X")  # relabel: 2-3 becomes a same-label edge
        assert inc[3] == 1
        assert inc[1] == 1  # 1's 1-hop sees the 1-2 same-label edge
        assert_matches_recompute(inc)


class TestDeletions:
    def test_breaking_a_triangle(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        inc = IncrementalCensus(g, triangle(), 1)
        assert inc[1] == 1
        inc.remove_edge(1, 3)
        assert inc[1] == 0
        assert_matches_recompute(inc)

    def test_negated_pattern_gains_matches(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        inc = IncrementalCensus(g, open_triad(), 1)
        assert inc[2] == 0
        inc.remove_edge(1, 3)
        assert inc[2] == 1
        assert_matches_recompute(inc)


class TestSubpattern:
    def test_subpattern_counts_maintained(self):
        g = Graph()
        g.add_edge(1, 2)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("center", ["B"])
        inc = IncrementalCensus(g, p, 0, subpattern="center")
        assert inc[1] == 0
        inc.add_edge(2, 3)
        # 2 is now the center of path 1-2-3.
        assert inc[2] == 1
        assert_matches_recompute(inc)

    def test_distant_subpattern_effect_caught(self):
        # Path pattern with subpattern on one end: an edge insertion two
        # hops away from a focal node can still create a count.
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("p3")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("end", ["A"])
        inc = IncrementalCensus(g, p, 0, subpattern="end")
        before = inc[1]
        inc.add_edge(3, 4)  # creates path 2-3-4 with A=2 ... and others
        assert_matches_recompute(inc)
        assert inc[1] >= before


class TestRandomizedSequences:
    @settings(max_examples=15)
    @given(st.integers(6, 16), st.integers(0, 300), st.integers(0, 300))
    def test_insertion_sequence_matches_recompute(self, n, seed, op_seed):
        g = erdos_renyi(n, n, seed=seed)
        inc = IncrementalCensus(g, triangle(), 1)
        rng = random.Random(op_seed)
        nodes = list(range(n))
        for _ in range(6):
            u, v = rng.sample(nodes, 2)
            if not g.has_edge(u, v):
                inc.add_edge(u, v)
        assert_matches_recompute(inc)

    @settings(max_examples=10)
    @given(st.integers(8, 14), st.integers(0, 200))
    def test_mixed_sequence(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        inc = IncrementalCensus(g, open_triad(), 1)
        rng = random.Random(seed + 1)
        for step in range(5):
            edges = list(g.edges())
            if step % 2 == 0 and edges:
                u, v = rng.choice(edges)
                inc.remove_edge(u, v)
            else:
                u, v = rng.sample(range(n), 2)
                if not g.has_edge(u, v):
                    inc.add_edge(u, v)
        assert_matches_recompute(inc)


class TestReadAPI:
    def test_unknown_node_raises(self):
        g = Graph()
        g.add_edge(1, 2)
        inc = IncrementalCensus(g, triangle(), 1, focal_nodes=[1])
        with pytest.raises(CensusError):
            inc.count(2)

    def test_len_and_snapshot_isolation(self):
        g = Graph()
        g.add_edge(1, 2)
        inc = IncrementalCensus(g, triangle(), 1)
        snap = inc.snapshot()
        snap[1] = 999
        assert inc[1] != 999
        assert len(inc) == 2
