"""Tests for pattern match indexes, ND-PVOT internals, and ND-DIFF
chain behavior."""

import pytest

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.census.nd_bas import nd_bas_census
from repro.census.nd_diff import nd_diff_census
from repro.census.nd_pvot import nd_pvot_census
from repro.census.pmi import PatternMatchIndex
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def path3():
    p = Pattern("p3")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("C", "D")
    return p


class TestPatternMatchIndex:
    def test_pivot_mode_indexes_once(self):
        g = preferential_attachment(40, m=2, seed=1)
        request = CensusRequest(g, triangle(), 1)
        units = prepare_matches(request)
        pmi = PatternMatchIndex(units, pivot_var="A")
        total = sum(len(pmi.matches_at(n)) for n in pmi.anchored_nodes())
        assert total == len(units)

    def test_all_nodes_mode_indexes_every_node(self):
        g = preferential_attachment(40, m=2, seed=1)
        request = CensusRequest(g, triangle(), 1)
        units = prepare_matches(request)
        pmi = PatternMatchIndex(units)
        total = sum(len(pmi.matches_at(n)) for n in pmi.anchored_nodes())
        assert total == 3 * len(units)

    def test_matches_at_unknown_node_empty(self):
        pmi = PatternMatchIndex([])
        assert pmi.matches_at("nope") == ()
        assert len(pmi) == 0


class TestContainmentDistances:
    def test_pivot_minimizes_eccentricity(self):
        request = CensusRequest(Graph(), _request_graph_pattern(), 1)

    def test_path_pivot_is_middle(self):
        g = _line_graph(6)
        request = CensusRequest(g, path3(), 1)
        pivot, max_v, dists = containment_distances(request)
        assert pivot == "B"  # eccentricity 2, tie broken by name
        assert max_v == 2
        assert dists == {"A": 1, "B": 0, "C": 1, "D": 2}

    def test_subpattern_restricts_pivot(self):
        p = path3()
        p.add_subpattern("ends", ["A", "D"])
        g = _line_graph(6)
        request = CensusRequest(g, p, 1, subpattern="ends")
        pivot, max_v, dists = containment_distances(request)
        assert pivot == "A"  # restricted to {A, D}; both ecc 3, name tiebreak
        assert max_v == 3
        assert set(dists) == {"A", "D"}


def _line_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def _request_graph_pattern():
    p = Pattern("n")
    p.add_node("A")
    return p


class TestNDPvot:
    def test_custom_pivot_same_result(self):
        g = preferential_attachment(50, m=2, seed=3)
        p = path3()
        baseline = nd_bas_census(g, p, 2)
        for pivot in "ABCD":
            assert nd_pvot_census(g, p, 2, pivot_var=pivot) == baseline

    def test_invalid_pivot_rejected(self):
        g = preferential_attachment(20, m=2, seed=3)
        with pytest.raises(ValueError):
            nd_pvot_census(g, triangle(), 1, pivot_var="Z")

    def test_pivot_outside_subpattern_rejected(self):
        g = preferential_attachment(20, m=2, seed=3)
        p = path3()
        p.add_subpattern("mid", ["B"])
        with pytest.raises(ValueError):
            nd_pvot_census(g, p, 1, subpattern="mid", pivot_var="A")

    def test_stats_track_bulk_vs_checked(self):
        g = preferential_attachment(60, m=3, seed=4)
        stats = {}
        nd_pvot_census(g, triangle(), 3, collect_stats=stats)
        assert stats["pivot"] in ("A", "B", "C")
        assert stats["max_v"] == 1
        # With k=3 >> pattern radius, most additions are bulk.
        assert stats["bulk_added"] > 0

    def test_bulk_shortcut_consistent_with_explicit(self):
        # k == max_v forces explicit checks everywhere near the rim.
        g = preferential_attachment(40, m=2, seed=5)
        p = path3()
        assert nd_pvot_census(g, p, 2) == nd_bas_census(g, p, 2)


class TestNDDiff:
    def test_chain_restart_on_isolated_focal_nodes(self):
        # Focal nodes that are pairwise non-adjacent force restarts.
        g = _line_graph(10)
        p = Pattern("edge")
        p.add_edge("A", "B")
        focal = [0, 4, 9]
        assert nd_diff_census(g, p, 1, focal_nodes=focal) == nd_bas_census(
            g, p, 1, focal_nodes=focal
        )

    def test_neighbor_chain_path(self):
        g = _line_graph(12)
        p = Pattern("edge")
        p.add_edge("A", "B")
        assert nd_diff_census(g, p, 2) == nd_bas_census(g, p, 2)

    def test_empty_match_set(self):
        g = _line_graph(5)
        counts = nd_diff_census(g, triangle(), 2)
        assert all(c == 0 for c in counts.values())
