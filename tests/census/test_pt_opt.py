"""Tests for PT-OPT options, orderings, centers, and clustering toggles.

The relaxation is order-independent, so *every* option combination must
return the ND-BAS counts; the options only change work done.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.census.nd_bas import nd_bas_census
from repro.census.pt_bas import pt_bas_census
from repro.census.pt_opt import PTOptions, pt_opt_census, pt_rnd_census
from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestOptionCombinations:
    @pytest.mark.parametrize("order", ["best", "random", "fifo"])
    @pytest.mark.parametrize("shortcuts", [True, False])
    def test_orders_and_shortcuts(self, order, shortcuts):
        g = preferential_attachment(40, m=2, seed=1)
        baseline = nd_bas_census(g, triangle(), 2)
        opts = PTOptions(order=order, distance_shortcuts=shortcuts)
        assert pt_opt_census(g, triangle(), 2, options=opts) == baseline

    @pytest.mark.parametrize("num_centers", [0, 1, 4, 12])
    def test_center_counts(self, num_centers):
        g = preferential_attachment(50, m=2, seed=2)
        baseline = nd_bas_census(g, triangle(), 2)
        assert pt_opt_census(g, triangle(), 2, num_centers=num_centers) == baseline

    @pytest.mark.parametrize("strategy", ["degree", "random"])
    def test_center_strategies(self, strategy):
        g = preferential_attachment(50, m=2, seed=3)
        baseline = nd_bas_census(g, triangle(), 2)
        assert pt_opt_census(g, triangle(), 2, center_strategy=strategy) == baseline

    @pytest.mark.parametrize("clustering", ["kmeans", "random", "none"])
    def test_clustering_strategies(self, clustering):
        g = preferential_attachment(50, m=2, seed=4)
        baseline = nd_bas_census(g, triangle(), 2)
        assert pt_opt_census(g, triangle(), 2, clustering=clustering) == baseline

    @pytest.mark.parametrize("num_clusters", [1, 3, 1000])
    def test_cluster_counts(self, num_clusters):
        g = preferential_attachment(50, m=2, seed=5)
        baseline = nd_bas_census(g, triangle(), 2)
        assert pt_opt_census(g, triangle(), 2, num_clusters=num_clusters) == baseline

    def test_pt_rnd_wrapper(self):
        g = preferential_attachment(40, m=2, seed=6)
        baseline = nd_bas_census(g, triangle(), 2)
        assert pt_rnd_census(g, triangle(), 2) == baseline

    def test_bad_order_rejected(self):
        g = preferential_attachment(20, m=2, seed=6)
        with pytest.raises(ValueError):
            pt_opt_census(g, triangle(), 1, order="dfs")

    def test_overrides_on_options_object(self):
        g = preferential_attachment(30, m=2, seed=7)
        opts = PTOptions(num_centers=2)
        baseline = nd_bas_census(g, triangle(), 1)
        assert pt_opt_census(g, triangle(), 1, options=opts, order="fifo") == baseline


class TestStats:
    def test_stats_populated(self):
        g = preferential_attachment(60, m=2, seed=8)
        stats = {}
        opts = PTOptions(stats=stats)
        pt_opt_census(g, triangle(), 2, options=opts)
        assert stats["pops"] > 0
        assert stats["clusters"] >= 1
        assert stats["touched"] > 0

    def test_best_first_pops_at_most_random(self):
        # The paper's Figure 2 argument: best-first avoids reinsertions.
        g = labeled_preferential_attachment(300, m=3, seed=9)
        p = Pattern("tri")
        p.add_node("A", label="A")
        p.add_node("B", label="B")
        p.add_node("C", label="C")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        pops = {}
        for order in ("best", "random"):
            stats = {}
            opts = PTOptions(order=order, clustering="none", num_centers=0, stats=stats, seed=3)
            pt_opt_census(g, p, 2, options=opts)
            pops[order] = stats["pops"]
        assert pops["best"] <= pops["random"]


class TestAgainstPTBas:
    @given(st.integers(10, 35), st.integers(1, 3), st.integers(0, 120))
    def test_pt_opt_equals_pt_bas(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        assert pt_opt_census(g, triangle(), k) == pt_bas_census(g, triangle(), k)

    def test_shared_center_index_reuse(self):
        from repro.census.centers import CenterIndex, select_centers

        g = preferential_attachment(40, m=2, seed=10)
        index = CenterIndex(g, select_centers(g, 4))
        baseline = nd_bas_census(g, triangle(), 2)
        opts = PTOptions(center_index=index)
        assert pt_opt_census(g, triangle(), 2, options=opts) == baseline
