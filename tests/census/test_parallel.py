"""Parallel census executor: identical counts, deterministic merges.

The executor's contract is that chunking focal nodes over workers is
invisible in the results: every algorithm, backend, executor kind, and
worker count returns exactly the serial counts, and the merged
observability counters equal the serial run's.  Thread and serial
executors cover the matrix cheaply; one process-pool test proves the
pickled-snapshot path end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import ALGORITHMS, census
from repro.census.parallel import chunk_focal_nodes, default_workers, parallel_census
from repro.errors import CensusError
from repro.graph.csr import freeze
from repro.graph.generators import (
    labeled_preferential_attachment,
    preferential_attachment,
)
from repro.matching.pattern import Pattern
from repro.obs import ObsContext


def triangle(labels=(None, None, None)):
    p = Pattern("tri")
    for var, label in zip("ABC", labels):
        p.add_node(var, label=label)
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestChunking:
    def test_contiguous_cover(self):
        chunks = chunk_focal_nodes(range(10), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_more_chunks_than_items(self):
        chunks = chunk_focal_nodes([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert chunk_focal_nodes([], 4) == []

    def test_invalid_count(self):
        with pytest.raises(CensusError):
            chunk_focal_nodes([1], 0)

    @given(st.integers(0, 50), st.integers(1, 9))
    def test_partition_property(self, n, chunks):
        parts = chunk_focal_nodes(range(n), chunks)
        assert [x for part in parts for x in part] == list(range(n))
        assert all(parts)
        if parts:
            sizes = [len(p) for p in parts]
            assert max(sizes) - min(sizes) <= 1

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestIdenticalCounts:
    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_thread_matches_serial(self, algorithm):
        g = labeled_preferential_attachment(40, m=2, seed=3)
        pattern = triangle(labels=("A", "B", "C"))
        want = ALGORITHMS[algorithm](g, pattern, 2)
        got = parallel_census(
            g, pattern, 2, algorithm=algorithm, workers=4, executor="thread"
        )
        assert got == want

    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_worker_counts_agree_on_csr(self, workers):
        csr = freeze(preferential_attachment(50, m=3, seed=1))
        pattern = triangle()
        want = ALGORITHMS["nd-pvot"](csr, pattern, 2)
        got = parallel_census(
            csr, pattern, 2, algorithm="nd-pvot", workers=workers, executor="thread"
        )
        assert got == want

    @given(st.integers(8, 30), st.integers(0, 2), st.integers(0, 50),
           st.integers(2, 5))
    @settings(max_examples=15)
    def test_random_graphs_any_chunking(self, n, k, seed, chunks):
        g = labeled_preferential_attachment(n, m=2, seed=seed)
        pattern = triangle(labels=("A", "B", "C"))
        want = census(g, pattern, k, algorithm="nd-pvot")
        got = parallel_census(
            g, pattern, k, algorithm="nd-pvot", workers=2, executor="thread",
            chunks=chunks,
        )
        assert got == want

    def test_focal_subset_and_subpattern(self):
        g = preferential_attachment(30, m=2, seed=7)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("center", ["B"])
        focal = [n for n in g.nodes() if n % 2 == 0]
        want = census(g, p, 1, focal_nodes=focal, subpattern="center",
                      algorithm="nd-pvot")
        got = parallel_census(
            g, p, 1, focal_nodes=focal, subpattern="center",
            algorithm="nd-pvot", workers=3, executor="thread",
        )
        assert got == want

    def test_process_pool_with_pickled_snapshot(self):
        csr = freeze(labeled_preferential_attachment(40, m=2, seed=5))
        pattern = triangle(labels=("A", "B", "C"))
        want = ALGORITHMS["nd-pvot"](csr, pattern, 2)
        got = parallel_census(
            csr, pattern, 2, algorithm="nd-pvot", workers=2, executor="process"
        )
        assert got == want

    def test_adopted_matches(self):
        from repro.matching import find_matches

        g = preferential_attachment(30, m=2, seed=2)
        pattern = triangle()
        matches = find_matches(g, pattern, method="cn", distinct=True)
        want = census(g, pattern, 2, algorithm="nd-pvot")
        got = parallel_census(
            g, pattern, 2, algorithm="nd-pvot", workers=2, executor="thread",
            matches=matches,
        )
        assert got == want


class TestObservability:
    def _counters(self, fn):
        with ObsContext() as obs:
            fn()
        return obs.registry.snapshot()["counters"]

    def test_merged_counters_match_serial(self):
        g = preferential_attachment(40, m=2, seed=9)
        pattern = triangle()
        serial = self._counters(lambda: ALGORITHMS["nd-pvot"](g, pattern, 2))
        parallel = self._counters(lambda: parallel_census(
            g, pattern, 2, algorithm="nd-pvot", workers=4, executor="thread"
        ))
        # Census-phase counters merge exactly; matching runs once in the
        # parent either way.
        for name, value in serial.items():
            if name.startswith("census.nd_pvot."):
                assert parallel.get(name) == value, name
        assert parallel["census.parallel.chunks"] == 4
        assert parallel["census.parallel.workers"] == 4

    def test_chunk_timings_recorded(self):
        g = preferential_attachment(30, m=2, seed=9)
        with ObsContext() as obs:
            parallel_census(g, triangle(), 2, algorithm="nd-pvot", workers=3,
                            executor="serial")
        hist = obs.registry.histograms()["census.parallel.chunk_seconds"]
        assert hist.count == 3

    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_chunk_spans_stitched_into_parent_trace(self, executor):
        # Every executor — including process pools, whose workers cannot
        # share Span objects — ships its chunk span subtrees back and
        # the parent reattaches them under census.parallel.
        g = preferential_attachment(40, m=2, seed=9)
        with ObsContext() as obs:
            parallel_census(g, triangle(), 2, algorithm="nd-pvot", workers=2,
                            executor=executor)
        root = obs.root("census.parallel")
        chunks = [c for c in root.children if c.name == "census.parallel.chunk"]
        assert len(chunks) == 2
        for index, chunk in enumerate(chunks):
            assert chunk.attrs["chunk"] == index
            assert chunk.attrs["focal_nodes"] > 0
            assert chunk.duration > 0
            # The algorithm's own span survived the round-trip.
            assert chunk.find("census.nd_pvot") is not None

    def test_serial_chunk_spans_do_not_leak_into_parent(self):
        # Same-thread chunks used to attach census.nd_pvot spans
        # directly under census.parallel via the ambient current-span;
        # with detached chunk contexts they appear only inside their
        # stitched census.parallel.chunk wrapper.
        g = preferential_attachment(30, m=2, seed=9)
        with ObsContext() as obs:
            parallel_census(g, triangle(), 2, algorithm="nd-pvot", workers=2,
                            executor="serial")
        root = obs.root("census.parallel")
        # The shared matching pass runs in the parent (match.cn); the
        # census spans themselves must only appear inside chunk wrappers.
        assert "census.nd_pvot" not in {c.name for c in root.children}
        assert [c.name for c in root.children].count("census.parallel.chunk") == 2

    @pytest.mark.parametrize("executor", ("serial", "thread"))
    def test_collect_stats_merged_across_chunks(self, executor):
        # Regression: the caller's collect_stats dict used to come back
        # empty (process mode) or holding only the last chunk's numbers
        # (thread/serial); chunks now fill private dicts that merge.
        g = preferential_attachment(40, m=2, seed=9)
        pattern = triangle()
        serial_stats = {}
        want = ALGORITHMS["nd-pvot"](g, pattern, 2, collect_stats=serial_stats)
        stats = {}
        got = parallel_census(
            g, pattern, 2, algorithm="nd-pvot", workers=4, executor=executor,
            collect_stats=stats,
        )
        assert got == want
        for key in ("bulk_added", "explicitly_checked", "bfs_visited"):
            assert stats[key] == serial_stats[key], key
        assert stats["pivot"] == serial_stats["pivot"]
        assert stats["max_v"] == serial_stats["max_v"]

    def test_collect_stats_through_process_pool(self):
        csr = freeze(preferential_attachment(30, m=2, seed=6))
        pattern = triangle()
        stats = {}
        parallel_census(
            csr, pattern, 2, algorithm="nd-pvot", workers=2,
            executor="process", collect_stats=stats,
        )
        assert stats["bfs_visited"] > 0

    def test_merge_is_deterministic(self):
        g = labeled_preferential_attachment(35, m=2, seed=4)
        pattern = triangle(labels=("A", "B", "C"))
        runs = [
            self._counters(lambda: parallel_census(
                g, pattern, 2, algorithm="nd-pvot", workers=4, executor="thread"
            ))
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestEntryPoints:
    def test_census_workers_dispatch(self):
        g = preferential_attachment(30, m=2, seed=0)
        pattern = triangle()
        want = census(g, pattern, 2, algorithm="nd-pvot")
        got = census(g, pattern, 2, algorithm="nd-pvot", workers=2,
                     executor="thread")
        assert got == want

    def test_workers_none_uses_cpu_count(self):
        g = preferential_attachment(20, m=2, seed=0)
        pattern = triangle()
        want = census(g, pattern, 1, algorithm="nd-pvot")
        got = census(g, pattern, 1, algorithm="nd-pvot", workers=None,
                     executor="thread")
        assert got == want

    def test_unknown_algorithm(self):
        g = preferential_attachment(10, m=2, seed=0)
        with pytest.raises(CensusError):
            parallel_census(g, triangle(), 1, algorithm="nope")

    def test_unknown_executor(self):
        g = preferential_attachment(10, m=2, seed=0)
        with pytest.raises(CensusError):
            parallel_census(g, triangle(), 1, workers=2, executor="carrier-pigeon")

    def test_empty_focal_set(self):
        g = preferential_attachment(10, m=2, seed=0)
        assert parallel_census(g, triangle(), 1, focal_nodes=[], workers=4) == {}

    def test_auto_planner_biases_node_driven(self):
        from repro.census.planner import choose_algorithm

        g = labeled_preferential_attachment(60, m=2, seed=1)
        pattern = triangle(labels=("A", "B", "C"))
        serial_choice = choose_algorithm(g, pattern, 2)
        parallel_choice = choose_algorithm(g, pattern, 2, workers=4)
        assert parallel_choice == "nd-pvot"
        # The labeled triangle is selective, so the serial planner goes
        # pattern-driven — exactly the case the workers bias flips.
        assert serial_choice == "pt-opt"
