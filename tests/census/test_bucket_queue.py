"""Tests for the array-based priority queue and its ablation variants."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.census.bucket_queue import BucketQueue, FIFOQueue, RandomQueue


class TestBucketQueue:
    def test_pops_in_score_order(self):
        q = BucketQueue(10)
        q.push("a", 5)
        q.push("b", 2)
        q.push("c", 8)
        assert q.pop() == ("b", 2)
        assert q.pop() == ("a", 5)
        assert q.pop() == ("c", 8)

    def test_decrease_key_wins(self):
        q = BucketQueue(10)
        q.push("a", 9)
        q.push("a", 3)
        assert q.pop() == ("a", 3)
        assert not q

    def test_increase_is_ignored(self):
        q = BucketQueue(10)
        q.push("a", 3)
        q.push("a", 9)
        assert q.pop() == ("a", 3)
        assert not q

    def test_reinsert_after_pop(self):
        q = BucketQueue(10)
        q.push("a", 5)
        q.pop()
        q.push("a", 2)
        assert q.pop() == ("a", 2)

    def test_cursor_moves_backwards_on_lower_push(self):
        q = BucketQueue(10)
        q.push("a", 7)
        assert q.pop() == ("a", 7)
        q.push("b", 1)  # lower than the cursor position
        assert q.pop() == ("b", 1)

    def test_empty_pop_raises(self):
        q = BucketQueue(5)
        with pytest.raises(IndexError):
            q.pop()

    def test_len_counts_live_entries(self):
        q = BucketQueue(5)
        q.push("a", 3)
        q.push("a", 1)  # stale entry at 3
        assert len(q) == 1

    def test_live_size_exact_through_repush_and_stale_pops(self):
        # Regression for the removed ``_size`` counter, which drifted on
        # decrease-key re-pushes (counted twice) and stale pops (counted
        # as removals): len()/bool must track *live* entries exactly at
        # every step of a re-push + stale-pop sequence.
        q = BucketQueue(10)
        q.push("a", 8)
        q.push("b", 6)
        assert len(q) == 2
        q.push("a", 2)  # decrease-key: stale entry left at 8
        q.push("b", 1)  # decrease-key: stale entry left at 6
        assert len(q) == 2 and bool(q)
        assert q.pop() == ("b", 1)
        assert len(q) == 1
        assert q.pop() == ("a", 2)
        # Only stale entries remain in the buckets now.
        assert len(q) == 0 and not q
        # Re-inserting after the live pop must make it live again even
        # though its stale twin is still buried at score 8.
        q.push("a", 9)
        assert len(q) == 1
        assert q.pop() == ("a", 9)
        assert len(q) == 0 and not q
        with pytest.raises(IndexError):
            q.pop()

    def test_equal_score_repush_is_noop(self):
        q = BucketQueue(5)
        q.push("a", 3)
        q.push("a", 3)  # equal score: guard ignores it, no stale entry
        assert len(q) == 1
        assert q.pop() == ("a", 3)
        assert not q

    def test_zero_score_range(self):
        q = BucketQueue(0)
        q.push("a", 0)
        q.push("b", 0)
        assert {q.pop()[0], q.pop()[0]} == {"a", "b"}
        assert not q

    def test_boundary_score(self):
        q = BucketQueue(7)
        q.push("edge", 7)
        assert q.pop() == ("edge", 7)

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 30)), max_size=60))
    def test_matches_reference_sort(self, pushes):
        q = BucketQueue(30)
        best = {}
        for item, score in pushes:
            q.push(item, score)
            if item not in best or score < best[item]:
                best[item] = score
        popped = []
        while q:
            popped.append(q.pop())
        assert sorted(popped, key=lambda t: (t[1], t[0])) == sorted(
            best.items(), key=lambda t: (t[1], t[0])
        )
        scores = [s for _i, s in popped]
        assert scores == sorted(scores)


class TestFIFOQueue:
    def test_fifo_order(self):
        q = FIFOQueue()
        q.push("a", 9)
        q.push("b", 1)
        assert q.pop()[0] == "a"
        assert q.pop()[0] == "b"

    def test_no_duplicate_live_entries(self):
        q = FIFOQueue()
        q.push("a", 5)
        q.push("a", 3)
        assert q.pop() == ("a", 3)
        assert not q


class TestRandomQueue:
    def test_pops_everything_once(self):
        q = RandomQueue(rng=random.Random(1))
        for i in range(20):
            q.push(i, i)
        popped = set()
        while q:
            item, _score = q.pop()
            assert item not in popped
            popped.add(item)
        assert popped == set(range(20))

    def test_deterministic_given_rng(self):
        def run(seed):
            q = RandomQueue(rng=random.Random(seed))
            for i in range(10):
                q.push(i, 0)
            return [q.pop()[0] for _ in range(10)]

        assert run(7) == run(7)
