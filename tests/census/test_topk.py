"""Tests for top-k census evaluation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import census
from repro.census.topk import census_topk
from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def assert_valid_topk(got, graph, pattern, k, K, **kwargs):
    """A top-k result is valid when (1) every reported count is the
    node's exact census count and (2) the multiset of reported counts
    equals the K largest counts of a full census (tied nodes at the
    boundary are interchangeable)."""
    counts = census(graph, pattern, k, algorithm="nd-bas", **kwargs)
    focal = kwargs.get("focal_nodes")
    expected_len = min(K, len(counts))
    assert len(got) == expected_len
    for node, count in got:
        assert counts[node] == count
        if focal is not None:
            assert node in set(focal)
    want_counts = sorted(counts.values(), reverse=True)[:K]
    assert sorted((c for _n, c in got), reverse=True) == want_counts
    assert [c for _n, c in got] == sorted((c for _n, c in got), reverse=True)


class TestExactness:
    @settings(max_examples=25)
    @given(st.integers(10, 40), st.integers(1, 3), st.integers(1, 8), st.integers(0, 150))
    def test_matches_full_census(self, n, k, K, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        got = census_topk(g, triangle(), k, K)
        assert_valid_topk(got, g, triangle(), k, K)

    def test_labeled_pattern(self):
        g = labeled_preferential_attachment(60, m=3, seed=4)
        p = Pattern("tri")
        p.add_node("A", label="A")
        p.add_node("B", label="B")
        p.add_node("C", label="C")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        assert_valid_topk(census_topk(g, p, 2, 5), g, p, 2, 5)

    def test_with_subpattern(self):
        g = preferential_attachment(40, m=2, seed=7)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("mid", ["B"])
        got = census_topk(g, p, 1, 4, subpattern="mid")
        assert_valid_topk(got, g, p, 1, 4, subpattern="mid")

    def test_focal_subset(self):
        g = preferential_attachment(50, m=2, seed=9)
        focal = [n for n in range(50) if n % 2 == 0]
        got = census_topk(g, triangle(), 2, 3, focal_nodes=focal)
        assert_valid_topk(got, g, triangle(), 2, 3, focal_nodes=focal)


class TestEdgeCases:
    def test_k_zero_results(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        assert census_topk(g, triangle(), 1, 0) == []

    def test_no_matches_returns_zeros(self):
        g = Graph()
        for i in range(5):
            g.add_node(i)
        top = census_topk(g, triangle(), 2, 3)
        assert len(top) == 3
        assert all(c == 0 for _n, c in top)

    def test_K_exceeds_node_count(self):
        g = preferential_attachment(10, m=2, seed=1)
        top = census_topk(g, triangle(), 1, 100)
        assert len(top) == 10


class TestEarlyTermination:
    def test_saves_exact_evaluations(self):
        # Skewed graph: triangles concentrate at hubs, so the threshold
        # fires long before every node is evaluated.
        g = preferential_attachment(400, m=3, seed=3)
        stats = {}
        top = census_topk(g, triangle(), 2, 5, collect_stats=stats)
        assert stats["exact_evaluations"] < g.num_nodes
        assert_valid_topk(top, g, triangle(), 2, 5)

    def test_stats_shape(self):
        g = preferential_attachment(30, m=2, seed=2)
        stats = {}
        census_topk(g, triangle(), 1, 2, collect_stats=stats)
        assert set(stats) == {"exact_evaluations", "candidates_total"}
