"""The central correctness property: all six census algorithms agree.

ND-BAS (extract S(n,k), match inside) is the semantics-defining
baseline; every other algorithm must return identical counts on every
graph, pattern, radius, focal set, and subpattern configuration.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import ALGORITHMS, census
from repro.graph.generators import (
    erdos_renyi,
    labeled_preferential_attachment,
    preferential_attachment,
)
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern

OTHERS = [name for name in ALGORITHMS if name != "nd-bas"]


def triangle(labels=(None, None, None)):
    p = Pattern("tri")
    for var, label in zip("ABC", labels):
        p.add_node(var, label=label)
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def edge_pattern():
    p = Pattern("edge")
    p.add_edge("A", "B")
    return p


def assert_agreement(graph, pattern, k, focal_nodes=None, subpattern=None):
    reference = census(graph, pattern, k, focal_nodes=focal_nodes,
                       subpattern=subpattern, algorithm="nd-bas")
    for name in OTHERS:
        result = census(graph, pattern, k, focal_nodes=focal_nodes,
                        subpattern=subpattern, algorithm=name)
        assert result == reference, f"{name} disagrees with nd-bas"
    return reference


class TestSmallGraphs:
    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_two_triangles(self, algorithm, triangle_graph, triangle_pattern):
        counts = census(triangle_graph, triangle_pattern, 1, algorithm=algorithm)
        # Node 3 belongs to both triangles; its 1-hop net holds both.
        assert counts[3] == 2
        assert counts[1] == 1
        assert counts[5] == 1

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_k_zero_single_node_pattern(self, algorithm, triangle_graph):
        p = Pattern("n")
        p.add_node("A")
        counts = census(triangle_graph, p, 0, algorithm=algorithm)
        assert all(c == 1 for c in counts.values())

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_k_zero_multi_node_pattern_counts_nothing(self, algorithm, triangle_graph,
                                                      triangle_pattern):
        counts = census(triangle_graph, triangle_pattern, 0, algorithm=algorithm)
        assert all(c == 0 for c in counts.values())

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_focal_subset_only(self, algorithm, triangle_graph, triangle_pattern):
        counts = census(triangle_graph, triangle_pattern, 2,
                        focal_nodes=[1, 5], algorithm=algorithm)
        assert set(counts) == {1, 5}

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_empty_graph_pattern_absent(self, algorithm):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        counts = census(g, triangle(), 2, algorithm=algorithm)
        assert all(c == 0 for c in counts.values())

    def test_unknown_algorithm_rejected(self, triangle_graph, triangle_pattern):
        with pytest.raises(ValueError):
            census(triangle_graph, triangle_pattern, 1, algorithm="nope")


class TestAgreementProperties:
    @given(st.integers(8, 40), st.integers(0, 3), st.integers(0, 200))
    def test_unlabeled_triangle(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        assert_agreement(g, triangle(), k)

    @given(st.integers(8, 40), st.integers(1, 2), st.integers(0, 200))
    def test_labeled_triangle(self, n, k, seed):
        g = labeled_preferential_attachment(n, m=2, seed=seed)
        assert_agreement(g, triangle(labels=("A", "B", "C")), k)

    @given(st.integers(8, 30), st.integers(0, 2), st.integers(0, 200))
    def test_edge_pattern_on_er(self, n, k, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        assert_agreement(g, edge_pattern(), k)

    @given(st.integers(8, 30), st.integers(0, 150))
    def test_focal_subset(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        focal = [i for i in range(n) if i % 3 == 0]
        assert_agreement(g, triangle(), 2, focal_nodes=focal)

    @given(st.integers(8, 28), st.integers(0, 150))
    def test_path_with_subpattern_center(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("center", ["B"])
        assert_agreement(g, p, 1, subpattern="center")

    @given(st.integers(8, 24), st.integers(0, 150))
    def test_directed_triad_subpattern_k0(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1)), seed=seed, directed=True)
        p = Pattern("triad")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        p.add_subpattern("mid", ["B"])
        assert_agreement(g, p, 0, subpattern="mid")

    @given(st.integers(10, 30), st.integers(0, 100))
    def test_star_pattern(self, n, seed):
        g = preferential_attachment(n, m=3, seed=seed)
        p = Pattern("star")
        p.add_edge("A", "B")
        p.add_edge("A", "C")
        p.add_edge("A", "D")
        assert_agreement(g, p, 1)

    @settings(max_examples=15)
    @given(st.integers(10, 22), st.integers(2, 3), st.integers(0, 80))
    def test_square_large_k(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        p = Pattern("sqr")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("C", "D")
        p.add_edge("D", "A")
        assert_agreement(g, p, k)


class TestSubpatternSemantics:
    def test_match_may_extend_beyond_neighborhood(self):
        # Path 1-2-3; count paths whose *center* is in S(n, 0).
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("center", ["B"])
        counts = assert_agreement(g, p, 0, subpattern="center")
        assert counts == {1: 0, 2: 1, 3: 0}

    def test_automorphic_placements_counted_separately(self):
        # Symmetric edge pattern with subpattern {A}: for each edge both
        # endpoints get one count in their 0-hop neighborhood.
        g = Graph()
        g.add_edge(1, 2)
        p = Pattern("edge")
        p.add_edge("A", "B")
        p.add_subpattern("end", ["A"])
        counts = assert_agreement(g, p, 0, subpattern="end")
        assert counts == {1: 1, 2: 1}

    def test_multi_node_subpattern(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        g.add_edge(3, 4)
        p = Pattern("tri")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        p.add_subpattern("pair", ["A", "B"])
        assert_agreement(g, p, 1, subpattern="pair")


class TestValidation:
    def test_negative_k_rejected(self, triangle_graph, triangle_pattern):
        from repro.errors import CensusError

        with pytest.raises(CensusError):
            census(triangle_graph, triangle_pattern, -1)

    def test_unknown_subpattern_rejected(self, triangle_graph, triangle_pattern):
        from repro.errors import CensusError

        with pytest.raises(CensusError):
            census(triangle_graph, triangle_pattern, 1, subpattern="nope")

    def test_unknown_focal_node_rejected(self, triangle_graph, triangle_pattern):
        from repro.errors import CensusError

        with pytest.raises(CensusError):
            census(triangle_graph, triangle_pattern, 1, focal_nodes=[999])
