"""Tests for sampling-based approximate census."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import census
from repro.census.approx import approximate_census, sample_size_for_error
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestExactLimits:
    @settings(max_examples=20)
    @given(st.integers(10, 35), st.integers(1, 2), st.integers(0, 100))
    def test_full_sample_is_exact(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        exact = census(g, triangle(), k, algorithm="nd-bas")
        approx = approximate_census(g, triangle(), k, sample_size=10 ** 6)
        assert {n_: int(v) for n_, v in approx.items()} == exact

    def test_no_matches(self):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        approx = approximate_census(g, triangle(), 2, sample_size=10)
        assert all(v == 0.0 for v in approx.values())

    def test_zero_sample_size(self):
        g = preferential_attachment(20, m=2, seed=0)
        approx = approximate_census(g, triangle(), 1, sample_size=0)
        assert all(v == 0.0 for v in approx.values())


class TestStatisticalBehavior:
    def test_unbiased_over_seeds(self):
        g = preferential_attachment(60, m=3, seed=5)
        exact = census(g, triangle(), 2, algorithm="nd-pvot")
        hub = max(exact, key=exact.get)
        estimates = [
            approximate_census(g, triangle(), 2, sample_size=40, seed=s)[hub]
            for s in range(30)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - exact[hub]) < 0.25 * max(1, exact[hub])

    def test_stderr_shrinks_with_sample_size(self):
        g = preferential_attachment(60, m=3, seed=6)
        small = approximate_census(g, triangle(), 2, sample_size=10, seed=1,
                                   with_stderr=True)
        large = approximate_census(g, triangle(), 2, sample_size=200, seed=1,
                                   with_stderr=True)
        hub = max(small, key=lambda n: small[n][0])
        assert large[hub][1] <= small[hub][1]

    def test_full_sample_zero_stderr(self):
        g = preferential_attachment(25, m=2, seed=7)
        approx = approximate_census(g, triangle(), 1, sample_size=10 ** 6,
                                    with_stderr=True)
        assert all(stderr == 0.0 for _est, stderr in approx.values())

    def test_deterministic_per_seed(self):
        g = preferential_attachment(40, m=2, seed=8)
        a = approximate_census(g, triangle(), 2, sample_size=15, seed=3)
        b = approximate_census(g, triangle(), 2, sample_size=15, seed=3)
        assert a == b

    def test_estimates_nonnegative_and_bounded(self):
        g = preferential_attachment(40, m=3, seed=9)
        from repro.census.base import CensusRequest, prepare_matches

        total = len(prepare_matches(CensusRequest(g, triangle(), 2)))
        approx = approximate_census(g, triangle(), 2, sample_size=20, seed=0)
        assert all(0.0 <= v <= total for v in approx.values())


class TestSampleSizePlanner:
    def test_caps_at_population(self):
        assert sample_size_for_error(100, 0.0001) == 100

    def test_monotone_in_target(self):
        loose = sample_size_for_error(10 ** 6, 1000.0)
        tight = sample_size_for_error(10 ** 6, 100.0)
        assert tight >= loose

    def test_degenerate_inputs(self):
        assert sample_size_for_error(0, 1.0) == 0
        assert sample_size_for_error(50, -1) == 50


class TestBudgetTickOrdering:
    """The k-hop expansions must charge the ambient budget per BFS layer,
    not once after the whole neighborhood is materialized."""

    @staticmethod
    def edge_pattern():
        p = Pattern("e")
        p.add_edge("A", "B")
        return p

    @staticmethod
    def hub_tree(mids=10, leaves_per_mid=29):
        """A two-level hub tree: one hub, ``mids`` spokes, leafy fringe."""
        g = Graph()
        node = 1
        for _ in range(mids):
            mid = node
            node += 1
            g.add_edge(0, mid)
            for _ in range(leaves_per_mid):
                g.add_edge(mid, node)
                node += 1
        return g

    def test_charges_are_layer_sized(self):
        from repro.exec.budget import ExecutionBudget

        class RecordingBudget(ExecutionBudget):
            def __init__(self, **kw):
                super().__init__(**kw)
                self.charges = []

            def tick(self, n=1):
                self.charges.append(n)
                super().tick(n)

        g = Graph()
        for leaf in range(1, 6):
            g.add_edge(0, leaf)  # star: hub 0, 5 leaves
        budget = RecordingBudget()
        with budget:
            approximate_census(g, self.edge_pattern(), 1, sample_size=10 ** 6)
        # The expansion loop runs after matching, so its charges are the
        # trailing ones: 5 edge units x 2 endpoints x the per-layer
        # charges of a 1-hop BFS ([1, 5] from the hub, [1, 1] from a
        # leaf).  Charged per layer, the biggest expansion charge is the
        # 5-leaf frontier — never the full 6-node reach in one post-hoc
        # tick.
        expansion = budget.charges[-20:]
        assert set(expansion) == {1, 5}
        assert expansion.count(5) == 5  # one hub frontier per unit

    def test_tight_budget_stops_within_one_layer(self):
        from repro.errors import BudgetExceeded
        from repro.exec.budget import ExecutionBudget

        g = self.hub_tree()
        budget = ExecutionBudget(max_ops=2)
        with budget:
            with pytest.raises(BudgetExceeded):
                approximate_census(g, self.edge_pattern(), 3, sample_size=10 ** 6)
        # With per-layer charging the first expansion aborts after at
        # most source + one frontier (<= 1 + max degree = 31 ops); the
        # old post-expansion tick charged a full 3-hop reach, which in
        # this tree is at least 40 nodes from *any* origin.
        assert budget.ops <= 32
