"""Tests for shared-traversal multi-pattern census."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import census
from repro.census.multi import multi_census
from repro.errors import CensusError
from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.matching.pattern import Pattern


def node_pattern():
    p = Pattern("node")
    p.add_node("A")
    return p


def edge_pattern():
    p = Pattern("edge")
    p.add_edge("A", "B")
    return p


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestAgreement:
    @settings(max_examples=20)
    @given(st.integers(8, 30), st.integers(0, 3), st.integers(0, 150))
    def test_matches_individual_censuses(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        patterns = [node_pattern(), edge_pattern(), triangle()]
        combined = multi_census(g, patterns, k)
        for p in patterns:
            assert combined[p.name] == census(g, p, k, algorithm="nd-pvot"), p.name

    def test_labeled_patterns(self):
        g = labeled_preferential_attachment(50, m=2, seed=4)
        a = Pattern("pairAB")
        a.add_node("A", label="A")
        a.add_node("B", label="B")
        a.add_edge("A", "B")
        b = Pattern("pairCD")
        b.add_node("A", label="C")
        b.add_node("B", label="D")
        b.add_edge("A", "B")
        combined = multi_census(g, [a, b], 2)
        assert combined["pairAB"] == census(g, a, 2, algorithm="nd-bas")
        assert combined["pairCD"] == census(g, b, 2, algorithm="nd-bas")

    def test_subpatterns_per_pattern(self):
        g = preferential_attachment(30, m=2, seed=5)
        path = Pattern("path")
        path.add_edge("A", "B")
        path.add_edge("B", "C")
        path.add_subpattern("center", ["B"])
        combined = multi_census(g, [path, edge_pattern()], 1,
                                subpatterns={"path": "center"})
        assert combined["path"] == census(g, path, 1, subpattern="center",
                                          algorithm="nd-bas")
        assert combined["edge"] == census(g, edge_pattern(), 1, algorithm="nd-bas")

    def test_focal_subset(self):
        g = preferential_attachment(40, m=2, seed=6)
        focal = [0, 3, 7]
        combined = multi_census(g, [triangle()], 2, focal_nodes=focal)
        assert set(combined["tri"]) == set(focal)


class TestValidation:
    def test_empty_pattern_list(self):
        g = preferential_attachment(10, m=2, seed=0)
        assert multi_census(g, [], 1) == {}

    def test_duplicate_names_rejected(self):
        g = preferential_attachment(10, m=2, seed=0)
        with pytest.raises(CensusError):
            multi_census(g, [triangle(), triangle()], 1)

    def test_matchless_pattern_all_zero(self):
        g = preferential_attachment(10, m=1, seed=0)  # a tree: no triangles
        combined = multi_census(g, [triangle(), edge_pattern()], 1)
        assert all(c == 0 for c in combined["tri"].values())
        assert any(c > 0 for c in combined["edge"].values())

    def test_k_zero(self):
        g = preferential_attachment(12, m=2, seed=1)
        combined = multi_census(g, [node_pattern(), edge_pattern()], 0)
        assert all(c == 1 for c in combined["node"].values())
        assert all(c == 0 for c in combined["edge"].values())

    def test_single_pattern_degenerates_to_census(self):
        g = preferential_attachment(25, m=2, seed=2)
        combined = multi_census(g, [triangle()], 2)
        assert combined["tri"] == census(g, triangle(), 2, algorithm="nd-pvot")

    def test_all_patterns_matchless(self):
        from repro.graph.graph import Graph

        g = Graph()
        for i in range(4):
            g.add_node(i)
        combined = multi_census(g, [triangle(), edge_pattern()], 2)
        assert all(c == 0 for counts in combined.values() for c in counts.values())
