"""Deterministic census suites on directed graphs and directed patterns.

The randomized cross-validation covers directed cases statistically;
these tests pin down specific directed semantics (motif orientation,
direction-blind neighborhoods, brokerage-style negation) with
hand-checkable answers across every algorithm.
"""

import pytest

from repro.census import ALGORITHMS, census
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def feed_forward_loop():
    p = Pattern("ffl")
    p.add_edge("A", "B", directed=True)
    p.add_edge("B", "C", directed=True)
    p.add_edge("A", "C", directed=True)
    return p


def two_chain():
    p = Pattern("chain")
    p.add_edge("A", "B", directed=True)
    p.add_edge("B", "C", directed=True)
    return p


@pytest.fixture
def ffl_graph():
    """One FFL (1->2->3, 1->3) hanging off a directed path 3->4->5."""
    g = Graph(directed=True)
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.add_edge(1, 3)
    g.add_edge(3, 4)
    g.add_edge(4, 5)
    return g


class TestDirectedMotifs:
    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_ffl_counts(self, algorithm, ffl_graph):
        counts = census(ffl_graph, feed_forward_loop(), 1, algorithm=algorithm)
        # Neighborhood expansion is direction-blind, so nodes 1..4 see
        # the FFL within 1 hop; 5 does not (node 1 is 2 hops away).
        assert counts == {1: 1, 2: 1, 3: 1, 4: 0, 5: 0}

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_chain_direction_respected(self, algorithm):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)  # converging, NOT a chain
        counts = census(g, two_chain(), 2, algorithm=algorithm)
        assert all(c == 0 for c in counts.values())

    @pytest.mark.parametrize("algorithm", list(ALGORITHMS))
    def test_chain_subpattern_middle(self, algorithm, ffl_graph):
        p = two_chain()
        p.add_subpattern("mid", ["B"])
        counts = census(ffl_graph, p, 0, subpattern="mid", algorithm=algorithm)
        # Chains: 1>2>3, 2>3>4, 1>3>4, 3>4>5 — middles 2, 3, 3, 4.
        assert counts == {1: 0, 2: 1, 3: 2, 4: 1, 5: 0}


class TestDirectedNegation:
    @pytest.mark.parametrize("algorithm", ["nd-bas", "nd-pvot", "pt-opt"])
    def test_open_directed_triad(self, algorithm, ffl_graph):
        p = Pattern("open_triad")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        counts = census(ffl_graph, p, 2, algorithm=algorithm)
        # Open chains: 2>3>4 (2->4 absent), 1>3>4 (1->4 absent),
        # 3>4>5 (3->5 absent); 1>2>3 is closed by 1->3.
        assert counts[3] == 3

    @pytest.mark.parametrize("algorithm", ["nd-bas", "nd-pvot", "pt-opt"])
    def test_reverse_edge_does_not_close_directed_negation(self, algorithm):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)  # reverse of the negated direction
        p = Pattern("t")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        counts = census(g, p, 1, algorithm=algorithm)
        # Every rotation is an open chain: 3->1 exists but 1->3 doesn't.
        assert sum(counts.values()) == 3 * 3  # each node sees all 3


class TestDirectedPairwise:
    def test_intersection_on_directed_graph(self):
        from repro.census.pairwise import pairwise_census

        g = Graph(directed=True)
        g.add_edge(1, 3)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        p = Pattern("n")
        p.add_node("A")
        for algorithm in ("nd", "pt"):
            counts = pairwise_census(g, p, 1, pairs=[(1, 2)], algorithm=algorithm)
            # Direction-blind 1-hop: N(1)={1,3}, N(2)={2,3} -> {3}.
            assert counts[(1, 2)] == 1
