"""Unit tests for the shared census machinery (CensusRequest,
prepare_matches, containment distances)."""

import pytest

from repro.census.base import CensusRequest, containment_distances, prepare_matches
from repro.errors import CensusError
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern


def edge_pattern():
    p = Pattern("edge")
    p.add_edge("A", "B")
    return p


def path_pattern():
    p = Pattern("path")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    return p


@pytest.fixture
def g():
    g = Graph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    return g


class TestCensusRequest:
    def test_defaults_focal_to_all_nodes(self, g):
        request = CensusRequest(g, edge_pattern(), 1)
        assert set(request.focal_nodes) == {1, 2, 3}

    def test_zero_counts(self, g):
        request = CensusRequest(g, edge_pattern(), 1, focal_nodes=[1, 3])
        assert request.zero_counts() == {1: 0, 3: 0}

    def test_rejects_negative_radius(self, g):
        with pytest.raises(CensusError):
            CensusRequest(g, edge_pattern(), -1)

    def test_rejects_unknown_subpattern(self, g):
        with pytest.raises(CensusError):
            CensusRequest(g, edge_pattern(), 1, subpattern="ghost")

    def test_rejects_foreign_focal_nodes(self, g):
        with pytest.raises(CensusError):
            CensusRequest(g, edge_pattern(), 1, focal_nodes=[1, 99])

    def test_containment_vars_default_all(self, g):
        request = CensusRequest(g, path_pattern(), 1)
        assert set(request.containment_vars()) == {"A", "B", "C"}

    def test_containment_vars_subpattern(self, g):
        p = path_pattern()
        p.add_subpattern("mid", ["B"])
        request = CensusRequest(g, p, 1, subpattern="mid")
        assert request.containment_vars() == ("B",)

    def test_invalid_pattern_rejected(self, g):
        bad = Pattern("dis")
        bad.add_node("A")
        bad.add_node("B")
        with pytest.raises(Exception):
            CensusRequest(g, bad, 1)


class TestPrepareMatches:
    def test_units_are_distinct_subgraphs(self, g):
        request = CensusRequest(g, edge_pattern(), 1)
        units = prepare_matches(request)
        assert len(units) == 2  # two edges
        assert {u.index for u in units} == {0, 1}

    def test_subpattern_units_keep_automorphic_placements(self, g):
        p = edge_pattern()
        p.add_subpattern("end", ["A"])
        request = CensusRequest(g, p, 0, subpattern="end")
        units = prepare_matches(request)
        # Each of the 2 edges yields 2 subpattern placements.
        assert len(units) == 4
        assert all(len(u.nodes) == 1 for u in units)

    def test_adopted_matches(self, g):
        from repro.matching import find_matches

        request = CensusRequest(g, edge_pattern(), 1)
        matches = find_matches(g, edge_pattern())
        units = prepare_matches(request, matches=matches)
        assert len(units) == len(matches)

    def test_census_match_repr(self, g):
        request = CensusRequest(g, edge_pattern(), 1)
        unit = prepare_matches(request)[0]
        assert "CensusMatch" in repr(unit)


class TestContainmentDistances:
    def test_edge_pattern(self, g):
        request = CensusRequest(g, edge_pattern(), 1)
        pivot, max_v, dists = containment_distances(request)
        assert pivot == "A"  # tie broken by name
        assert max_v == 1
        assert dists == {"A": 0, "B": 1}

    def test_single_node_pattern(self, g):
        p = Pattern("n")
        p.add_node("A")
        request = CensusRequest(g, p, 2)
        pivot, max_v, dists = containment_distances(request)
        assert (pivot, max_v) == ("A", 0)


class TestCNExtractionLimit:
    def test_limit_stops_early(self):
        from repro.graph.generators import preferential_attachment
        from repro.matching.cn import build_cn_state, extract_matches

        g = preferential_attachment(60, m=3, seed=2)
        p = Pattern("tri")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        state = build_cn_state(g, p)
        limited = extract_matches(g, p, state, limit=5)
        assert len(limited) == 5


class TestPruningPasses:
    def test_fixpoint_reached_quickly(self):
        # The paper bounds pruning iterations by |V_P|; empirically the
        # fixpoint lands within |V_P| + 2 passes on these workloads.
        from repro.graph.generators import labeled_preferential_attachment
        from repro.matching.cn import build_cn_state

        g = labeled_preferential_attachment(150, m=3, seed=6)
        p = Pattern("tri")
        p.add_node("A", label="A")
        p.add_node("B", label="B")
        p.add_node("C", label="C")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        state = build_cn_state(g, p)
        assert 1 <= state.stats["pruning_passes"] <= len(p.nodes) + 2
