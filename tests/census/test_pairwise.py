"""Tests for pairwise intersection/union census."""

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.census.pairwise import pairwise_census
from repro.errors import CensusError
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.graph.traversal import k_hop_nodes
from repro.matching import bruteforce_matches
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def edge_pattern():
    p = Pattern("edge")
    p.add_edge("A", "B")
    return p


def node_pattern():
    p = Pattern("node")
    p.add_node("A")
    return p


def reference_pairwise(graph, pattern, k, pairs, mode):
    """Direct re-implementation from the definition: match inside the
    induced subgraph of the combined region."""
    from repro.graph.views import induced_subgraph

    out = {}
    for n1, n2 in pairs:
        h1, h2 = k_hop_nodes(graph, n1, k), k_hop_nodes(graph, n2, k)
        region = h1 & h2 if mode == "intersection" else h1 | h2
        sub = induced_subgraph(graph, region)
        out[(n1, n2)] = len(bruteforce_matches(sub, pattern))
    return out


class TestAgainstDefinition:
    @given(st.integers(8, 26), st.integers(0, 2), st.integers(0, 120),
           st.sampled_from(["intersection", "union"]))
    def test_nd_matches_definition(self, n, k, seed, mode):
        g = preferential_attachment(n, m=2, seed=seed)
        pairs = list(combinations(range(0, min(n, 8)), 2))
        got = pairwise_census(g, edge_pattern(), k, pairs=pairs, mode=mode, algorithm="nd")
        assert got == reference_pairwise(g, edge_pattern(), k, pairs, mode)

    @given(st.integers(8, 24), st.integers(1, 2), st.integers(0, 120),
           st.sampled_from(["intersection", "union"]))
    def test_pt_matches_nd(self, n, k, seed, mode):
        g = preferential_attachment(n, m=2, seed=seed)
        pairs = list(combinations(range(0, min(n, 8)), 2))
        nd = pairwise_census(g, triangle(), k, pairs=pairs, mode=mode, algorithm="nd")
        pt = pairwise_census(g, triangle(), k, pairs=pairs, mode=mode, algorithm="pt")
        assert nd == pt


class TestSmallCases:
    def test_intersection_of_distant_nodes_empty(self):
        g = Graph()
        for i in range(6):
            g.add_node(i)
        for i in range(5):
            g.add_edge(i, i + 1)
        counts = pairwise_census(g, node_pattern(), 1, pairs=[(0, 5)], mode="intersection")
        assert counts[(0, 5)] == 0

    def test_union_counts_both_sides(self):
        g = Graph()
        g.add_edge(0, 1)
        g.add_edge(4, 5)
        counts = pairwise_census(g, edge_pattern(), 1, pairs=[(0, 4)], mode="union")
        assert counts[(0, 4)] == 2

    def test_intersection_jaccard_building_block(self):
        # Table I row 2: common nodes in 1-hop intersection.
        g = Graph()
        g.add_edge(1, 3)
        g.add_edge(2, 3)
        g.add_edge(1, 4)
        g.add_edge(2, 4)
        counts = pairwise_census(g, node_pattern(), 1, pairs=[(1, 2)], mode="intersection")
        assert counts[(1, 2)] == 2  # nodes 3 and 4

    def test_pairs_none_pt_intersection_emits_nonzero(self):
        g = Graph()
        g.add_edge(1, 2)
        counts = pairwise_census(g, edge_pattern(), 1, pairs=None,
                                 mode="intersection", algorithm="pt")
        assert counts == {(1, 2): 1}

    def test_pairs_none_nd_enumerates_all(self):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        g.add_edge(0, 1)
        counts = pairwise_census(g, node_pattern(), 0, pairs=None, mode="union")
        assert len(counts) == 6  # C(4,2)

    def test_pt_union_requires_pairs(self):
        g = Graph()
        g.add_edge(1, 2)
        with pytest.raises(CensusError):
            pairwise_census(g, edge_pattern(), 1, pairs=None, mode="union", algorithm="pt")

    def test_bad_mode_rejected(self):
        g = Graph()
        g.add_edge(1, 2)
        with pytest.raises(CensusError):
            pairwise_census(g, edge_pattern(), 1, pairs=[(1, 2)], mode="xor")

    def test_bad_algorithm_rejected(self):
        g = Graph()
        g.add_edge(1, 2)
        with pytest.raises(CensusError):
            pairwise_census(g, edge_pattern(), 1, pairs=[(1, 2)], algorithm="zz")

    def test_subpattern_pairwise(self):
        # Path of 3; subpattern center: the center must be in the region.
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_subpattern("center", ["B"])
        counts = pairwise_census(g, p, 0, pairs=[(2, 2), (1, 3)], mode="union",
                                 subpattern="center")
        assert counts[(2, 2)] == 1
        assert counts[(1, 3)] == 0
