"""Tests for the ND-DIFF processing orders (neighbor chains, shingle,
given)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.census.nd_bas import nd_bas_census
from repro.census.nd_diff import nd_diff_census
from repro.graph.generators import preferential_attachment
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestOrders:
    @pytest.mark.parametrize("order", ["neighbor", "shingle", "given"])
    def test_all_orders_agree_with_baseline(self, order):
        g = preferential_attachment(50, m=2, seed=3)
        baseline = nd_bas_census(g, triangle(), 2)
        assert nd_diff_census(g, triangle(), 2, order=order) == baseline

    @given(st.integers(8, 30), st.integers(0, 120),
           st.sampled_from(["neighbor", "shingle", "given"]))
    def test_property_agreement(self, n, seed, order):
        g = preferential_attachment(n, m=2, seed=seed)
        baseline = nd_bas_census(g, triangle(), 1)
        assert nd_diff_census(g, triangle(), 1, order=order) == baseline

    def test_given_order_respects_focal_sequence(self):
        g = preferential_attachment(30, m=2, seed=1)
        focal = [5, 1, 9, 2]
        counts = nd_diff_census(g, triangle(), 2, focal_nodes=focal, order="given")
        assert set(counts) == set(focal)
        baseline = nd_bas_census(g, triangle(), 2, focal_nodes=focal)
        assert counts == baseline

    def test_unknown_order_rejected(self):
        g = preferential_attachment(10, m=2, seed=0)
        with pytest.raises(ValueError):
            nd_diff_census(g, triangle(), 1, order="zigzag")

    def test_shingle_groups_similar_neighborhoods(self):
        # Shingle order is deterministic and covers all focal nodes.
        g = preferential_attachment(40, m=2, seed=2)
        a = nd_diff_census(g, triangle(), 1, order="shingle")
        b = nd_diff_census(g, triangle(), 1, order="shingle")
        assert a == b
        assert set(a) == set(g.nodes())
