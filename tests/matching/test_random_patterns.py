"""Randomized cross-validation of the matchers and the census stack.

Hypothesis generates random connected patterns (random labels, edge
directions, negations, subpatterns) against random graphs and checks
that CN, GQL and brute force agree, and that every census algorithm
matches ND-BAS.  This is the widest net in the suite: any systematic
disagreement between the algorithms on *some* pattern class should
land here.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census import ALGORITHMS, census
from repro.graph.generators import assign_random_labels, erdos_renyi
from repro.matching import bruteforce_matches, cn_matches, gql_matches
from repro.matching.pattern import Pattern


def random_pattern(num_nodes, extra_edges, directed, labeled, negation, seed):
    """A random connected pattern over ``num_nodes`` variables."""
    rng = random.Random(seed)
    p = Pattern(f"rand_{seed}")
    names = [chr(ord("A") + i) for i in range(num_nodes)]
    labels = ("X", "Y", None)
    for name in names:
        label = rng.choice(labels) if labeled else None
        p.add_node(name, label=label)
    # Spanning tree keeps it connected.
    for i in range(1, num_nodes):
        other = names[rng.randrange(i)]
        p.add_edge(names[i], other, directed=directed and rng.random() < 0.5)
    for _ in range(extra_edges):
        a, b = rng.sample(names, 2)
        p.add_edge(a, b, directed=directed and rng.random() < 0.5)
    if negation and num_nodes >= 3:
        # One negated edge between a random non-adjacent-ish pair.
        a, b = rng.sample(names, 2)
        existing = {frozenset((e.u, e.v)) for e in p.positive_edges()}
        if frozenset((a, b)) not in existing:
            p.add_edge(a, b, directed=directed, negated=True)
    return p


def random_graph(num_nodes, labeled, directed, seed):
    edges = min(2 * num_nodes, num_nodes * (num_nodes - 1) // (1 if directed else 2))
    g = erdos_renyi(num_nodes, edges, seed=seed, directed=directed)
    if labeled:
        assign_random_labels(g, labels=("X", "Y", "Z"), seed=seed + 1)
    return g


pattern_params = st.tuples(
    st.integers(2, 4),      # pattern nodes
    st.integers(0, 2),      # extra edges
    st.booleans(),          # directed
    st.booleans(),          # labeled
    st.booleans(),          # negation
    st.integers(0, 10_000),  # seed
)


class TestMatcherCrossValidation:
    @settings(max_examples=60)
    @given(pattern_params, st.integers(6, 16), st.integers(0, 10_000))
    def test_cn_gql_bruteforce_agree(self, params, graph_size, graph_seed):
        n, extra, directed, labeled, negation, seed = params
        pattern = random_pattern(n, extra, directed, labeled, negation, seed)
        graph = random_graph(graph_size, labeled, directed, graph_seed)
        reference = {m.canonical_key for m in bruteforce_matches(graph, pattern)}
        assert {m.canonical_key for m in cn_matches(graph, pattern)} == reference
        assert {m.canonical_key for m in gql_matches(graph, pattern)} == reference


class TestCensusCrossValidation:
    @settings(max_examples=25)
    @given(pattern_params, st.integers(6, 14), st.integers(0, 2), st.integers(0, 10_000))
    def test_all_census_algorithms_agree(self, params, graph_size, k, graph_seed):
        n, extra, directed, labeled, negation, seed = params
        pattern = random_pattern(n, extra, directed, labeled, negation, seed)
        graph = random_graph(graph_size, labeled, directed, graph_seed)
        reference = census(graph, pattern, k, algorithm="nd-bas")
        for name in ALGORITHMS:
            if name == "nd-bas":
                continue
            assert census(graph, pattern, k, algorithm=name) == reference, name

    @settings(max_examples=15)
    @given(pattern_params, st.integers(6, 12), st.integers(0, 10_000))
    def test_subpattern_census_agrees(self, params, graph_size, graph_seed):
        n, extra, directed, labeled, negation, seed = params
        pattern = random_pattern(n, extra, directed, labeled, negation, seed)
        first_var = next(iter(pattern.nodes))
        pattern.add_subpattern("probe", [first_var])
        graph = random_graph(graph_size, labeled, directed, graph_seed)
        reference = census(graph, pattern, 1, subpattern="probe", algorithm="nd-bas")
        for name in ("nd-pvot", "nd-diff", "pt-bas", "pt-opt"):
            got = census(graph, pattern, 1, subpattern="probe", algorithm=name)
            assert got == reference, name
