"""Tests for Match canonical keys and MatchSet helpers."""

from repro.matching.base import Match, MatchSet, dedupe_matches
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def path():
    p = Pattern("path")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    return p


class TestCanonicalKeys:
    def test_automorphic_embeddings_share_key(self):
        p = triangle()
        m1 = Match({"A": 1, "B": 2, "C": 3}, p)
        m2 = Match({"A": 3, "B": 1, "C": 2}, p)
        assert m1.canonical_key == m2.canonical_key

    def test_same_nodes_different_edges_distinct(self):
        # Path A-B-C over nodes {1,2,3}: center at 2 vs center at 1.
        p = path()
        m1 = Match({"A": 1, "B": 2, "C": 3}, p)
        m2 = Match({"A": 2, "B": 1, "C": 3}, p)
        assert m1.nodes() == m2.nodes()
        assert m1.canonical_key != m2.canonical_key

    def test_directed_edges_keep_orientation(self):
        p = Pattern("arc")
        p.add_edge("A", "B", directed=True)
        m1 = Match({"A": 1, "B": 2}, p)
        m2 = Match({"A": 2, "B": 1}, p)
        assert m1.canonical_key != m2.canonical_key

    def test_negated_edges_not_in_key(self):
        p = Pattern("open")
        p.add_edge("A", "B")
        p.add_edge("A", "C", negated=True)
        p.add_edge("B", "C")
        m = Match({"A": 1, "B": 2, "C": 3}, p)
        _nodes, edge_images = m.canonical_key
        assert len(edge_images) == 2

    def test_image_and_nodes(self):
        p = path()
        m = Match({"A": 10, "B": 20, "C": 30}, p)
        assert m.image("B") == 20
        assert m.nodes() == frozenset((10, 20, 30))

    def test_subpattern_nodes(self):
        p = path()
        p.add_subpattern("mid", ["B"])
        m = Match({"A": 10, "B": 20, "C": 30}, p)
        assert m.subpattern_nodes(p, "mid") == frozenset((20,))

    def test_match_equality(self):
        p = path()
        assert Match({"A": 1, "B": 2, "C": 3}, p) == Match({"A": 1, "B": 2, "C": 3}, p)
        assert Match({"A": 1, "B": 2, "C": 3}, p) != Match({"A": 3, "B": 2, "C": 1}, p)


class TestDedup:
    def test_dedupe_keeps_first(self):
        p = triangle()
        m1 = Match({"A": 1, "B": 2, "C": 3}, p)
        m2 = Match({"A": 2, "B": 3, "C": 1}, p)
        out = dedupe_matches([m1, m2])
        assert out == [m1]

    def test_matchset_distinct(self):
        p = triangle()
        ms = MatchSet(
            [Match({"A": 1, "B": 2, "C": 3}, p), Match({"A": 3, "B": 2, "C": 1}, p)]
        )
        assert len(ms) == 2
        assert len(ms.distinct()) == 1
        assert list(ms.distinct())[0].nodes() == frozenset((1, 2, 3))
