"""Tests for search-order selection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.matching.order import connected_order, earlier_neighbors
from repro.matching.pattern import Pattern


def random_connected_pattern(num_nodes, extra_edges, seed):
    import random

    rng = random.Random(seed)
    p = Pattern("rand")
    names = [f"V{i}" for i in range(num_nodes)]
    p.add_node(names[0])
    for i in range(1, num_nodes):
        p.add_edge(names[i], names[rng.randrange(i)])
    for _ in range(extra_edges):
        a, b = rng.sample(names, 2)
        p.add_edge(a, b)
    return p


class TestConnectedOrder:
    def test_every_prefix_connected(self):
        p = Pattern("sqr")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("C", "D")
        p.add_edge("D", "A")
        order = connected_order(p)
        for i in range(1, len(order) + 1):
            prefix = set(order[:i])
            if i == 1:
                continue
            # Each new node connects back into the prefix.
            var = order[i - 1]
            assert any(o in prefix for o, _e in p.positive_neighbors(var))

    def test_starts_at_smallest_candidate_set(self):
        p = Pattern("path")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        order = connected_order(p, {"A": 100, "B": 1, "C": 100})
        assert order[0] == "B"

    def test_single_node(self):
        p = Pattern("n")
        p.add_node("A")
        assert connected_order(p) == ["A"]

    def test_disconnected_raises(self):
        p = Pattern("d")
        p.add_edge("A", "B")
        p.add_node("Z")
        with pytest.raises(PatternError):
            connected_order(p)

    def test_deterministic(self):
        p = random_connected_pattern(6, 3, seed=1)
        sizes = {v: 5 for v in p.nodes}
        assert connected_order(p, sizes) == connected_order(p, sizes)

    @given(st.integers(2, 8), st.integers(0, 5), st.integers(0, 100))
    def test_order_is_permutation(self, n, extra, seed):
        p = random_connected_pattern(n, extra, seed)
        order = connected_order(p)
        assert sorted(order) == sorted(p.nodes)


class TestEarlierNeighbors:
    def test_back_edges_point_into_prefix(self):
        p = Pattern("tri")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        order = connected_order(p)
        assert earlier_neighbors(p, order, 0) == []
        assert len(earlier_neighbors(p, order, 1)) == 1
        assert len(earlier_neighbors(p, order, 2)) == 2
