"""Tests for the pattern graph model."""

import pytest

from repro.errors import PatternError
from repro.matching.pattern import Pattern
from repro.matching.predicates import Attr, Comparison, Const


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def path4():
    p = Pattern("p4")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("C", "D")
    return p


class TestConstruction:
    def test_add_node_idempotent(self):
        p = Pattern()
        p.add_node("A", label="X")
        p.add_node("A")
        assert p.nodes["A"].label == "X"

    def test_relabel_conflict_raises(self):
        p = Pattern()
        p.add_node("A", label="X")
        with pytest.raises(PatternError):
            p.add_node("A", label="Y")

    def test_self_loop_rejected(self):
        p = Pattern()
        with pytest.raises(PatternError):
            p.add_edge("A", "A")

    def test_duplicate_edge_ignored(self):
        p = Pattern()
        p.add_edge("A", "B")
        p.add_edge("B", "A")
        assert len(p.edges) == 1

    def test_directed_and_negated_edges_distinct(self):
        p = Pattern()
        p.add_edge("A", "B", directed=True)
        p.add_edge("A", "B", directed=True, negated=True)
        assert len(p.edges) == 2
        assert len(p.positive_edges()) == 1
        assert len(p.negative_edges()) == 1

    def test_predicate_unknown_variable(self):
        p = Pattern()
        p.add_node("A")
        with pytest.raises(PatternError):
            p.add_predicate(Comparison(Attr("Z", "label"), "=", Const("x")))

    def test_label_constant_predicate_folds_into_label(self):
        p = Pattern()
        p.add_node("A")
        p.add_predicate(Comparison(Attr("A", "LABEL"), "=", Const("X")))
        assert p.label_of("A") == "X"

    def test_label_fold_is_symmetric(self):
        p = Pattern()
        p.add_node("A")
        p.add_predicate(Comparison(Const("X"), "=", Attr("A", "label")))
        assert p.label_of("A") == "X"

    def test_subpattern_validation(self):
        p = triangle()
        p.add_subpattern("mid", ["B"])
        assert p.subpatterns["mid"] == ("B",)
        with pytest.raises(PatternError):
            p.add_subpattern("bad", ["Z"])
        with pytest.raises(PatternError):
            p.add_subpattern("empty", [])


class TestStructure:
    def test_positive_neighbors_ignore_negated(self):
        p = Pattern()
        p.add_edge("A", "B")
        p.add_edge("A", "C", negated=True)
        assert [v for v, _e in p.positive_neighbors("A")] == ["B"]
        assert p.degree("A") == 1

    def test_distances(self):
        p = path4()
        assert p.distance("A", "D") == 3
        assert p.distance("B", "C") == 1
        assert p.distance("A", "A") == 0

    def test_distances_direction_blind(self):
        p = Pattern()
        p.add_edge("A", "B", directed=True)
        p.add_edge("C", "B", directed=True)
        assert p.distance("A", "C") == 2

    def test_eccentricity_and_pivot(self):
        p = path4()
        assert p.eccentricity("A") == 3
        assert p.eccentricity("B") == 2
        assert p.pivot() in ("B", "C")  # both have eccentricity 2
        assert p.pivot() == "B"  # tie broken by name
        assert p.radius() == 2
        assert p.diameter() == 3

    def test_triangle_pivot(self):
        p = triangle()
        assert p.radius() == 1

    def test_label_profile(self):
        p = Pattern()
        p.add_node("A")
        p.add_node("B", label="X")
        p.add_node("C", label="X")
        p.add_node("D")  # unlabeled neighbor contributes nothing
        p.add_edge("A", "B")
        p.add_edge("A", "C")
        p.add_edge("A", "D")
        assert p.label_profile("A") == {"X": 2}


class TestValidation:
    def test_empty_pattern_invalid(self):
        with pytest.raises(PatternError):
            Pattern("empty").validate()

    def test_disconnected_invalid(self):
        p = Pattern()
        p.add_edge("A", "B")
        p.add_node("Z")
        with pytest.raises(PatternError):
            p.validate()

    def test_negated_edges_do_not_connect(self):
        p = Pattern()
        p.add_edge("A", "B")
        p.add_edge("B", "C", negated=True)
        with pytest.raises(PatternError):
            p.validate()

    def test_single_node_valid(self):
        p = Pattern()
        p.add_node("A")
        p.validate()


class TestAutomorphisms:
    def test_unlabeled_triangle_has_six(self):
        assert triangle().num_automorphisms() == 6

    def test_labeled_triangle_has_one(self):
        p = Pattern()
        p.add_node("A", label="A")
        p.add_node("B", label="B")
        p.add_node("C", label="C")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        assert p.num_automorphisms() == 1

    def test_path_has_two(self):
        p = Pattern()
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        assert p.num_automorphisms() == 2


class TestUnparse:
    def test_round_trips_through_parser(self):
        from repro.lang.parser import parse_pattern

        p = Pattern("triad")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        p.add_predicate(Comparison(Attr("A", "LABEL"), "=", Attr("B", "LABEL")))
        p.add_subpattern("mid", ["B"])
        q = parse_pattern(p.unparse())
        assert q.name == "triad"
        assert len(q.edges) == 3
        assert len(q.negative_edges()) == 1
        assert q.subpatterns == {"mid": ("B",)}
