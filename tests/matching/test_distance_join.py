"""Tests for distance-join matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.graph import Graph
from repro.graph.traversal import shortest_path_length
from repro.matching import bruteforce_matches
from repro.matching.distance_join import distance_census, distance_join_matches
from repro.matching.pattern import Pattern


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def path_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def reference_distance_matches(graph, pattern, delta):
    """Brute force over all node tuples with pairwise distance checks."""
    from itertools import permutations

    from repro.graph.graph import LABEL_KEY

    nodes = list(graph.nodes())
    variables = list(pattern.nodes)
    keys = set()
    for tup in permutations(nodes, len(variables)):
        mapping = dict(zip(variables, tup))
        ok = True
        for var, node in mapping.items():
            want = pattern.label_of(var)
            if want is not None and graph.node_attr(node, LABEL_KEY) != want:
                ok = False
                break
        if not ok:
            continue
        for e in pattern.edges:
            d = shortest_path_length(graph, mapping[e.u], mapping[e.v],
                                     max_depth=delta)
            near = d is not None
            if e.negated == near:
                ok = False
                break
        if ok and all(p.evaluate(mapping, graph) for p in pattern.predicates):
            from repro.matching.base import Match

            keys.add(Match(mapping, pattern).canonical_key)
    return keys


class TestSemantics:
    def test_delta_one_equals_ordinary_matching(self):
        g = preferential_attachment(25, m=2, seed=1)
        ordinary = {m.canonical_key for m in bruteforce_matches(g, triangle())}
        relaxed = {m.canonical_key for m in distance_join_matches(g, triangle(), 1)}
        assert ordinary == relaxed

    def test_delta_two_finds_stretched_triangles(self):
        # A path 0-1-2-3-4 has no edge-triangles, but consecutive
        # triples are pairwise within distance 2.
        g = path_graph(5)
        assert distance_join_matches(g, triangle(), 1) == []
        keys = {m.nodes() for m in distance_join_matches(g, triangle(), 2)}
        assert keys == {
            frozenset((0, 1, 2)), frozenset((1, 2, 3)), frozenset((2, 3, 4)),
        }

    def test_negated_edge_means_far(self):
        g = path_graph(6)  # 0-1-2-3-4-5
        p = Pattern("far")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C", negated=True)
        out = distance_join_matches(g, p, 2)
        assert out
        for m in out:
            a, b, c = m.image("A"), m.image("B"), m.image("C")
            assert shortest_path_length(g, a, b, max_depth=2) is not None
            assert shortest_path_length(g, b, c, max_depth=2) is not None
            assert shortest_path_length(g, a, c, max_depth=2) is None

    def test_invalid_delta(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            distance_join_matches(g, triangle(), 0)

    @settings(max_examples=20)
    @given(st.integers(5, 12), st.integers(1, 3), st.integers(0, 120))
    def test_matches_reference(self, n, delta, seed):
        g = erdos_renyi(n, min(n + 2, n * (n - 1) // 2), seed=seed)
        p = Pattern("wedge")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        got = {m.canonical_key for m in distance_join_matches(g, p, delta)}
        assert got == reference_distance_matches(g, p, delta)

    def test_labels_respected(self):
        g = path_graph(5)
        for i in g.nodes():
            g.set_node_attr(i, "label", "X" if i % 2 == 0 else "Y")
        p = Pattern("xx")
        p.add_node("A", label="X")
        p.add_node("B", label="X")
        p.add_edge("A", "B")
        out = distance_join_matches(g, p, 2)
        assert all(
            g.label(m.image("A")) == "X" and g.label(m.image("B")) == "X"
            for m in out
        )
        assert out  # 0-2, 2-4 are X nodes at distance 2


class TestDistanceCensus:
    def test_census_counts_stretched_matches(self):
        g = path_graph(5)
        counts = distance_census(g, triangle(), k=4, delta=2)
        # The stretched triangle {0,2,4} is within 4 hops of every node.
        assert all(c >= 1 for c in counts.values())

    def test_census_with_focal_subset(self):
        g = path_graph(5)
        counts = distance_census(g, triangle(), k=2, delta=2, focal_nodes=[2])
        assert set(counts) == {2}
        assert counts[2] >= 1

    @settings(max_examples=15)
    @given(st.integers(6, 14), st.integers(1, 3), st.integers(0, 2), st.integers(0, 80))
    def test_census_matches_definition(self, n, delta, k, seed):
        """Regression: stretched matches span farther than pattern
        distances, so the census must do real containment checks."""
        from repro.graph.traversal import k_hop_nodes

        g = erdos_renyi(n, min(n + 3, n * (n - 1) // 2), seed=seed)
        p = Pattern("wedge")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        matches = distance_join_matches(g, p, delta)
        counts = distance_census(g, p, k=k, delta=delta)
        for node in g.nodes():
            hood = k_hop_nodes(g, node, k)
            expected = sum(1 for m in matches if m.nodes() <= hood)
            assert counts[node] == expected
