"""Tests for predicate expressions."""

import pytest

from repro.errors import PatternError
from repro.graph.graph import Graph
from repro.matching.predicates import Attr, Comparison, Const, EdgeAttr, attr, const, edge_attr


@pytest.fixture
def g():
    g = Graph()
    g.add_node(1, label="X", age=30)
    g.add_node(2, label="Y", age=40)
    g.add_edge(1, 2, sign=-1)
    return g


class TestOperands:
    def test_const(self, g):
        assert Const(5).evaluate({}, g) == 5
        assert Const(5).variables() == frozenset()

    def test_attr_case_insensitive_fallback(self, g):
        assert Attr("A", "LABEL").evaluate({"A": 1}, g) == "X"
        assert Attr("A", "label").evaluate({"A": 1}, g) == "X"

    def test_attr_missing_is_none(self, g):
        assert Attr("A", "nope").evaluate({"A": 1}, g) is None

    def test_edge_attr(self, g):
        assert EdgeAttr("A", "B", "sign").evaluate({"A": 1, "B": 2}, g) == -1
        assert EdgeAttr("A", "B", "sign").variables() == frozenset(("A", "B"))

    def test_edge_attr_missing_edge_is_none(self, g):
        g.add_node(3)
        assert EdgeAttr("A", "B", "sign").evaluate({"A": 1, "B": 3}, g) is None

    def test_edge_attr_directed_reverse_lookup(self):
        d = Graph(directed=True)
        d.add_edge(1, 2, w=7)
        # The predicate matches the edge in either direction.
        assert EdgeAttr("A", "B", "w").evaluate({"A": 2, "B": 1}, d) == 7


class TestComparison:
    def test_all_operators(self, g):
        cases = [
            ("=", 30, True), ("==", 30, True), ("!=", 30, False), ("<>", 30, False),
            ("<", 31, True), ("<=", 30, True), (">", 29, True), (">=", 31, False),
        ]
        for op, rhs, expected in cases:
            c = Comparison(Attr("A", "age"), op, Const(rhs))
            assert c.evaluate({"A": 1}, g) is expected, (op, rhs)

    def test_unknown_operator(self):
        with pytest.raises(PatternError):
            Comparison(Const(1), "~", Const(2))

    def test_unbound_variables_vacuously_true(self, g):
        c = Comparison(Attr("A", "age"), "<", Attr("B", "age"))
        assert c.evaluate({"A": 1}, g) is True  # B unbound
        assert c.evaluate({"A": 1, "B": 2}, g) is True  # 30 < 40
        assert c.evaluate({"A": 2, "B": 1}, g) is False

    def test_incomparable_types_fail_predicate(self, g):
        c = Comparison(Attr("A", "nope"), "<", Const(3))  # None < 3
        assert c.evaluate({"A": 1}, g) is False

    def test_is_ready(self, g):
        c = Comparison(Attr("A", "age"), "=", Attr("B", "age"))
        assert not c.is_ready({"A": 1})
        assert c.is_ready({"A": 1, "B": 2})

    def test_equality_and_hash(self):
        a = Comparison(attr("A", "label"), "=", const("X"))
        b = Comparison(attr("A", "LABEL"), "=", const("X"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Comparison(attr("A", "label"), "!=", const("X"))

    def test_unparse(self):
        c = Comparison(attr("A", "LABEL"), "=", const("X"))
        assert c.unparse() == "[?A.LABEL='X']"
        e = Comparison(edge_attr("A", "B", "sign"), "=", const(-1))
        assert e.unparse() == "[EDGE(?A, ?B).sign=-1]"
