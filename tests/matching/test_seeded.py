"""Tests for seeded (anchored) matching and embedding revalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.graph import Graph
from repro.matching import bruteforce_matches
from repro.matching.pattern import Pattern
from repro.matching.seeded import (
    matches_using_edge,
    matches_using_node,
    seeded_matches,
    validate_embedding,
)


def triangle():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestValidateEmbedding:
    def test_valid_triangle(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        assert validate_embedding(g, triangle(), {"A": 1, "B": 2, "C": 3})

    def test_missing_edge_invalid(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert not validate_embedding(g, triangle(), {"A": 1, "B": 2, "C": 3})

    def test_injectivity(self):
        g = Graph()
        g.add_edge(1, 2)
        p = Pattern("e")
        p.add_edge("A", "B")
        assert not validate_embedding(g, p, {"A": 1, "B": 1})

    def test_label_change_invalidates(self):
        g = Graph()
        g.add_node(1, label="X")
        g.add_node(2, label="X")
        g.add_edge(1, 2)
        p = Pattern("xx")
        p.add_node("A", label="X")
        p.add_node("B", label="X")
        p.add_edge("A", "B")
        mapping = {"A": 1, "B": 2}
        assert validate_embedding(g, p, mapping)
        g.set_node_attr(2, "label", "Y")
        assert not validate_embedding(g, p, mapping)

    def test_negated_edge_checked(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("open")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C", negated=True)
        mapping = {"A": 1, "B": 2, "C": 3}
        assert validate_embedding(g, p, mapping)
        g.add_edge(1, 3)
        assert not validate_embedding(g, p, mapping)

    def test_missing_node_invalid(self):
        g = Graph()
        g.add_edge(1, 2)
        p = Pattern("e")
        p.add_edge("A", "B")
        assert not validate_embedding(g, p, {"A": 1, "B": 99})


class TestSeededMatches:
    def test_pinned_edge_restricts(self):
        g = Graph()
        for u, v in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
            g.add_edge(u, v)
        out = seeded_matches(g, triangle(), {"A": 1, "B": 2})
        assert all(m.image("A") == 1 and m.image("B") == 2 for m in out)
        assert {m.image("C") for m in out} == {3}

    def test_bad_seed_label(self):
        g = Graph()
        g.add_node(1, label="X")
        p = Pattern("y")
        p.add_node("A", label="Y")
        assert seeded_matches(g, p, {"A": 1}) == []

    def test_unknown_seed_variable(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(PatternError):
            seeded_matches(g, triangle(), {"Z": 1})

    def test_seed_not_in_graph(self):
        g = Graph()
        g.add_node(1)
        assert seeded_matches(g, triangle(), {"A": 99}) == []

    def test_seeds_violating_structure(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(3)
        # A and B pinned to non-adjacent nodes: no matches.
        p = Pattern("e")
        p.add_edge("A", "B")
        assert seeded_matches(g, p, {"A": 1, "B": 3}) == []

    @settings(max_examples=25)
    @given(st.integers(6, 20), st.integers(0, 150))
    def test_union_over_seeds_equals_bruteforce(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        all_embeddings = {
            frozenset(m.mapping.items())
            for m in bruteforce_matches(g, triangle(), distinct=False)
        }
        via_seeds = set()
        for node in g.nodes():
            for m in seeded_matches(g, triangle(), {"A": node}):
                via_seeds.add(frozenset(m.mapping.items()))
        assert via_seeds == all_embeddings


class TestUsingHelpers:
    def test_matches_using_edge_complete(self):
        g = preferential_attachment(30, m=2, seed=4)
        # Pick an edge that closes at least one triangle if any exist.
        reference = bruteforce_matches(g, triangle(), distinct=False)
        for u, v in list(g.edges())[:10]:
            via = matches_using_edge(g, triangle(), u, v)
            expect = {
                frozenset(m.mapping.items())
                for m in reference
                if u in m.mapping.values() and v in m.mapping.values()
            }
            got = {frozenset(m.mapping.items()) for m in via}
            # Every embedding containing both endpoints of an edge of a
            # triangle pattern uses that edge (cliques use all edges).
            assert got == expect

    def test_matches_using_node_complete(self):
        g = preferential_attachment(25, m=2, seed=5)
        reference = bruteforce_matches(g, triangle(), distinct=False)
        node = 0
        got = {frozenset(m.mapping.items())
               for m in matches_using_node(g, triangle(), node)}
        expect = {
            frozenset(m.mapping.items())
            for m in reference
            if node in m.mapping.values()
        }
        assert got == expect

    def test_directed_pattern_seeding(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("p2")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        out = matches_using_edge(g, p, 1, 2)
        assert len(out) == 1
        assert out[0].mapping == {"A": 1, "B": 2, "C": 3}
