"""Correctness tests for the CN, GQL, and brute-force matchers.

Brute force is ground truth; CN and GQL must agree with it on every
graph/pattern combination, including labels, direction, negated edges,
predicates, and automorphism handling.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph.generators import (
    erdos_renyi,
    labeled_preferential_attachment,
    preferential_attachment,
)
from repro.graph.graph import Graph
from repro.matching import bruteforce_matches, cn_matches, find_matches, gql_matches
from repro.matching.pattern import Pattern
from repro.matching.predicates import Attr, Comparison, Const

MATCHERS = [cn_matches, gql_matches, bruteforce_matches]


def match_keys(matches):
    keys = {m.canonical_key for m in matches}
    assert len(keys) == len(matches), "distinct matches must have distinct keys"
    return keys


def assert_all_agree(graph, pattern):
    reference = match_keys(bruteforce_matches(graph, pattern))
    assert match_keys(cn_matches(graph, pattern)) == reference
    assert match_keys(gql_matches(graph, pattern)) == reference
    return len(reference)


def triangle(labels=(None, None, None)):
    p = Pattern("tri")
    for var, label in zip("ABC", labels):
        p.add_node(var, label=label)
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


class TestBasicStructures:
    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_single_triangle(self, matcher):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        assert len(matcher(g, triangle())) == 1

    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_no_triangle_in_path(self, matcher):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert matcher(g, triangle()) == []

    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_single_node_pattern_matches_every_node(self, matcher):
        g = Graph()
        for i in range(5):
            g.add_node(i)
        p = Pattern("n")
        p.add_node("A")
        assert len(matcher(g, p)) == 5

    @pytest.mark.parametrize("matcher", MATCHERS)
    def test_edge_pattern_counts_edges(self, matcher):
        g = preferential_attachment(40, m=2, seed=1)
        p = Pattern("e")
        p.add_edge("A", "B")
        assert len(matcher(g, p)) == g.num_edges

    def test_embeddings_are_distinct_times_automorphisms(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        p = triangle()
        embeddings = cn_matches(g, p, distinct=False)
        assert len(embeddings) == 6  # |Aut(K3)| = 6
        assert len(cn_matches(g, p, distinct=True)) == 1

    def test_find_matches_dispatch(self):
        g = Graph()
        g.add_edge(1, 2)
        p = Pattern("e")
        p.add_edge("A", "B")
        for method in ("cn", "gql", "bruteforce"):
            assert len(find_matches(g, p, method=method)) == 1
        with pytest.raises(ValueError):
            find_matches(g, p, method="nope")


class TestLabels:
    def test_labels_constrain_matches(self):
        g = Graph()
        g.add_node(1, label="X")
        g.add_node(2, label="Y")
        g.add_node(3, label="X")
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("xy")
        p.add_node("A", label="X")
        p.add_node("B", label="Y")
        p.add_edge("A", "B")
        assert assert_all_agree(g, p) == 2

    def test_label_absent_from_graph(self):
        g = Graph()
        g.add_node(1, label="X")
        p = Pattern("z")
        p.add_node("A", label="Z")
        assert assert_all_agree(g, p) == 0

    def test_mixed_labeled_unlabeled_pattern(self):
        g = labeled_preferential_attachment(60, m=2, seed=2)
        p = Pattern("mixed")
        p.add_node("A", label="A")
        p.add_node("B")  # wildcard
        p.add_edge("A", "B")
        assert_all_agree(g, p)


class TestDirection:
    def test_directed_edge_matches_one_way(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        p = Pattern("arc")
        p.add_edge("A", "B", directed=True)
        matches = cn_matches(g, p)
        assert len(matches) == 1
        assert matches[0].image("A") == 1

    def test_undirected_pattern_edge_on_directed_graph(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        p = Pattern("e")
        p.add_edge("A", "B")
        # Either direction satisfies the undirected constraint.
        assert assert_all_agree(g, p) == 1

    def test_directed_triangle_cycle(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)
        p = Pattern("cyc")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("C", "A", directed=True)
        assert assert_all_agree(g, p) == 1

    def test_feed_forward_loop(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 3)
        ffl = Pattern("ffl")
        ffl.add_edge("A", "B", directed=True)
        ffl.add_edge("B", "C", directed=True)
        ffl.add_edge("A", "C", directed=True)
        assert assert_all_agree(g, ffl) == 1
        # The cyclic triad does not match the FFL.
        cyc = Pattern("cyc")
        cyc.add_edge("A", "B", directed=True)
        cyc.add_edge("B", "C", directed=True)
        cyc.add_edge("C", "A", directed=True)
        assert assert_all_agree(g, cyc) == 0


class TestNegatedEdges:
    def test_open_triad(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        g.add_edge(1, 3)  # closes 1-2-3
        p = Pattern("open")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C", negated=True)
        keys = match_keys(bruteforce_matches(g, p))
        # Open triads: 1-2-3 is closed; 2-3-4, 1-3-4 (via 3), 2-1-3 closed...
        assert match_keys(cn_matches(g, p)) == keys
        assert match_keys(gql_matches(g, p)) == keys
        closed_nodes = frozenset((1, 2, 3))
        assert all(k[0] != closed_nodes for k in keys)

    def test_directed_negation_one_way(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(3, 1)  # back edge exists 3->1, not 1->3
        p = Pattern("triad")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        # A=1,B=2,C=3: edge 1->3 absent (3->1 exists) -> match.
        assert assert_all_agree(g, p) == 3  # rotations all qualify


class TestPredicates:
    def test_same_label_join_predicate(self):
        g = Graph()
        g.add_node(1, label="X")
        g.add_node(2, label="X")
        g.add_node(3, label="Y")
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        p = Pattern("same")
        p.add_edge("A", "B")
        p.add_predicate(Comparison(Attr("A", "label"), "=", Attr("B", "label")))
        assert assert_all_agree(g, p) == 1

    def test_numeric_single_var_predicate(self):
        g = Graph()
        g.add_node(1, age=20)
        g.add_node(2, age=50)
        g.add_edge(1, 2)
        p = Pattern("old")
        p.add_node("A")
        p.add_predicate(Comparison(Attr("A", "age"), ">", Const(30)))
        assert assert_all_agree(g, p) == 1

    def test_edge_attr_predicate(self):
        g = Graph()
        g.add_edge(1, 2, sign=-1)
        g.add_edge(2, 3, sign=1)
        p = Pattern("neg")
        p.add_edge("A", "B")
        from repro.matching.predicates import EdgeAttr

        p.add_predicate(Comparison(EdgeAttr("A", "B", "sign"), "=", Const(-1)))
        assert assert_all_agree(g, p) == 1


class TestPropertyAgreement:
    @given(st.integers(5, 35), st.integers(0, 300))
    def test_triangle_census_on_random_pa(self, n, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        assert_all_agree(g, triangle())

    @given(st.integers(5, 30), st.integers(0, 300))
    def test_labeled_path_on_random_labeled_graph(self, n, seed):
        g = labeled_preferential_attachment(n, m=2, seed=seed)
        p = Pattern("path")
        p.add_node("A", label="A")
        p.add_node("B", label="B")
        p.add_node("C", label="C")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        assert_all_agree(g, p)

    @given(st.integers(6, 24), st.integers(0, 200))
    def test_square_on_random_er(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        p = Pattern("sqr")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("C", "D")
        p.add_edge("D", "A")
        assert_all_agree(g, p)

    @given(st.integers(5, 20), st.integers(0, 200))
    def test_negated_triad_on_random_directed(self, n, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1)), seed=seed, directed=True)
        p = Pattern("triad")
        p.add_edge("A", "B", directed=True)
        p.add_edge("B", "C", directed=True)
        p.add_edge("A", "C", directed=True, negated=True)
        assert_all_agree(g, p)

    @given(st.integers(5, 25), st.integers(0, 200))
    def test_clq4_on_dense_er(self, n, seed):
        g = erdos_renyi(n, min(3 * n, n * (n - 1) // 2), seed=seed)
        p = Pattern("clq4")
        for i, a in enumerate("ABCD"):
            for b in "ABCD"[i + 1:]:
                p.add_edge(a, b)
        assert_all_agree(g, p)


class TestCNInternals:
    def test_pruning_reduces_candidates(self):
        from repro.matching.cn import build_cn_state

        g = labeled_preferential_attachment(120, m=3, seed=4)
        p = triangle(labels=("A", "B", "C"))
        state = build_cn_state(g, p)
        for var in p.nodes:
            initial = state.stats["initial_candidates"][var]
            pruned = state.stats["pruned_candidates"][var]
            assert pruned <= initial

    def test_empty_candidates_short_circuit(self):
        g = Graph()
        g.add_node(1, label="X")
        p = Pattern("z")
        p.add_node("A", label="Z")
        p.add_node("B", label="Z")
        p.add_edge("A", "B")
        assert cn_matches(g, p) == []

    def test_cn_sets_are_subsets_of_candidates(self):
        from repro.matching.cn import build_cn_state

        g = labeled_preferential_attachment(60, m=2, seed=5)
        p = triangle(labels=("A", "B", "C"))
        state = build_cn_state(g, p)
        for (var, _n), entry in state.cn.items():
            for (other, _eid), s in entry.items():
                assert s <= state.candidates[other]
