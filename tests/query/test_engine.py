"""End-to-end tests of the query engine, including the four Table I
queries."""

import pytest

from repro.errors import QueryError
from repro.graph.generators import labeled_preferential_attachment
from repro.graph.graph import Graph
from repro.query.engine import QueryEngine


@pytest.fixture
def two_triangles():
    g = Graph()
    for u, v in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
        g.add_edge(u, v)
    return g


class TestBasicQueries:
    def test_count_triangles(self, two_triangles):
        eng = QueryEngine(two_triangles)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY ID")
        assert t.columns == ["ID", "countp_tri"]
        assert t.rows == [(1, 1), (2, 1), (3, 2), (4, 1), (5, 1)]

    def test_where_filters_focal_nodes(self, two_triangles):
        eng = QueryEngine(two_triangles)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID >= 4 ORDER BY ID"
        )
        assert [r[0] for r in t.rows] == [4, 5]

    def test_plain_attribute_column(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_node(2, label="B")
        eng = QueryEngine(g)
        t = eng.execute("SELECT ID, label FROM nodes ORDER BY ID")
        assert t.rows == [(1, "A"), (2, "B")]

    def test_multiple_aggregates_one_query(self, two_triangles):
        eng = QueryEngine(two_triangles)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) AS near, "
            "COUNTP(tri, SUBGRAPH(ID, 2)) AS far FROM nodes ORDER BY ID"
        )
        near = dict(zip(t.column("ID"), t.column("near")))
        far = dict(zip(t.column("ID"), t.column("far")))
        assert near[1] == 1 and far[1] == 2

    def test_order_by_aggregate_desc_limit(self, two_triangles):
        eng = QueryEngine(two_triangles)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) AS c FROM nodes "
            "ORDER BY c DESC LIMIT 1"
        )
        assert t.rows == [(3, 2)]

    def test_unknown_pattern_rejected(self, two_triangles):
        eng = QueryEngine(two_triangles)
        with pytest.raises(QueryError):
            eng.execute("SELECT COUNTP(nope, SUBGRAPH(ID, 1)) FROM nodes")

    def test_unknown_alias_rejected(self, two_triangles):
        eng = QueryEngine(two_triangles)
        with pytest.raises(QueryError):
            eng.execute("SELECT z.ID FROM nodes AS n1")

    def test_pairwise_neighborhood_needs_pair_query(self, two_triangles):
        eng = QueryEngine(two_triangles)
        with pytest.raises(QueryError):
            eng.execute(
                "SELECT COUNTP(single_edge, SUBGRAPH-INTERSECTION(ID, ID, 1)) FROM nodes"
            )

    def test_rnd_deterministic_per_engine_seed(self, two_triangles):
        eng = QueryEngine(two_triangles, seed=5)
        q = "SELECT ID FROM nodes WHERE RND() < 0.5"
        assert eng.execute(q) == eng.execute(q)
        other = QueryEngine(two_triangles, seed=6)
        # Different seed: possibly (and here, actually) different rows.
        assert {r for r in other.execute(q)} != set() or True


class TestTableOneQueries:
    """The four example rows of Table I, verified end to end."""

    def test_row1_single_node_census(self, two_triangles):
        eng = QueryEngine(two_triangles)
        t = eng.execute("SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID")
        # |N_2(n)| for each node of the bowtie graph.
        assert dict(t.rows)[1] == 5  # everything within 2 hops of 1

    def test_row2_pairwise_edge_census(self, two_triangles):
        eng = QueryEngine(two_triangles)
        t = eng.execute(
            "SELECT n1.ID, n2.ID, "
            "COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID"
        )
        counts = {(r[0], r[1]): r[2] for r in t.rows}
        # N_1(2) ∩ N_1(1) = {1,2,3}: edges 1-2, 2-3, 1-3.
        assert counts[(2, 1)] == 3
        # N_1(4) ∩ N_1(1) = {3}: no edges.
        assert counts[(4, 1)] == 0

    def test_row3_square_census(self):
        g = Graph()
        for u, v in [(1, 2), (2, 3), (3, 4), (4, 1)]:
            g.add_edge(u, v)
        eng = QueryEngine(g)
        t = eng.execute("SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID")
        assert all(c == 1 for _id, c in t.rows)

    def test_row4_coordinator_census(self):
        g = Graph(directed=True)
        for i in range(5):
            g.add_node(i, label="X")
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(3, 1)
        eng = QueryEngine(g)
        eng.execute_script(
            """
            PATTERN triad {
                ?A->?B; ?B->?C; ?A!->?C;
                [?A.LABEL=?B.LABEL];
                [?B.LABEL=?C.LABEL];
                SUBPATTERN coordinator {?B;}
            }
            """
        )
        t = eng.execute(
            "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes ORDER BY ID"
        )
        counts = dict(t.rows)
        assert counts[1] == 2  # 0->1->2 and 3->1->2
        assert counts[0] == 0


class TestScripts:
    def test_script_returns_one_table_per_select(self, two_triangles):
        eng = QueryEngine(two_triangles)
        results = eng.execute_script(
            """
            PATTERN tri {?A-?B; ?B-?C; ?A-?C;}
            SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes;
            SELECT ID FROM nodes WHERE ID = 3;
            """
        )
        assert len(results) == 2
        assert results[1].rows == [(3,)]

    def test_define_pattern_object(self, two_triangles):
        from repro.matching.pattern import Pattern

        eng = QueryEngine(two_triangles)
        p = Pattern("mine")
        p.add_edge("A", "B")
        eng.define_pattern(p)
        t = eng.execute("SELECT ID, COUNTP(mine, SUBGRAPH(ID, 0)) FROM nodes")
        assert len(t) == 5

    def test_define_pattern_bad_type(self, two_triangles):
        eng = QueryEngine(two_triangles)
        with pytest.raises(QueryError):
            eng.define_pattern(42)


class TestAlgorithmPinning:
    def test_all_algorithms_agree_through_engine(self, two_triangles):
        results = []
        for algorithm in ("nd-bas", "nd-pvot", "pt-opt"):
            eng = QueryEngine(two_triangles, algorithm=algorithm)
            eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
            t = eng.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID")
            results.append(t.rows)
        assert results[0] == results[1] == results[2]

    def test_pairwise_algorithms_agree(self, two_triangles):
        rows = []
        for pa in ("nd", "pt"):
            eng = QueryEngine(two_triangles, pairwise_algorithm=pa)
            t = eng.execute(
                "SELECT n1.ID, n2.ID, "
                "COUNTP(single_node, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) "
                "FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID ORDER BY n1.ID, n2.ID"
            )
            rows.append(t.rows)
        assert rows[0] == rows[1]


class TestDiskGraphBackend:
    def test_engine_runs_on_disk_graph(self, tmp_path):
        from repro.storage import DiskGraph

        mem = labeled_preferential_attachment(60, m=2, seed=3)
        store = DiskGraph.create(tmp_path / "g.db", mem)
        eng_mem = QueryEngine(mem)
        eng_disk = QueryEngine(store)
        q = "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID"
        assert eng_mem.execute(q) == eng_disk.execute(q)


class TestCSRBackendAndWorkers:
    Q = "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) AS c FROM nodes ORDER BY ID"

    def test_csr_backend_matches_dict(self):
        g = labeled_preferential_attachment(50, m=2, seed=4)
        assert QueryEngine(g).execute(self.Q) == QueryEngine(
            g, backend="csr"
        ).execute(self.Q)

    def test_workers_match_serial(self):
        g = labeled_preferential_attachment(50, m=2, seed=4)
        assert QueryEngine(g).execute(self.Q) == QueryEngine(
            g, backend="csr", workers=4
        ).execute(self.Q)

    def test_unknown_backend_rejected(self):
        from repro.errors import QueryError

        g = labeled_preferential_attachment(10, m=2, seed=0)
        with pytest.raises(QueryError):
            QueryEngine(g, backend="columnar")

    def test_refresh_snapshot_picks_up_mutations(self):
        g = labeled_preferential_attachment(30, m=2, seed=2)
        eng = QueryEngine(g, backend="csr")
        before = eng.execute(self.Q)
        node = g.num_nodes
        g.add_node(node, label="A")
        eng.refresh_snapshot()
        after = eng.execute(self.Q)
        assert len(after.rows) == len(before.rows) + 1
