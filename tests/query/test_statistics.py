"""Tests for GraphStatistics."""

from repro.graph.generators import labeled_preferential_attachment
from repro.graph.graph import Graph
from repro.query.statistics import GraphStatistics


class TestStatistics:
    def test_counts(self):
        g = labeled_preferential_attachment(100, m=3, seed=1)
        stats = GraphStatistics(g)
        assert stats.num_nodes == 100
        assert stats.num_edges == g.num_edges
        assert stats.num_labels == 4
        assert stats.max_degree >= stats.avg_degree

    def test_label_selectivity(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_node(2, label="A")
        g.add_node(3, label="B")
        g.add_node(4)
        stats = GraphStatistics(g)
        assert stats.label_selectivity("A") == 0.5
        assert stats.label_selectivity("Z") == 0.0

    def test_empty_graph(self):
        stats = GraphStatistics(Graph())
        assert stats.num_nodes == 0
        assert stats.avg_degree == 0.0
        assert stats.label_selectivity("A") == 0.0

    def test_summary_keys(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        s = GraphStatistics(g).summary()
        assert s["directed"] is True
        assert set(s) == {"nodes", "edges", "avg_degree", "max_degree", "labels", "directed"}
