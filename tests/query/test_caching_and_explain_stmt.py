"""Tests for the EXPLAIN statement and the engine's aggregate cache."""

import pytest

from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.query.engine import QueryEngine


class TestExplainStatement:
    def test_explain_in_script_returns_plan_table(self):
        g = preferential_attachment(20, m=2, seed=0)
        eng = QueryEngine(g)
        results = eng.execute_script(
            "EXPLAIN SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes;"
        )
        assert len(results) == 1
        table = results[0]
        assert table.columns == ["plan"]
        text = "\n".join(row[0] for row in table)
        assert "SCAN nodes" in text and "CENSUS" in text

    def test_explain_does_not_run_the_census(self):
        g = preferential_attachment(20, m=2, seed=0)
        eng = QueryEngine(g, cache=True)
        eng.execute_script("EXPLAIN SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes")
        assert eng.cache_misses == 0  # no aggregate evaluated

    def test_explain_mixed_with_select(self):
        g = Graph()
        g.add_edge(1, 2)
        eng = QueryEngine(g)
        results = eng.execute_script(
            """
            EXPLAIN SELECT ID FROM nodes;
            SELECT ID FROM nodes ORDER BY ID;
            """
        )
        assert results[0].columns == ["plan"]
        assert results[1].rows == [(1,), (2,)]


class TestAggregateCache:
    @pytest.fixture
    def engine(self):
        g = preferential_attachment(40, m=2, seed=1)
        return QueryEngine(g, cache=True)

    def test_repeat_query_hits_cache(self, engine):
        q = "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes"
        first = engine.execute(q)
        assert (engine.cache_hits, engine.cache_misses) == (0, 1)
        second = engine.execute(q)
        assert (engine.cache_hits, engine.cache_misses) == (1, 1)
        assert first == second

    def test_different_radius_misses(self, engine):
        engine.execute("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes")
        engine.execute("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes")
        assert engine.cache_misses == 2

    def test_different_focal_set_misses(self, engine):
        engine.execute("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes")
        engine.execute("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 5")
        assert engine.cache_misses == 2

    def test_pattern_redefinition_invalidates(self, engine):
        q = "SELECT COUNTP(mine, SUBGRAPH(ID, 1)) FROM nodes"
        engine.define_pattern("PATTERN mine {?A-?B;}")
        engine.execute(q)
        engine.define_pattern("PATTERN mine {?A-?B; ?B-?C;}")
        engine.execute(q)
        assert engine.cache_hits == 0
        assert engine.cache_misses == 2

    def test_clear_cache(self, engine):
        q = "SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes"
        engine.execute(q)
        engine.clear_cache()
        engine.execute(q)
        assert engine.cache_misses == 2

    def test_disabled_by_default(self):
        g = preferential_attachment(20, m=2, seed=2)
        eng = QueryEngine(g)
        q = "SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes"
        eng.execute(q)
        eng.execute(q)
        assert eng.cache_hits == 0 and eng.cache_misses == 0

    def test_pairwise_cache(self):
        g = preferential_attachment(15, m=2, seed=3)
        eng = QueryEngine(g, cache=True)
        q = ("SELECT n1.ID, COUNTP(single_node, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) "
             "FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID")
        a = eng.execute(q)
        b = eng.execute(q)
        assert a == b
        assert eng.cache_hits == 1


class TestCacheCorrectness:
    """The cache must never serve a result the current graph/catalog
    would not produce."""

    TRI_Q = "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes"

    @staticmethod
    def path_graph(n=6):
        g = Graph()
        for i in range(n):
            g.add_node(i, label="U")
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g

    def test_clear_cache_after_mutation_gives_fresh_counts(self):
        g = self.path_graph()
        eng = QueryEngine(g, cache=True)
        before = eng.execute(self.TRI_Q)
        assert all(row[1] == 0 for row in before)  # a path has no triangles
        g.add_edge(0, 2)  # close a triangle
        eng.clear_cache()
        after = eng.execute(self.TRI_Q)
        counts = {row[0]: row[1] for row in after}
        assert counts[0] == counts[1] == counts[2] == 1
        assert eng.cache_misses == 2  # both evaluations were real

    def test_in_place_mutation_invalidates_without_clear_cache(self):
        # Regression: the cache key includes the graph mutation version,
        # so mutating the graph in place (no clear_cache(), no
        # refresh_snapshot()) must yield fresh counts, not the cached
        # pre-mutation ones.
        g = self.path_graph()
        eng = QueryEngine(g, cache=True)
        before = eng.execute(self.TRI_Q)
        assert all(row[1] == 0 for row in before)
        g.add_edge(0, 2)  # close a triangle behind the cache's back
        after = eng.execute(self.TRI_Q)
        counts = {row[0]: row[1] for row in after}
        assert counts[0] == counts[1] == counts[2] == 1
        assert eng.cache_hits == 0 and eng.cache_misses == 2

    def test_unmutated_graph_still_hits_cache(self):
        g = self.path_graph()
        eng = QueryEngine(g, cache=True)
        eng.execute(self.TRI_Q)
        eng.execute(self.TRI_Q)
        assert eng.cache_hits == 1

    def test_csr_backend_cache_follows_snapshot_version(self):
        # With the CSR backend queries observe the frozen snapshot, so
        # the cache stays valid (and hot) until refresh_snapshot()
        # re-freezes — at which point fresh counts must be computed.
        g = self.path_graph()
        eng = QueryEngine(g, backend="csr", cache=True)
        eng.execute(self.TRI_Q)
        g.add_edge(0, 2)
        still_snapshot = eng.execute(self.TRI_Q)  # old snapshot, cache ok
        assert all(row[1] == 0 for row in still_snapshot)
        assert eng.cache_hits == 1
        eng.refresh_snapshot()
        fresh = eng.execute(self.TRI_Q)
        counts = {row[0]: row[1] for row in fresh}
        assert counts[0] == counts[1] == counts[2] == 1

    def test_catalog_version_bump_invalidates(self):
        g = self.path_graph()
        eng = QueryEngine(g, cache=True)
        eng.define_pattern("PATTERN mine {?A-?B;}")
        version_before = eng.catalog.version
        q = "SELECT ID, COUNTP(mine, SUBGRAPH(ID, 1)) AS c FROM nodes"
        first = eng.execute(q)
        eng.define_pattern("PATTERN mine {?A-?B; ?B-?C;}")
        assert eng.catalog.version > version_before
        second = eng.execute(q)
        assert eng.cache_hits == 0 and eng.cache_misses == 2
        assert first != second  # edge census vs wedge census

    def test_hit_miss_counters_mirrored_into_registry(self):
        from repro.obs import ObsContext

        g = self.path_graph()
        obs = ObsContext()
        eng = QueryEngine(g, cache=True, obs=obs)
        eng.execute(self.TRI_Q)
        eng.execute(self.TRI_Q)
        snap = obs.registry.snapshot()
        assert snap["counters"]["query.aggregate_cache.misses"] == 1
        assert snap["counters"]["query.aggregate_cache.hits"] == 1
        # the engine's own counters are unchanged by the mirroring
        assert (eng.cache_hits, eng.cache_misses) == (1, 1)
