"""Tests for query plan explanation."""

from repro.graph.generators import labeled_preferential_attachment, preferential_attachment
from repro.query.engine import QueryEngine


class TestExplain:
    def test_single_table_plan(self):
        g = preferential_attachment(40, m=2, seed=0)
        eng = QueryEngine(g)
        plan = eng.explain("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes")
        assert "SCAN nodes" in plan
        assert "algorithm=nd-pvot" in plan
        assert "node-driven" in plan
        assert "expected matches" in plan
        assert "GRAPH: 40 nodes" in plan

    def test_selective_pattern_picks_pattern_driven(self):
        g = labeled_preferential_attachment(40, m=2, seed=0)
        eng = QueryEngine(g)
        plan = eng.explain("SELECT COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes")
        assert "algorithm=pt-opt" in plan
        assert "pattern-driven" in plan

    def test_pinned_algorithm_reported(self):
        g = preferential_attachment(20, m=2, seed=0)
        eng = QueryEngine(g, algorithm="pt-bas")
        plan = eng.explain("SELECT COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes")
        assert "algorithm=pt-bas" in plan
        assert "pinned" in plan

    def test_pair_query_plan(self):
        g = preferential_attachment(20, m=2, seed=0)
        eng = QueryEngine(g)
        plan = eng.explain(
            "SELECT n1.ID, COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID"
        )
        assert "SCAN pairs" in plan
        assert "PAIRWISE CENSUS" in plan
        assert "intersection" in plan
        assert "filtered by WHERE" in plan

    def test_subpattern_and_sort_reported(self):
        g = preferential_attachment(20, m=2, seed=0)
        eng = QueryEngine(g)
        eng.define_pattern(
            "PATTERN triad {?A->?B; ?B->?C; ?A!->?C; SUBPATTERN mid {?B;}}"
        )
        plan = eng.explain(
            "SELECT ID, COUNTSP(mid, triad, SUBGRAPH(ID, 0)) AS c FROM nodes "
            "ORDER BY c DESC LIMIT 5"
        )
        assert "SUBPATTERN mid" in plan
        assert "SORT BY c DESC" in plan
        assert "LIMIT 5" in plan
        assert "1 negated" in plan

    def test_explain_does_not_execute(self):
        # A graph where execution would be slow-ish; explain is instant
        # and, more importantly, has no side effects on the engine.
        g = preferential_attachment(30, m=2, seed=1)
        eng = QueryEngine(g)
        before = eng.catalog.names()
        eng.explain("SELECT COUNTP(clq4-unlb, SUBGRAPH(ID, 3)) FROM nodes")
        assert eng.catalog.names() == before
