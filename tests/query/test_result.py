"""Tests for ResultTable."""

import pytest

from repro.errors import QueryError
from repro.query.result import ResultTable


@pytest.fixture
def table():
    return ResultTable(["ID", "count"], [(1, 5), (2, 9), (3, 1)])


class TestBasics:
    def test_width_checked(self):
        with pytest.raises(QueryError):
            ResultTable(["a"], [(1, 2)])

    def test_column_access_case_insensitive(self, table):
        assert table.column("id") == [1, 2, 3]
        assert table.column("COUNT") == [5, 9, 1]

    def test_unknown_column(self, table):
        with pytest.raises(QueryError):
            table.column("nope")

    def test_to_dicts(self, table):
        assert table.to_dicts()[0] == {"ID": 1, "count": 5}

    def test_iteration_and_len(self, table):
        assert len(table) == 3
        assert list(table)[1] == (2, 9)
        assert table[0] == (1, 5)


class TestSorting:
    def test_sorted_by(self, table):
        assert table.sorted_by("count").column("count") == [1, 5, 9]
        assert table.sorted_by("count", descending=True).column("count") == [9, 5, 1]

    def test_top(self, table):
        top = table.top(2, by="count")
        assert top.rows == [(2, 9), (1, 5)]

    def test_head(self, table):
        assert table.head(1).rows == [(1, 5)]

    def test_sort_does_not_mutate(self, table):
        table.sorted_by("count")
        assert table.rows[0] == (1, 5)


class TestSerialization:
    def test_csv_round_trip(self, table, tmp_path):
        import csv

        path = tmp_path / "t.csv"
        table.to_csv(path)
        with open(path) as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["ID", "count"]
        assert rows[1] == ["1", "5"]
        assert len(rows) == 4

    def test_json_round_trip(self, table):
        text = table.to_json()
        back = ResultTable.from_json(text)
        assert back == table

    def test_json_writes_file(self, table, tmp_path):
        path = tmp_path / "t.json"
        table.to_json(path)
        assert ResultTable.from_json(path.read_text()) == table


class TestRendering:
    def test_render_contains_all_cells(self, table):
        text = table.render()
        for cell in ("ID", "count", "1", "9"):
            assert cell in text

    def test_render_truncates(self):
        t = ResultTable(["x"], [(i,) for i in range(30)])
        text = t.render(max_rows=5)
        assert "more rows" in text

    def test_equality(self, table):
        same = ResultTable(["ID", "count"], [(1, 5), (2, 9), (3, 1)])
        assert table == same
        assert table != ResultTable(["ID", "count"], [(1, 5)])
