"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.graph.io import load_json


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


class TestGenerate:
    def test_pa_labeled(self, tmp_path):
        path = tmp_path / "g.json"
        code, text = run_cli(["generate", str(path), "--nodes", "50", "--m", "2"])
        assert code == 0
        assert "50 nodes" in text
        g = load_json(path)
        assert g.num_nodes == 50
        assert len(g.labels()) == 4

    def test_unlabeled(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--labels", "0"])
        assert load_json(path).labels() == {None}

    def test_er_model(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--model", "er", "--nodes", "30", "--m", "2"])
        assert load_json(path).num_edges == 60

    def test_deterministic_seed(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        run_cli(["generate", str(p1), "--nodes", "40", "--seed", "7"])
        run_cli(["generate", str(p2), "--nodes", "40", "--seed", "7"])
        assert p1.read_text() == p2.read_text()


class TestStatsAndQuery:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "60", "--m", "2", "--seed", "1"])
        return str(path)

    def test_stats(self, graph_file):
        code, text = run_cli(["stats", graph_file])
        assert code == 0
        assert "nodes: 60" in text
        assert "labels: 4" in text

    def test_inline_query(self, graph_file):
        code, text = run_cli([
            "query", graph_file, "-e",
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
            "FROM nodes ORDER BY c DESC LIMIT 3",
        ])
        assert code == 0
        assert "c" in text.splitlines()[0]

    def test_script_file(self, graph_file, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text(
            "PATTERN wedge {?A-?B; ?B-?C;}\n"
            "SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2;\n"
        )
        code, text = run_cli(["query", graph_file, str(script)])
        assert code == 0
        assert "countp_wedge" in text

    def test_query_requires_input(self, graph_file):
        with pytest.raises(SystemExit):
            run_cli(["query", graph_file])


class TestBulkloadAndTopk:
    def test_bulkload_then_query_db(self, tmp_path):
        json_path = tmp_path / "g.json"
        db_path = tmp_path / "g.db"
        run_cli(["generate", str(json_path), "--nodes", "40", "--m", "2"])
        code, text = run_cli(["bulkload", str(json_path), str(db_path)])
        assert code == 0 and "bulk-loaded" in text
        code, text = run_cli(["stats", str(db_path)])
        assert code == 0 and "nodes: 40" in text

    def test_topk(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "80", "--m", "3", "--labels", "0"])
        code, text = run_cli(["topk", str(path), "--pattern", "clq3-unlb",
                              "--radius", "1", "-k", "3"])
        assert code == 0
        assert "top 3 egos" in text
        assert len([ln for ln in text.splitlines() if ln.startswith("  ")]) == 3

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])

    def test_explain_command(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--m", "2"])
        code, text = run_cli([
            "explain", str(path),
            "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes",
        ])
        assert code == 0
        assert "CENSUS" in text and "algorithm=" in text


class TestEngineKnobs:
    """--matcher / --pairwise-algorithm / --cache reach the engine."""

    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--m", "2", "--seed", "5"])
        return str(path)

    QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
             "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")

    def test_matcher_choices_agree(self, graph_file):
        outputs = []
        for matcher in ("cn", "gql", "bruteforce"):
            code, text = run_cli(["query", graph_file, "--matcher", matcher,
                                  "-e", self.QUERY])
            assert code == 0
            outputs.append(text)
        assert outputs[0] == outputs[1] == outputs[2]

    def test_bad_matcher_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            run_cli(["query", graph_file, "--matcher", "magic", "-e", self.QUERY])

    def test_pairwise_algorithm_choices_agree(self, graph_file):
        pair_q = ("SELECT n1.ID, n2.ID, "
                  "COUNTP(single_node, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) AS c "
                  "FROM nodes AS n1, nodes AS n2 "
                  "WHERE n1.ID < 3 AND n2.ID = n1.ID + 1")
        results = []
        for algo in ("nd", "pt"):
            code, text = run_cli(["query", graph_file,
                                  "--pairwise-algorithm", algo, "-e", pair_q])
            assert code == 0
            results.append(text)
        assert results[0] == results[1]

    def test_cache_flag_reuses_aggregate(self, graph_file, tmp_path):
        script = tmp_path / "twice.sql"
        script.write_text(f"{self.QUERY};\n{self.QUERY};\n")
        code, text = run_cli(["query", graph_file, str(script),
                              "--cache", "--profile"])
        assert code == 0
        assert "query.aggregate_cache.hits" in text
        assert "query.aggregate_cache.misses" in text


class TestProfileAndMetrics:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--m", "2", "--seed", "5"])
        return str(path)

    def test_profile_prints_span_tree(self, graph_file):
        code, text = run_cli([
            "query", graph_file, "--profile", "-e",
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes LIMIT 2",
        ])
        assert code == 0
        assert "query.execute" in text
        assert "query.scan" in text
        assert "query.aggregate" in text
        assert "counters:" in text

    def test_metrics_out_json(self, graph_file, tmp_path):
        import json

        path = tmp_path / "m.json"
        code, _ = run_cli([
            "query", graph_file, "--metrics-out", str(path), "-e",
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes LIMIT 2",
        ])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["counters"]["query.focal_bindings"] == 30

    def test_metrics_out_prometheus(self, graph_file, tmp_path):
        path = tmp_path / "m.prom"
        code, _ = run_cli([
            "query", graph_file, "--metrics-out", str(path),
            "--metrics-format", "prometheus", "-e",
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes LIMIT 2",
        ])
        assert code == 0
        text = path.read_text()
        assert "# TYPE repro_query_focal_bindings_total counter" in text
        assert "repro_query_focal_bindings_total 30" in text

    def test_topk_profile(self, graph_file):
        code, text = run_cli(["topk", graph_file, "--pattern", "clq3-unlb",
                              "--radius", "1", "-k", "2", "--profile"])
        assert code == 0
        assert "census.topk" in text
        assert "census.topk.exact_evaluations" in text

    def test_log_level_flag(self, graph_file):
        import logging

        code, _ = run_cli(["--log-level", "debug", "stats", graph_file])
        assert code == 0
        logger = logging.getLogger("repro")
        assert logger.level == logging.DEBUG
        assert any(getattr(h, "_repro_configured", False)
                   for h in logger.handlers)


class TestBackendAndWorkers:
    """--backend {dict,csr} and --workers N reach the census executor."""

    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "40", "--m", "2", "--seed", "3"])
        return str(path)

    QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) AS c "
             "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")

    def test_backends_agree(self, graph_file):
        outputs = []
        for backend in ("dict", "csr"):
            code, text = run_cli(["query", graph_file, "--backend", backend,
                                  "-e", self.QUERY])
            assert code == 0
            outputs.append(text)
        assert outputs[0] == outputs[1]

    def test_workers_agree(self, graph_file):
        outputs = []
        for workers in ("1", "4"):
            code, text = run_cli(["query", graph_file, "--backend", "csr",
                                  "--workers", workers, "-e", self.QUERY])
            assert code == 0
            outputs.append(text)
        assert outputs[0] == outputs[1]

    def test_bad_backend_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            run_cli(["query", graph_file, "--backend", "sparse",
                     "-e", self.QUERY])

    def test_parallel_explain_analyze_reports_chunks(self, graph_file):
        code, text = run_cli([
            "query", graph_file, "--backend", "csr", "--workers", "4", "-e",
            "EXPLAIN ANALYZE " + self.QUERY,
        ])
        assert code == 0
        assert "focal chunks=4" in text
        assert "workers=4" in text
        assert "PARALLEL:" in text
        assert "critical path" in text

    def test_explain_shows_parallel_plan(self, graph_file):
        code, text = run_cli(["explain", graph_file, self.QUERY,
                              "--backend", "csr", "--workers", "4"])
        assert code == 0
        assert "workers=4 (focal chunks over a worker pool)" in text


class TestExitCodeContract:
    """The degradation contract at the CLI boundary.

    A blown budget without ``--degrade`` is an *error*: exit 2 plus a
    hint pointing at the flag.  With ``--degrade`` the same run is a
    *success*: exit 0 with the result visibly marked partial.  Scripts
    and CI jobs branch on these codes, so they are a contract, not an
    implementation detail.
    """

    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "60", "--m", "3", "--seed", "9"])
        return str(path)

    QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) AS c "
             "FROM nodes ORDER BY c DESC, ID ASC LIMIT 3")

    def test_blown_budget_without_degrade_exits_2_with_hint(self, graph_file):
        code, text = run_cli(["query", graph_file, "--budget", "3",
                              "-e", self.QUERY])
        assert code == 2
        assert "error:" in text
        assert "--degrade" in text, "the error must point at the way out"
        assert "[partial result]" not in text

    def test_blown_budget_with_degrade_exits_0_marked_partial(self, graph_file):
        code, text = run_cli(["query", graph_file, "--budget", "3", "--degrade",
                              "-e", self.QUERY])
        assert code == 0
        assert "[partial result]" in text
        assert "error:" not in text

    def test_ample_budget_exits_0_unmarked(self, graph_file):
        code, text = run_cli(["query", graph_file, "--budget", "100000000",
                              "-e", self.QUERY])
        assert code == 0
        assert "[partial result]" not in text
