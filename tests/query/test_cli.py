"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main
from repro.graph.io import load_json


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


class TestGenerate:
    def test_pa_labeled(self, tmp_path):
        path = tmp_path / "g.json"
        code, text = run_cli(["generate", str(path), "--nodes", "50", "--m", "2"])
        assert code == 0
        assert "50 nodes" in text
        g = load_json(path)
        assert g.num_nodes == 50
        assert len(g.labels()) == 4

    def test_unlabeled(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--labels", "0"])
        assert load_json(path).labels() == {None}

    def test_er_model(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--model", "er", "--nodes", "30", "--m", "2"])
        assert load_json(path).num_edges == 60

    def test_deterministic_seed(self, tmp_path):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        run_cli(["generate", str(p1), "--nodes", "40", "--seed", "7"])
        run_cli(["generate", str(p2), "--nodes", "40", "--seed", "7"])
        assert p1.read_text() == p2.read_text()


class TestStatsAndQuery:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "60", "--m", "2", "--seed", "1"])
        return str(path)

    def test_stats(self, graph_file):
        code, text = run_cli(["stats", graph_file])
        assert code == 0
        assert "nodes: 60" in text
        assert "labels: 4" in text

    def test_inline_query(self, graph_file):
        code, text = run_cli([
            "query", graph_file, "-e",
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
            "FROM nodes ORDER BY c DESC LIMIT 3",
        ])
        assert code == 0
        assert "c" in text.splitlines()[0]

    def test_script_file(self, graph_file, tmp_path):
        script = tmp_path / "q.sql"
        script.write_text(
            "PATTERN wedge {?A-?B; ?B-?C;}\n"
            "SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2;\n"
        )
        code, text = run_cli(["query", graph_file, str(script)])
        assert code == 0
        assert "countp_wedge" in text

    def test_query_requires_input(self, graph_file):
        with pytest.raises(SystemExit):
            run_cli(["query", graph_file])


class TestBulkloadAndTopk:
    def test_bulkload_then_query_db(self, tmp_path):
        json_path = tmp_path / "g.json"
        db_path = tmp_path / "g.db"
        run_cli(["generate", str(json_path), "--nodes", "40", "--m", "2"])
        code, text = run_cli(["bulkload", str(json_path), str(db_path)])
        assert code == 0 and "bulk-loaded" in text
        code, text = run_cli(["stats", str(db_path)])
        assert code == 0 and "nodes: 40" in text

    def test_topk(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "80", "--m", "3", "--labels", "0"])
        code, text = run_cli(["topk", str(path), "--pattern", "clq3-unlb",
                              "--radius", "1", "-k", "3"])
        assert code == 0
        assert "top 3 egos" in text
        assert len([l for l in text.splitlines() if l.startswith("  ")]) == 3

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])

    def test_explain_command(self, tmp_path):
        path = tmp_path / "g.json"
        run_cli(["generate", str(path), "--nodes", "30", "--m", "2"])
        code, text = run_cli([
            "explain", str(path),
            "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes",
        ])
        assert code == 0
        assert "CENSUS" in text and "algorithm=" in text
