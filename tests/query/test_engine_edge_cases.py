"""Edge-case coverage for the query engine."""

import pytest

from repro.errors import ParseError, QueryError
from repro.graph.graph import Graph
from repro.query.engine import QueryEngine


@pytest.fixture
def bowtie():
    g = Graph()
    for u, v in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
        g.add_edge(u, v)
    return g


class TestPairQueriesWithNodeAggregates:
    def test_subgraph_aggregate_inside_pair_query(self, bowtie):
        """A COUNTP over SUBGRAPH(n1.ID, k) is legal in a pair query —
        the census runs once per distinct n1 value."""
        eng = QueryEngine(bowtie)
        eng.define_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        t = eng.execute(
            "SELECT n1.ID, n2.ID, COUNTP(tri, SUBGRAPH(n1.ID, 1)) AS c "
            "FROM nodes AS n1, nodes AS n2 "
            "WHERE n1.ID = 3 AND n2.ID < 3 ORDER BY n2.ID"
        )
        assert [r[0] for r in t.rows] == [3, 3]
        assert all(r[2] == 2 for r in t.rows)

    def test_mixed_subgraph_and_pairwise_aggregates(self, bowtie):
        eng = QueryEngine(bowtie)
        t = eng.execute(
            "SELECT n1.ID, n2.ID, "
            "COUNTP(single_node, SUBGRAPH(n1.ID, 1)) AS around1, "
            "COUNTP(single_node, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) AS common "
            "FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 1 AND n2.ID = 2"
        )
        row = t.rows[0]
        assert row[2] == 3  # |N_1(1)| = {1,2,3}
        assert row[3] == 3  # N_1(1) == N_1(2) on the triangle


class TestSortingErrors:
    def test_order_by_unknown_column(self, bowtie):
        eng = QueryEngine(bowtie)
        with pytest.raises(QueryError, match="no column"):
            eng.execute("SELECT ID FROM nodes ORDER BY nope")

    def test_limit_zero(self, bowtie):
        eng = QueryEngine(bowtie)
        t = eng.execute("SELECT ID FROM nodes LIMIT 0")
        assert len(t) == 0


class TestParserBoundaries:
    def test_parse_query_rejects_explain(self):
        from repro.lang.parser import parse_query

        with pytest.raises(ParseError):
            parse_query("EXPLAIN SELECT ID FROM nodes")

    def test_parse_query_rejects_pattern(self):
        from repro.lang.parser import parse_query

        with pytest.raises(ParseError):
            parse_query("PATTERN p {?A;}")

    def test_where_true_literal(self, bowtie):
        eng = QueryEngine(bowtie)
        t = eng.execute("SELECT ID FROM nodes WHERE TRUE")
        assert len(t) == 5

    def test_where_false_literal(self, bowtie):
        eng = QueryEngine(bowtie)
        t = eng.execute("SELECT ID FROM nodes WHERE FALSE")
        assert len(t) == 0


class TestEmptyGraph:
    def test_queries_on_empty_graph(self):
        eng = QueryEngine(Graph())
        t = eng.execute("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) FROM nodes")
        assert len(t) == 0

    def test_pair_query_on_singleton(self):
        g = Graph()
        g.add_node(1)
        eng = QueryEngine(g)
        t = eng.execute(
            "SELECT n1.ID, COUNTP(single_node, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2 WHERE n1.ID != n2.ID"
        )
        assert len(t) == 0
