"""Tests for EXPLAIN ANALYZE and bind-time ORDER BY validation."""

import pytest

from repro.errors import QueryError
from repro.graph.generators import preferential_attachment
from repro.graph.graph import Graph
from repro.lang.parser import parse_script
from repro.query.engine import QueryEngine


def triangle_chain():
    """A small graph with a few triangles at known spots."""
    g = Graph()
    for i in range(10):
        g.add_node(i, label="U")
    for i in range(9):
        g.add_edge(i, i + 1)
    g.add_edge(0, 2)
    g.add_edge(3, 5)
    return g


class TestParsing:
    def test_explain_analyze_sets_flag(self):
        (stmt,) = parse_script("EXPLAIN ANALYZE SELECT ID FROM nodes")
        assert stmt.analyze is True

    def test_plain_explain_does_not(self):
        (stmt,) = parse_script("EXPLAIN SELECT ID FROM nodes")
        assert stmt.analyze is False

    def test_case_insensitive(self):
        (stmt,) = parse_script("explain analyze select ID from nodes")
        assert stmt.analyze is True


class TestExplainAnalyze:
    SCRIPT = ("EXPLAIN ANALYZE SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) "
              "AS c FROM nodes ORDER BY c DESC LIMIT 3;")

    def test_returns_annotated_plan_table(self):
        eng = QueryEngine(triangle_chain())
        (table,) = eng.execute_script(self.SCRIPT)
        assert table.columns == ["plan"]
        text = "\n".join(row[0] for row in table)
        assert "SCAN nodes" in text
        assert "(actual:" in text
        assert "rows=10" in text
        assert text.splitlines()[-1].startswith("TOTAL:")

    def test_census_line_carries_counters(self):
        eng = QueryEngine(triangle_chain())
        (table,) = eng.execute_script(self.SCRIPT)
        census_line = next(row[0] for row in table if row[0].startswith("CENSUS"))
        assert "matches=2" in census_line  # the two planted triangles
        assert "ran census." in census_line

    def test_actually_executes(self):
        eng = QueryEngine(triangle_chain(), cache=True)
        eng.execute_script(self.SCRIPT)
        assert eng.cache_misses == 1  # the census really ran

    def test_cache_hit_is_reported(self):
        eng = QueryEngine(triangle_chain(), cache=True)
        eng.execute_script(self.SCRIPT)
        (table,) = eng.execute_script(self.SCRIPT)
        text = "\n".join(row[0] for row in table)
        assert "served from aggregate cache" in text
        assert "AGGREGATE CACHE: 1 hits" in text

    def test_ambient_obs_untouched(self):
        from repro.obs import current_obs

        eng = QueryEngine(triangle_chain())
        eng.execute_script(self.SCRIPT)
        assert current_obs().enabled is False
        assert eng.obs is None

    def test_disk_graph_reports_storage(self, tmp_path):
        from repro.storage import DiskGraph

        DiskGraph.create(tmp_path / "g.db", triangle_chain()).close()
        # Re-open so the record/page caches start cold and the query
        # actually performs I/O worth reporting.
        with DiskGraph.open(tmp_path / "g.db") as store:
            eng = QueryEngine(store)
            (table,) = eng.execute_script(self.SCRIPT)
            text = "\n".join(row[0] for row in table)
            assert "STORAGE: page cache" in text
            assert "hit rate" in text
            assert "pages read" in text

    def test_pairwise_reasoning_in_plan(self):
        eng = QueryEngine(triangle_chain(), pairwise_algorithm="pt")
        plan = eng.explain(
            "SELECT n1.ID, COUNTP(single_node, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2"
        )
        line = next(ln for ln in plan.splitlines()
                    if ln.startswith("PAIRWISE CENSUS"))
        assert "strategy=pt" in line
        assert "[" in line and "coverage sets" in line

    def test_pairwise_nd_reasoning(self):
        eng = QueryEngine(triangle_chain(), pairwise_algorithm="nd")
        plan = eng.explain(
            "SELECT n1.ID, COUNTP(single_node, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) "
            "FROM nodes AS n1, nodes AS n2"
        )
        line = next(ln for ln in plan.splitlines()
                    if ln.startswith("PAIRWISE CENSUS"))
        assert "strategy=nd" in line and "pivot-index" in line


class TestOrderByValidation:
    def test_unknown_key_rejected_at_bind_time(self):
        eng = QueryEngine(triangle_chain())
        with pytest.raises(QueryError, match="ORDER BY key 'nope' matches no column"):
            eng.execute("SELECT ID FROM nodes ORDER BY nope")

    def test_rejected_before_any_census_runs(self):
        eng = QueryEngine(preferential_attachment(30, m=2, seed=0), cache=True)
        with pytest.raises(QueryError):
            eng.execute(
                "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 2)) AS c "
                "FROM nodes ORDER BY missing"
            )
        assert eng.cache_misses == 0  # validation fired before evaluation

    def test_aggregate_alias_is_valid_key(self):
        eng = QueryEngine(triangle_chain())
        table = eng.execute(
            "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
            "FROM nodes ORDER BY c DESC LIMIT 1"
        )
        assert len(table.rows) == 1

    def test_case_insensitive_key(self):
        eng = QueryEngine(triangle_chain())
        table = eng.execute("SELECT ID FROM nodes ORDER BY id DESC LIMIT 2")
        assert table.rows == [(9,), (8,)]

    def test_default_column_name_is_valid_key(self):
        eng = QueryEngine(triangle_chain())
        (table,) = eng.execute_script(
            "PATTERN wedge {?A-?B; ?B-?C;}\n"
            "SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) FROM nodes "
            "ORDER BY countp_wedge DESC LIMIT 1;"
        )
        assert len(table.rows) == 1
