"""Integration tests for the census daemon over real HTTP.

Each test boots a :class:`CensusServer` on a free port with the handler
threads of the stdlib ``ThreadingHTTPServer`` — the same stack
``repro serve`` runs — and talks to it with ``urllib``.  The last test
is the serving differential: concurrent mixed query/update traffic must
match a serial engine replaying the same update sequence, with no stale
version ever served.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph import Graph
from repro.graph.generators import preferential_attachment
from repro.query.engine import QueryEngine
from repro.server import CensusServer

QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
         "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")


def get(srv, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{srv.port}{path}", timeout=30
    ) as resp:
        return resp.status, dict(resp.headers), resp.read()


def post(srv, path, doc=None, headers=None, raw=None, content_type=None):
    body = raw if raw is not None else json.dumps(doc).encode()
    req = urllib.request.Request(
        f"http://127.0.0.1:{srv.port}{path}",
        data=body,
        headers={"Content-Type": content_type or "application/json",
                 **(headers or {})},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


@pytest.fixture
def server(request):
    """Factory fixture: boot a server, drain it on teardown."""
    started = []

    def boot(graph=None, **kwargs):
        if graph is None:
            graph = preferential_attachment(30, m=2, seed=7)
        kwargs.setdefault("port", 0)
        srv = CensusServer(graph, **kwargs).start()
        started.append(srv)
        return srv

    yield boot
    for srv in started:
        srv.drain(timeout=10)


def wait_until(predicate, timeout=10):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestEndpoints:
    def test_health_names_version_and_load(self, server):
        srv = server()
        status, _, body = get(srv, "/health")
        doc = json.loads(body)
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["graph_version"] == srv.engine.graph_version
        assert doc["active"] == 0

    def test_query_matches_direct_engine_execution(self, server):
        graph = preferential_attachment(30, m=2, seed=7)
        srv = server(graph)
        status, _, doc = post(srv, "/query", {"query": QUERY})
        assert status == 200
        expected = QueryEngine(
            preferential_attachment(30, m=2, seed=7), backend="csr"
        ).execute(QUERY)
        assert doc["columns"] == expected.columns
        assert doc["rows"] == [list(r) for r in expected.rows]
        assert doc["graph_version"] == srv.engine.graph_version
        assert doc["coalesced"] is False

    def test_text_plain_query_body(self, server):
        srv = server()
        status, _, doc = post(
            srv, "/query", raw=QUERY.encode(), content_type="text/plain"
        )
        assert status == 200
        assert doc["columns"] == ["ID", "c"]

    def test_update_bumps_version_and_invalidates(self, server):
        graph = Graph()
        for i in range(3):
            graph.add_edge(i, i + 1)  # a path: no triangles anywhere
        srv = server(graph)
        q = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
             "FROM nodes ORDER BY ID")
        _, _, before = post(srv, "/query", {"query": q})
        assert all(c == 0 for _, c in before["rows"])

        status, _, upd = post(srv, "/update", {"ops": [
            {"op": "add_edge", "u": 0, "v": 2},
        ]})
        assert status == 200
        assert upd["applied"] == 1
        assert upd["graph_version"] == before["graph_version"] + 1

        _, _, after = post(srv, "/query", {"query": q})
        assert after["graph_version"] == upd["graph_version"]
        counts = dict(after["rows"])
        assert counts[1] == 1, "triangle 0-1-2 must be visible immediately"

    def test_error_statuses(self, server):
        srv = server()
        assert post(srv, "/query", {"query": "SELEC"})[0] == 400
        assert post(srv, "/query", {"q": QUERY})[0] == 400
        assert post(srv, "/update", {"ops": []})[0] == 400
        assert post(srv, "/update", {"ops": [{"op": "warp", "node": 1}]})[0] == 400
        assert post(srv, "/nope", {})[0] == 404
        status, _, _ = get(srv, "/health")
        assert status == 200
        try:
            get(srv, "/nowhere")
            assert False, "expected 404"
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_metrics_exposition(self, server):
        srv = server()
        post(srv, "/query", {"query": QUERY})
        status, headers, body = get(srv, "/metrics")
        text = body.decode()
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_server_requests_total" in text
        assert "repro_server_graph_version" in text

    def test_counts_endpoint_requires_maintained(self, server):
        srv = server()
        assert get(srv, "/health")[0] == 200
        try:
            get(srv, "/counts")
            assert False, "expected 404"
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_maintained_census_serves_fresh_counts(self, server):
        graph = Graph()
        for i in range(3):
            graph.add_edge(i, i + 1)
        srv = server(graph, maintain="clq3-unlb", maintain_k=1)
        _, _, body = get(srv, "/counts")
        doc = json.loads(body)
        assert all(c == 0 for c in doc["counts"].values())
        post(srv, "/update", {"ops": [{"op": "add_edge", "u": 0, "v": 2}]})
        _, _, body = get(srv, "/counts")
        doc = json.loads(body)
        assert doc["counts"]["1"] > 0, "maintained counts follow updates"
        health = json.loads(get(srv, "/health")[2])
        assert health["maintained_embeddings"] > 0


class TestGovernedServing:
    def test_blown_budget_is_503_with_hint(self, server):
        srv = server()
        status, _, doc = post(
            srv, "/query", {"query": QUERY, "budget": {"max_ops": 3}}
        )
        assert status == 503
        assert "degrade" in doc["hint"]

    def test_degrade_turns_blown_budget_into_partial_200(self, server):
        srv = server()
        status, _, doc = post(
            srv, "/query",
            {"query": QUERY, "budget": {"max_ops": 3}, "degrade": True},
        )
        assert status == 200
        assert doc["partial"] is True
        assert doc["notes"]
        metrics = get(srv, "/metrics")[2].decode()
        assert "repro_server_partial_total 1" in metrics

    def test_header_budget_overrides(self, server):
        srv = server()
        status, _, doc = post(
            srv, "/query", {"query": QUERY},
            headers={"X-Repro-Max-Ops": "3", "X-Repro-Degrade": "on"},
        )
        assert status == 200
        assert doc.get("partial") is True


class TestConcurrency:
    def _gate_engine(self, srv):
        """Make engine execution block on an event we control."""
        gate = threading.Event()
        entered = threading.Event()
        orig = srv.engine.execute

        def gated(*args, **kwargs):
            entered.set()
            assert gate.wait(timeout=30)
            return orig(*args, **kwargs)

        srv.engine.execute = gated
        return gate, entered

    def test_saturation_answers_429_with_retry_after(self, server):
        srv = server(max_active=1, queue_depth=0, retry_after=3.0)
        gate, entered = self._gate_engine(srv)
        results = []
        t = threading.Thread(
            target=lambda: results.append(post(srv, "/query", {"query": QUERY}))
        )
        t.start()
        assert entered.wait(timeout=10)

        status, headers, doc = post(srv, "/query", {"query": "SELECT ID FROM nodes"})
        assert status == 429
        assert headers["Retry-After"] == "3"
        assert "saturated" in doc["error"]

        gate.set()
        t.join(timeout=30)
        assert results[0][0] == 200
        metrics = get(srv, "/metrics")[2].decode()
        assert "repro_server_rejected_total 1" in metrics

    def test_coalesced_duplicates_execute_census_once(self, server):
        # Cache off: any duplicate that is NOT coalesced would re-run
        # the census and show up in the census.match_units counter.
        srv = server(cache=False, max_active=8, queue_depth=8)
        counters = srv.obs.registry

        def census_runs():
            return counters.counter("census.match_units").value

        post(srv, "/query", {"query": QUERY})  # warm-up, un-coalesced
        runs_per_query = census_runs()
        assert runs_per_query > 0

        gate = threading.Event()
        orig = srv.engine.execute

        def gated(*args, **kwargs):
            assert gate.wait(timeout=30)
            return orig(*args, **kwargs)

        srv.engine.execute = gated

        n = 6
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(post(srv, "/query", {"query": QUERY}))
            )
            for _ in range(n)
        ]
        for t in threads:
            t.start()
        # Release the leader only once every duplicate joined its flight.
        assert wait_until(
            lambda: sum(f.followers for f in srv.coalescer._flights.values())
            == n - 1
        )
        gate.set()
        for t in threads:
            t.join(timeout=30)

        assert [status for status, _, _ in results] == [200] * n
        assert sum(doc["coalesced"] for _, _, doc in results) == n - 1
        assert census_runs() == 2 * runs_per_query, (
            "six concurrent duplicates must run the census exactly once"
        )
        assert counters.counter("server.coalesced").value == n - 1

    def test_drain_finishes_in_flight_then_refuses(self, server):
        srv = server()
        gate, entered = self._gate_engine(srv)
        results = []
        t = threading.Thread(
            target=lambda: results.append(post(srv, "/query", {"query": QUERY}))
        )
        t.start()
        assert entered.wait(timeout=10)

        drained = []
        drainer = threading.Thread(
            target=lambda: drained.append(srv.drain(timeout=30))
        )
        drainer.start()
        assert wait_until(lambda: srv.draining)

        status, _, doc = post(srv, "/query", {"query": QUERY})
        assert status == 503
        assert "draining" in doc["error"]

        gate.set()
        t.join(timeout=30)
        drainer.join(timeout=30)
        assert results[0][0] == 200, "in-flight work finishes during drain"
        assert drained == [True]


class TestDifferential:
    """The acceptance bar: concurrent serving == serial engine replay."""

    def test_concurrent_mixed_traffic_matches_serial_execution(self, server):
        make = lambda: preferential_attachment(30, m=2, seed=11)  # noqa: E731

        # Serial twin: replay the update batches on an identical graph,
        # recording the exact expected table at every version.
        batches = [
            [{"op": "add_edge", "u": 3, "v": 17}],
            [{"op": "add_edge", "u": 5, "v": 23},
             {"op": "add_edge", "u": 5, "v": 29}],
            [{"op": "remove_edge", "u": 3, "v": 17}],
            [{"op": "add_node", "node": 30},
             {"op": "add_edge", "u": 30, "v": 0},
             {"op": "add_edge", "u": 30, "v": 1}],
            [{"op": "add_edge", "u": 2, "v": 19}],
        ]
        twin = make()
        twin_engine = QueryEngine(twin, cache=False)
        expected = {twin.version: twin_engine.execute(QUERY)}
        for batch in batches:
            for op in batch:
                if op["op"] == "add_edge":
                    twin.add_edge(op["u"], op["v"])
                elif op["op"] == "remove_edge":
                    twin.remove_edge(op["u"], op["v"])
                elif op["op"] == "add_node":
                    twin.add_node(op["node"])
            expected[twin.version] = twin_engine.execute(QUERY)
        expected = {
            version: [list(r) for r in table.rows]
            for version, table in expected.items()
        }
        assert len(expected) == len(batches) + 1, "every batch changed the version"

        srv = server(make(), max_active=8, queue_depth=32)
        responses = []
        lock = threading.Lock()
        stop = threading.Event()
        failures = []

        def query_loop():
            try:
                while not stop.is_set():
                    status, _, doc = post(srv, "/query", {"query": QUERY})
                    assert status == 200, doc
                    with lock:
                        responses.append((doc["graph_version"], doc["rows"]))
            except Exception as exc:  # surfaced below, not swallowed
                failures.append(exc)

        def update_loop():
            try:
                for batch in batches:
                    time.sleep(0.02)
                    status, _, doc = post(srv, "/update", {"ops": batch})
                    assert status == 200, doc
            except Exception as exc:
                failures.append(exc)
            finally:
                stop.set()

        queriers = [threading.Thread(target=query_loop) for _ in range(4)]
        updater = threading.Thread(target=update_loop)
        for t in queriers:
            t.start()
        updater.start()
        updater.join(timeout=60)
        stop.set()
        for t in queriers:
            t.join(timeout=60)

        assert not failures, failures
        assert responses, "query threads produced no traffic"
        versions_seen = {version for version, _ in responses}
        assert versions_seen <= set(expected), (
            "a response named a version no serial replay ever produced "
            "(a torn mid-batch read)"
        )
        for version, rows in responses:
            assert rows == expected[version], (
                f"stale or wrong result served at version {version}"
            )
        # The final state converged: one last query sees the last batch.
        _, _, final = post(srv, "/query", {"query": QUERY})
        assert final["graph_version"] == max(expected)
        assert final["rows"] == expected[max(expected)]
