"""Unit tests for request parsing, canonical keys, and response documents."""

import json

import pytest

from repro.query.result import ResultTable
from repro.server import BadRequest, ServerDefaults
from repro.server.protocol import (
    parse_query_request,
    parse_update_request,
    result_document,
)

QUERY = "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes LIMIT 2"


def parse(body, headers=None, content_type="application/json", defaults=None):
    if isinstance(body, dict):
        body = json.dumps(body).encode()
    elif isinstance(body, str):
        body = body.encode()
    return parse_query_request(
        headers or {}, body, content_type, defaults or ServerDefaults()
    )


class TestQueryParsing:
    def test_json_body(self):
        req = parse({"query": QUERY})
        assert req.budget is None
        assert req.degrade is False
        assert "COUNTP" in req.canonical

    def test_text_plain_body(self):
        req = parse(QUERY, content_type="text/plain; charset=utf-8")
        assert req.canonical == parse({"query": QUERY}).canonical

    def test_spelling_variants_share_one_canonical_form(self):
        spaced = QUERY.replace(" ", "  ").replace("SELECT", "SELECT\n")
        assert parse({"query": spaced}).canonical == parse({"query": QUERY}).canonical

    def test_non_select_statements_are_rejected(self):
        # The query grammar only admits SELECT; anything else fails at
        # parse and surfaces as a 400, never a server error.
        with pytest.raises(BadRequest, match="does not parse"):
            parse({"query": "EXPLAIN " + QUERY})
        with pytest.raises(BadRequest, match="does not parse"):
            parse({"query": "PATTERN p = (a)-(b)"})

    def test_parse_error_is_bad_request(self):
        with pytest.raises(BadRequest, match="does not parse"):
            parse({"query": "SELEC oops"})

    def test_malformed_bodies(self):
        with pytest.raises(BadRequest, match="empty"):
            parse(b"")
        with pytest.raises(BadRequest, match="not valid JSON"):
            parse("{nope")
        with pytest.raises(BadRequest, match="JSON object"):
            parse("[1, 2]")
        with pytest.raises(BadRequest, match='string "query"'):
            parse({"query": 7})


def spec(**limits):
    """A normalized budget spec (validate_spec fills absent keys with None)."""
    return {"timeout": None, "max_ops": None, "max_results": None, **limits}


class TestBudgetPrecedence:
    def test_defaults_apply(self):
        defaults = ServerDefaults(budget={"max_ops": 100}, degrade=True)
        req = parse({"query": QUERY}, defaults=defaults)
        assert req.budget == spec(max_ops=100)
        assert req.degrade is True

    def test_body_overrides_defaults(self):
        defaults = ServerDefaults(budget={"max_ops": 100})
        req = parse(
            {"query": QUERY, "budget": {"max_ops": 7, "timeout": 1.5},
             "degrade": True},
            defaults=defaults,
        )
        assert req.budget == spec(max_ops=7, timeout=1.5)
        assert req.degrade is True

    def test_headers_override_body(self):
        req = parse(
            {"query": QUERY, "budget": {"max_ops": 7}, "degrade": True},
            headers={"X-Repro-Max-Ops": "3", "X-Repro-Degrade": "off"},
        )
        assert req.budget == spec(max_ops=3)
        assert req.degrade is False

    def test_invalid_specs_are_bad_requests(self):
        with pytest.raises(BadRequest):
            parse({"query": QUERY, "budget": {"max_opps": 3}})
        with pytest.raises(BadRequest):
            parse({"query": QUERY, "budget": {"max_ops": 0}})
        with pytest.raises(BadRequest):
            parse({"query": QUERY, "budget": "cheap"})
        with pytest.raises(BadRequest):
            parse({"query": QUERY}, headers={"X-Repro-Max-Ops": "many"})
        with pytest.raises(BadRequest):
            parse({"query": QUERY, "degrade": "maybe"})


class TestUpdateParsing:
    def test_valid_batch(self):
        ops = parse_update_request(json.dumps({"ops": [
            {"op": "add_node", "node": 9, "attrs": {"kind": "hub"}},
            {"op": "add_edge", "u": 1, "v": 9},
            {"op": "remove_edge", "u": 0, "v": 1},
            {"op": "remove_node", "node": 3},
        ]}).encode())
        assert [op["op"] for op in ops] == [
            "add_node", "add_edge", "remove_edge", "remove_node",
        ]

    @pytest.mark.parametrize("body,excerpt", [
        ({"ops": []}, "non-empty"),
        ({"ops": "add it"}, "non-empty"),
        ({"ops": [3]}, "must be an object"),
        ({"ops": [{"op": "upsert_edge", "u": 1, "v": 2}]}, "must be one of"),
        ({"ops": [{"op": "add_edge", "u": 1}]}, '"u" and "v"'),
        ({"ops": [{"op": "add_node"}]}, '"node"'),
        ({"ops": [{"op": "add_edge", "u": 1, "v": 2, "attrs": 5}]},
         "attrs must be an object"),
        ({"ops": [{"op": "remove_edge", "u": 1, "v": 2, "attrs": {}}]},
         "takes no attrs"),
    ])
    def test_invalid_batches(self, body, excerpt):
        with pytest.raises(BadRequest, match=excerpt):
            parse_update_request(json.dumps(body).encode())


class TestResultDocument:
    def test_complete_result(self):
        table = ResultTable(["ID", "c"], [(1, 2), (3, 0)])
        doc = result_document(table, graph_version=41, coalesced=True)
        assert doc == {
            "columns": ["ID", "c"],
            "rows": [[1, 2], [3, 0]],
            "graph_version": 41,
            "coalesced": True,
        }

    def test_partial_result_carries_notes(self):
        table = ResultTable(["c"], [(1,)], partial=True, notes=["c: estimated"])
        doc = result_document(table, graph_version=0, coalesced=False)
        assert doc["partial"] is True
        assert doc["notes"] == ["c: estimated"]
