"""Unit tests for the read/write lock and versioned graph state."""

import threading

import pytest

from repro.errors import QueryError
from repro.graph import Graph
from repro.query.engine import QueryEngine
from repro.server import GraphState, ReadWriteLock


def path_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        with lock.read():
            acquired = threading.Event()

            def second_reader():
                with lock.read():
                    acquired.set()

            t = threading.Thread(target=second_reader)
            t.start()
            assert acquired.wait(timeout=5)
            t.join(timeout=5)

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        got_read = threading.Event()
        t = threading.Thread(target=lambda: (lock.acquire_read(), got_read.set()))
        t.start()
        assert not got_read.wait(timeout=0.05)
        lock.release_write()
        assert got_read.wait(timeout=5)
        lock.release_read()
        t.join(timeout=5)

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a steady read stream cannot starve writers."""
        lock = ReadWriteLock()
        lock.acquire_read()
        writer_got = threading.Event()
        late_reader_got = threading.Event()

        writer = threading.Thread(
            target=lambda: (lock.acquire_write(), writer_got.set())
        )
        writer.start()
        for _ in range(500):
            if lock._writers_waiting == 1:
                break
            threading.Event().wait(0.01)

        late_reader = threading.Thread(
            target=lambda: (lock.acquire_read(), late_reader_got.set())
        )
        late_reader.start()
        # The late reader queues behind the announced writer.
        assert not late_reader_got.wait(timeout=0.05)

        lock.release_read()
        assert writer_got.wait(timeout=5), "writer runs before the late reader"
        assert not late_reader_got.is_set()
        lock.release_write()
        assert late_reader_got.wait(timeout=5)
        lock.release_read()
        writer.join(timeout=5)
        late_reader.join(timeout=5)


class TestGraphState:
    def test_apply_bumps_version_atomically(self):
        g = path_graph(4)
        state = GraphState(QueryEngine(g))
        before = state.version
        after = state.apply([
            {"op": "add_edge", "u": 0, "v": 2},
            {"op": "add_edge", "u": 0, "v": 3},
        ])
        assert after == state.version
        assert after == before + 2
        assert g.has_edge(0, 2) and g.has_edge(0, 3)

    def test_apply_refreshes_csr_snapshot(self):
        g = path_graph(4)
        engine = QueryEngine(g, backend="csr")
        state = GraphState(engine)
        q = "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c FROM nodes ORDER BY ID"
        assert all(c == 0 for _, c in engine.execute(q).rows)
        state.apply([{"op": "add_edge", "u": 0, "v": 2}])
        counts = dict(engine.execute(q).rows)
        assert counts[1] == 1, "the frozen snapshot must follow the update"

    def test_maintained_census_routes_updates(self):
        from repro.census.incremental import IncrementalCensus

        g = path_graph(4)
        engine = QueryEngine(g)
        maintained = IncrementalCensus(
            g, engine.catalog.get("clq3-unlb"), 1, matcher="cn"
        )
        state = GraphState(engine, maintained=maintained)
        assert maintained.num_embeddings() == 0
        state.apply([{"op": "add_edge", "u": 0, "v": 2}])
        # The new edge closes the triangle {0, 1, 2}; the maintained
        # census saw it because the update went *through* it.
        assert maintained.num_embeddings() > 0
        assert set(maintained.snapshot()) >= {0, 1, 2}
        assert g.has_edge(0, 2)
        with pytest.raises(QueryError, match="remove_node"):
            state.apply([{"op": "remove_node", "node": 3}])
