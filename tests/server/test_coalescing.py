"""Unit tests for single-flight request coalescing."""

import threading

import pytest

from repro.server import Coalescer


class TestCoalescer:
    def test_sequential_runs_never_coalesce(self):
        co = Coalescer()
        calls = []
        for _ in range(3):
            value, coalesced = co.run("k", lambda: calls.append(1) or len(calls))
            assert coalesced is False
        assert len(calls) == 3
        assert co.in_flight() == 0

    def test_concurrent_identical_keys_execute_once(self):
        co = Coalescer()
        gate = threading.Event()
        calls = []

        def compute():
            calls.append(threading.get_ident())
            gate.wait(timeout=10)
            return "answer"

        results = []

        def request():
            results.append(co.run("k", compute))

        threads = [threading.Thread(target=request) for _ in range(6)]
        threads[0].start()
        # Wait for the leader to be inside compute() before followers join.
        for _ in range(500):
            if calls:
                break
            threading.Event().wait(0.01)
        for t in threads[1:]:
            t.start()
        for _ in range(500):
            if co._flights.get("k") is not None and co._flights["k"].followers == 5:
                break
            threading.Event().wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)

        assert len(calls) == 1, "coalesced duplicates must execute once"
        values = [v for v, _ in results]
        flags = sorted(c for _, c in results)
        assert values == ["answer"] * 6
        assert flags == [False] + [True] * 5

    def test_distinct_keys_do_not_share(self):
        co = Coalescer()
        gate = threading.Event()
        started = threading.Event()

        def slow():
            started.set()
            gate.wait(timeout=10)
            return "slow"

        holder = {}
        t = threading.Thread(target=lambda: holder.update(r=co.run("a", slow)))
        t.start()
        assert started.wait(timeout=5)
        value, coalesced = co.run("b", lambda: "fast")
        assert (value, coalesced) == ("fast", False)
        assert co.in_flight() == 1
        gate.set()
        t.join(timeout=5)
        assert holder["r"] == ("slow", False)

    def test_leader_exception_propagates_to_followers(self):
        co = Coalescer()
        gate = threading.Event()
        entered = threading.Event()

        def explode():
            entered.set()
            gate.wait(timeout=10)
            raise ValueError("census failed")

        outcomes = []

        def request():
            try:
                co.run("k", explode)
                outcomes.append("ok")
            except ValueError as exc:
                outcomes.append(str(exc))

        threads = [threading.Thread(target=request) for _ in range(3)]
        threads[0].start()
        assert entered.wait(timeout=5)
        for t in threads[1:]:
            t.start()
        for _ in range(500):
            if co._flights.get("k") is not None and co._flights["k"].followers == 2:
                break
            threading.Event().wait(0.01)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert outcomes == ["census failed"] * 3

    def test_error_is_not_sticky(self):
        co = Coalescer()
        with pytest.raises(ValueError):
            co.run("k", lambda: (_ for _ in ()).throw(ValueError("once")))
        value, coalesced = co.run("k", lambda: "fine")
        assert (value, coalesced) == ("fine", False)
