"""Unit tests for the admission controller."""

import threading

import pytest

from repro.server import AdmissionController, Draining, Saturated


class TestSlots:
    def test_acquire_release_bookkeeping(self):
        ctl = AdmissionController(max_active=2)
        assert ctl.active == 0
        ctl.acquire()
        ctl.acquire()
        assert ctl.active == 2
        ctl.release()
        assert ctl.active == 1
        ctl.release()
        assert ctl.active == 0

    def test_saturated_when_queue_empty(self):
        ctl = AdmissionController(max_active=1, queue_depth=0, retry_after=2.5)
        ctl.acquire()
        with pytest.raises(Saturated) as exc:
            ctl.acquire()
        assert exc.value.retry_after == 2.5
        assert "1 executing" in str(exc.value)
        # The failed acquire must not leak a slot.
        ctl.release()
        ctl.acquire()
        ctl.release()

    def test_queued_request_waits_then_runs(self):
        ctl = AdmissionController(max_active=1, queue_depth=1)
        ctl.acquire()
        entered = threading.Event()

        def queued():
            ctl.acquire()
            entered.set()
            ctl.release()

        t = threading.Thread(target=queued)
        t.start()
        # The second request queues rather than failing...
        assert not entered.wait(timeout=0.05)
        assert ctl.waiting == 1
        # ...and proceeds once the slot frees.
        ctl.release()
        assert entered.wait(timeout=5)
        t.join(timeout=5)
        assert ctl.active == 0 and ctl.waiting == 0

    def test_queue_overflow_is_rejected(self):
        ctl = AdmissionController(max_active=1, queue_depth=1)
        ctl.acquire()
        waiter_in = threading.Event()
        orig_wait = ctl._cond.wait

        def traced_wait(*args, **kwargs):
            waiter_in.set()
            return orig_wait(*args, **kwargs)

        ctl._cond.wait = traced_wait
        t = threading.Thread(target=ctl.acquire)
        t.start()
        assert waiter_in.wait(timeout=5)
        with pytest.raises(Saturated):
            ctl.acquire()  # queue slot taken -> reject at the door
        ctl.release()
        t.join(timeout=5)

    def test_slot_context_releases_on_error(self):
        ctl = AdmissionController(max_active=1)
        with pytest.raises(RuntimeError):
            with ctl.slot():
                assert ctl.active == 1
                raise RuntimeError("boom")
        assert ctl.active == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_active=0)
        with pytest.raises(ValueError):
            AdmissionController(max_active=1, queue_depth=-1)


class TestDrain:
    def test_drain_refuses_new_work(self):
        ctl = AdmissionController(max_active=4)
        ctl.begin_drain()
        assert ctl.draining
        with pytest.raises(Draining):
            ctl.acquire()

    def test_drain_wakes_queued_waiters_with_draining(self):
        ctl = AdmissionController(max_active=1, queue_depth=2)
        ctl.acquire()
        results = []

        def queued():
            try:
                ctl.acquire()
                results.append("admitted")
            except Draining:
                results.append("drained")

        t = threading.Thread(target=queued)
        t.start()
        # Wait until the thread is actually parked in the queue.
        for _ in range(500):
            if ctl.waiting == 1:
                break
            threading.Event().wait(0.01)
        ctl.begin_drain()
        t.join(timeout=5)
        assert results == ["drained"]
        assert ctl.waiting == 0

    def test_wait_idle(self):
        ctl = AdmissionController(max_active=2)
        ctl.acquire()
        assert ctl.wait_idle(timeout=0.05) is False
        threading.Timer(0.05, ctl.release).start()
        assert ctl.wait_idle(timeout=5) is True
