"""Serving-path telemetry over real HTTP.

Covers the observable contracts of the request-tracing work: response
documents name their request, sampled traces are retrievable with
stitched per-chunk spans from parallel runs, slow queries surface at
``/debug/slow`` with a replayed ``EXPLAIN ANALYZE`` plan, in-flight
requests are visible mid-execution, coalesced bursts record latency
exactly once per execution, and a 10k-request soak leaves the daemon's
metric cardinality and span population flat.
"""

import gc
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.graph.generators import preferential_attachment
from repro.obs import Span
from repro.obs.metrics import split_label_key
from repro.server import CensusServer

QUERY = ("SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) AS c "
         "FROM nodes ORDER BY c DESC, ID ASC LIMIT 5")


def get(srv, path):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{srv.port}{path}", timeout=30
        ) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(srv, path, doc):
    req = urllib.request.Request(
        f"http://127.0.0.1:{srv.port}{path}",
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def server(request):
    started = []

    def boot(graph=None, **kwargs):
        if graph is None:
            graph = preferential_attachment(30, m=2, seed=7)
        kwargs.setdefault("port", 0)
        srv = CensusServer(graph, **kwargs).start()
        started.append(srv)
        return srv

    yield boot
    for srv in started:
        srv.drain(timeout=10)


def span_names(doc):
    names = set()

    def walk(span):
        names.add(span["name"])
        for child in span["children"]:
            walk(child)

    walk(doc)
    return names


class TestRequestIdentity:
    def test_response_names_its_request(self, server):
        srv = server(trace_sample_rate=1.0)
        status, doc = post(srv, "/query", {"query": QUERY})
        assert status == 200
        assert len(doc["request_id"]) == 16
        assert doc["trace_id"].startswith(doc["request_id"])
        assert doc["sampled"] is True

    def test_update_response_named_too(self, server):
        srv = server()
        status, doc = post(srv, "/update",
                           {"ops": [{"op": "add_edge", "u": 1, "v": 25}]})
        assert status == 200
        assert len(doc["request_id"]) == 16

    def test_unsampled_request_still_has_id(self, server):
        srv = server(trace_sample_rate=0.0)
        status, doc = post(srv, "/query", {"query": QUERY})
        assert status == 200
        assert doc["sampled"] is False
        status, _ = get(srv, f"/debug/traces/{doc['request_id']}")
        assert status == 404


class TestDebugTraces:
    def test_trace_tree_served_by_id(self, server):
        srv = server(trace_sample_rate=1.0)
        _, doc = post(srv, "/query", {"query": QUERY})
        status, listing = get(srv, "/debug/traces")
        assert status == 200
        assert listing["sample_rate"] == 1.0
        assert doc["request_id"] in [t["request_id"] for t in listing["traces"]]
        status, trace = get(srv, f"/debug/traces/{doc['request_id']}")
        assert status == 200
        names = span_names(trace["spans"])
        assert "server.request" in names
        assert "query.execute" in names
        assert trace["status"] == 200
        assert trace["query"] is not None

    def test_parallel_run_shows_stitched_chunk_spans(self, server):
        # The acceptance bar: a workers>1 pool run's served trace
        # contains per-chunk spans with the census work inside them.
        srv = server(graph=preferential_attachment(60, m=3, seed=3),
                     trace_sample_rate=1.0, workers=2, cache=False)
        _, doc = post(srv, "/query", {"query": QUERY})
        _, trace = get(srv, f"/debug/traces/{doc['request_id']}")
        names = span_names(trace["spans"])
        assert "census.parallel" in names
        assert "census.parallel.chunk" in names
        rebuilt = Span.from_dict(trace["spans"])
        chunk = rebuilt.find("census.parallel.chunk")
        assert chunk.find("census.nd_pvot") is not None or any(
            c.name.startswith("census.") for c in chunk.walk()
        )

    def test_unknown_trace_is_404(self, server):
        srv = server(trace_sample_rate=1.0)
        status, doc = get(srv, "/debug/traces/deadbeefdeadbeef")
        assert status == 404
        assert "error" in doc


class TestDebugSlow:
    def test_slow_query_captured_with_plan(self, server, tmp_path):
        log = tmp_path / "slow.jsonl"
        srv = server(trace_sample_rate=0.0, slow_query_ms=0.0,
                     slow_query_log=str(log), cache=False)
        _, doc = post(srv, "/query", {"query": QUERY})
        status, slow = get(srv, "/debug/slow")
        assert status == 200
        assert slow["slow_query_ms"] == 0.0
        captured = {r["request_id"]: r for r in slow["slow"]}
        record = captured[doc["request_id"]]
        assert "CENSUS" in record["plan"]
        assert "actual:" in record["plan"]
        assert record["spans"] is not None
        on_disk = [json.loads(line) for line in log.read_text().splitlines()]
        assert doc["request_id"] in {r["request_id"] for r in on_disk}

    def test_fast_queries_not_captured(self, server):
        srv = server(slow_query_ms=60_000.0)
        post(srv, "/query", {"query": QUERY})
        _, slow = get(srv, "/debug/slow")
        assert slow["slow"] == []

    def test_capture_disabled_by_default(self, server):
        srv = server()
        post(srv, "/query", {"query": QUERY})
        _, slow = get(srv, "/debug/slow")
        assert slow["slow"] == []


class TestDebugRequests:
    def test_in_flight_visible_while_executing(self, server):
        gate = threading.Event()
        release = threading.Event()

        srv = server(trace_sample_rate=0.0)
        original = srv.engine.execute

        def gated(query, **kwargs):
            gate.set()
            release.wait(timeout=30)
            return original(query, **kwargs)

        srv.engine.execute = gated
        try:
            worker = threading.Thread(
                target=post, args=(srv, "/query", {"query": QUERY}),
            )
            worker.start()
            assert gate.wait(timeout=30)
            status, doc = get(srv, "/debug/requests")
            assert status == 200
            live = doc["in_flight"]
            assert len(live) == 1
            assert len(live[0]["request_id"]) == 16
            assert live[0]["endpoint"] == "query"
            assert live[0]["age_ms"] >= 0
            assert live[0]["current_span"] is not None
        finally:
            release.set()
            worker.join(timeout=30)
        status, doc = get(srv, "/debug/requests")
        assert doc["in_flight"] == []


class TestCoalescedTimingExactlyOnce:
    def test_burst_records_one_execution_and_n_minus_one_waits(self, server):
        # Regression for timer double-counting: a coalesced burst must
        # land exactly one server.request_seconds observation (the
        # leader's) and one span.query.execute timing, with followers
        # contributing only coalesced-wait observations and hits.
        srv = server(graph=preferential_attachment(60, m=3, seed=3),
                     cache=False, max_active=8, queue_depth=64)
        n = 8
        results = []
        lock = threading.Lock()
        barrier = threading.Barrier(n)

        def one():
            barrier.wait(timeout=30)
            status, doc = post(srv, "/query", {"query": QUERY})
            with lock:
                results.append((status, doc))

        threads = [threading.Thread(target=one) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == n
        assert all(status == 200 for status, _ in results)
        coalesced = sum(doc["coalesced"] for _, doc in results)
        executions = n - coalesced
        assert coalesced >= 1, "burst did not overlap; nothing was tested"

        snap = srv.obs.registry.snapshot()
        request_count = 0
        wait_count = 0
        hits = 0
        for key, hist in snap["histograms"].items():
            name, labels = split_label_key(key)
            if name == "server.request_seconds":
                assert labels["endpoint"] == "query"
                request_count += hist["count"]
            elif name == "server.coalesced_wait_seconds":
                wait_count += hist["count"]
        for key, value in snap["counters"].items():
            if split_label_key(key)[0] == "server.coalesced_hits":
                hits += value
        assert request_count == executions
        assert wait_count == coalesced
        assert hits == coalesced
        # Engine-level timing recorded once per actual execution, never
        # re-recorded by followers.
        assert snap["histograms"]["span.query.execute"]["count"] == executions


class TestBoundedness:
    def test_10k_requests_leave_daemon_memory_flat(self, server):
        # The MetricsObsContext + telemetry soak: metric cardinality and
        # retained-object counts must not grow with request count.
        srv = server(graph=preferential_attachment(10, m=2, seed=1),
                     trace_sample_rate=1.0, trace_buffer=32, slow_buffer=8,
                     cache=False)
        query = {"query": "SELECT ID FROM nodes LIMIT 2"}

        def drive(n):
            for _ in range(n):
                status, _ = post(srv, "/query", query)
                assert status == 200

        drive(200)  # warm up every metric name this workload can create
        gc.collect()
        cardinality_before = len(srv.obs.registry)
        spans_before = sum(
            isinstance(o, Span) for o in gc.get_objects()
        )

        drive(10_000)
        gc.collect()
        cardinality_after = len(srv.obs.registry)
        spans_after = sum(
            isinstance(o, Span) for o in gc.get_objects()
        )

        assert cardinality_after == cardinality_before
        assert len(srv.telemetry.traces) == 32
        # Retained Span objects are bounded by the ring buffers, not the
        # request count; allow slack for in-flight allocation noise.
        assert spans_after <= spans_before + 200
        # Ring evicts FIFO: the newest request is retained, the earliest
        # are long gone.
        summaries = srv.telemetry.trace_summaries()
        assert len(summaries) == 32
        status, _ = get(srv, f"/debug/traces/{summaries[0]['request_id']}")
        assert status == 200
