"""Tests for the exception hierarchy and package metadata."""

import pytest

import repro
from repro.errors import (
    CensusError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
    ParseError,
    PatternError,
    QueryError,
    ReproError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        GraphError, StorageError, PatternError, ParseError, QueryError, CensusError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_not_found_errors_are_key_errors(self):
        # So dict-style call sites can catch KeyError if they prefer.
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(EdgeNotFoundError, KeyError)
        assert issubclass(NodeNotFoundError, GraphError)

    def test_node_not_found_carries_node(self):
        err = NodeNotFoundError(42)
        assert err.node == 42
        assert "42" in str(err)

    def test_parse_error_location_formatting(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err) and "column 7" in str(err)
        assert (err.line, err.column) == (3, 7)
        bare = ParseError("oops")
        assert "line" not in str(bare)


class TestPackage:
    def test_version_exposed(self):
        assert repro.__version__.count(".") == 2

    def test_lazy_exports_resolve(self):
        assert repro.Graph is not None
        assert repro.census is not None
        assert callable(repro.find_matches)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_dir_lists_lazy_names(self):
        listing = dir(repro)
        assert "QueryEngine" in listing
        assert "census" in listing
