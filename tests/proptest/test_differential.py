"""Differential census testing: every execution mode agrees exactly.

The census has one semantics and many implementations: five algorithms,
two matchers, two graph backends (dict vs CSR snapshot), and serial vs
chunked-parallel execution.  Each test here pins all dimensions but one
to the reference configuration (ND-BAS x CN x dict x serial) and sweeps
the remaining dimension over random inputs, asserting exact count
equality — the property the paper states and every optimization must
preserve.
"""

from hypothesis import given, settings

from repro.census import ALGORITHMS, census, parallel_census
from repro.graph.csr import freeze

from tests.proptest.strategies import census_cases

#: The correctness reference (see repro/census/nd_bas.py docstring).
REFERENCE = "nd-bas"

NON_REFERENCE = sorted(set(ALGORITHMS) - {REFERENCE})


def reference_counts(graph, pattern, k):
    return census(graph, pattern, k, algorithm=REFERENCE, matcher="cn")


class TestAlgorithmsAgree:
    @settings(max_examples=25)
    @given(census_cases(labeled=True))
    def test_all_algorithms_match_reference(self, case):
        graph, pattern, k = case
        expected = reference_counts(graph, pattern, k)
        for algorithm in NON_REFERENCE:
            got = census(graph, pattern, k, algorithm=algorithm, matcher="cn")
            assert got == expected, f"{algorithm} diverged from {REFERENCE}"


class TestMatchersAgree:
    @settings(max_examples=25)
    @given(census_cases(labeled=True, max_nodes=10))
    def test_bruteforce_cn_gql_agree(self, case):
        graph, pattern, k = case
        expected = census(graph, pattern, k, algorithm="nd-pvot", matcher="bruteforce")
        for matcher in ("cn", "gql"):
            got = census(graph, pattern, k, algorithm="nd-pvot", matcher=matcher)
            assert got == expected, f"matcher {matcher} diverged from bruteforce"


class TestBackendsAgree:
    @settings(max_examples=25)
    @given(census_cases(labeled=True))
    def test_csr_snapshot_matches_dict(self, case):
        graph, pattern, k = case
        expected = reference_counts(graph, pattern, k)
        snapshot = freeze(graph)
        for algorithm in sorted(ALGORITHMS):
            got = census(snapshot, pattern, k, algorithm=algorithm, matcher="cn")
            assert got == expected, f"{algorithm} on CSR diverged from dict"


class TestParallelAgrees:
    @settings(max_examples=15)
    @given(census_cases())
    def test_two_thread_workers_match_serial(self, case):
        graph, pattern, k = case
        expected = reference_counts(graph, pattern, k)
        for algorithm in sorted(ALGORITHMS):
            got = parallel_census(
                graph, pattern, k, algorithm=algorithm, workers=2,
                executor="thread",
            )
            assert got == expected, f"{algorithm} with 2 workers diverged"

    @settings(max_examples=5)
    @given(census_cases(max_nodes=8))
    def test_process_pool_matches_serial(self, case):
        graph, pattern, k = case
        expected = reference_counts(graph, pattern, k)
        got = parallel_census(
            graph, pattern, k, algorithm="nd-pvot", workers=2,
            executor="process",
        )
        assert got == expected
