"""Shared Hypothesis strategies for the property-based test harness.

All differential and fault-injection property tests draw graphs,
patterns, and radii from here so that every harness explores the same
input space: small random graphs with isolated nodes and optional
labels (both known sources of past bugs), the pattern shapes the paper
benchmarks, and the k values the census algorithms specialize for.
"""

from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.matching.pattern import Pattern

#: Labels drawn for labeled graphs/patterns.
LABELS = ("X", "Y")


@st.composite
def graphs(draw, max_nodes=12, labeled=False, min_nodes=1):
    """A small undirected :class:`Graph`.

    Nodes are ``0..n-1`` and *every* node is added explicitly, so the
    graph can contain isolated nodes (including trailing ones — a past
    CSR off-by-one) and, when ``labeled``, each node carries a label
    from :data:`LABELS`.
    """
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    g = Graph()
    if labeled:
        labels = draw(st.lists(st.sampled_from(LABELS), min_size=n, max_size=n))
        for i in range(n):
            g.add_node(i, label=labels[i])
    else:
        for i in range(n):
            g.add_node(i)
    if n >= 2:
        edges = draw(
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=3 * n,
            )
        )
        for u, v in edges:
            if u != v:
                g.add_edge(u, v)
    return g


def _pattern(name, edges, labels=()):
    p = Pattern(name)
    for u, v in edges:
        p.add_edge(u, v)
    for var, label in labels:
        p.add_node(var, label=label)
    return p


def _pattern_menu(labeled=False):
    """The pattern shapes every harness cycles through.

    Mirrors the paper's benchmark shapes at test scale: a single edge,
    a 2-path, a triangle, and a 3-star.  ``labeled`` adds variants that
    constrain variables to :data:`LABELS` members.
    """
    menu = [
        _pattern("edge", [("A", "B")]),
        _pattern("path2", [("A", "B"), ("B", "C")]),
        _pattern("tri", [("A", "B"), ("B", "C"), ("A", "C")]),
        _pattern("star3", [("A", "B"), ("A", "C"), ("A", "D")]),
    ]
    if labeled:
        menu.extend(
            [
                _pattern("edge_xy", [("A", "B")], labels=[("A", "X"), ("B", "Y")]),
                _pattern("path2_x", [("A", "B"), ("B", "C")], labels=[("B", "X")]),
            ]
        )
    return menu


def patterns(labeled=False):
    """Strategy over validated census patterns."""
    return st.sampled_from(_pattern_menu(labeled=labeled))


def radii(max_k=3):
    """Neighborhood radii; ``k=0`` (the focal node alone) included."""
    return st.integers(min_value=0, max_value=max_k)


@st.composite
def census_cases(draw, max_nodes=12, labeled=False, max_k=3):
    """A ready-to-run ``(graph, pattern, k)`` census input."""
    use_labels = labeled and draw(st.booleans())
    graph = draw(graphs(max_nodes=max_nodes, labeled=use_labels))
    pattern = draw(patterns(labeled=use_labels))
    k = draw(radii(max_k=max_k))
    return graph, pattern, k
