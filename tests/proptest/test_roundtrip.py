"""Property-based parser round-trips: ``parse(unparse(ast)) == ast``.

Hypothesis builds query ASTs directly (not text), so the generator
reaches shapes no hand-written corpus covers — hyphenated pattern
names, deeply nested WHERE trees, pair queries, EXPLAIN wrappers —
and the unparser + parser must reproduce every one exactly.  A second
property checks unparsing is a fixed point over whole scripts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang import expressions as ex
from repro.lang.lexer import KEYWORDS
from repro.lang.parser import parse_query, parse_script
from repro.lang.unparse import unparse_query, unparse_script, unparse_statement
from repro.matching.pattern import Pattern

# -- name/identifier strategies --------------------------------------------

idents = st.from_regex(r"[a-z][a-z0-9_]{0,7}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)
name_pieces = idents | st.from_regex(r"[0-9]{1,3}", fullmatch=True)
pattern_names = st.builds(
    lambda head, tail: "-".join([head] + tail),
    idents,
    st.lists(name_pieces, max_size=2),
)

# -- query AST strategies ---------------------------------------------------

column_refs = st.builds(
    ast.ColumnRef, st.none() | idents, idents | st.just("ID")
)
id_refs = st.builds(ast.ColumnRef, st.none() | idents, st.just("ID"))
radii = st.integers(min_value=0, max_value=4)

neighborhoods = st.one_of(
    st.builds(lambda t, k: ast.Neighborhood("subgraph", [t], k), id_refs, radii),
    st.builds(
        lambda kind, t1, t2, k: ast.Neighborhood(kind, [t1, t2], k),
        st.sampled_from(["intersection", "union"]),
        id_refs,
        id_refs,
        radii,
    ),
)

aggregates = st.builds(
    lambda pattern, hood, sub, out: ast.Aggregate(
        pattern, hood, subpattern_name=sub, output_name=out
    ),
    pattern_names,
    neighborhoods,
    st.none() | pattern_names,
    st.none() | idents,
)

# Strings may contain one quote character (the unparser switches to the
# other); both at once is unrepresentable and excluded by the alphabet.
literal_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=0, max_value=10**9),
    st.floats(min_value=0, allow_nan=False, allow_infinity=False, allow_subnormal=False),
    st.text(alphabet="abz XY_09'-#", max_size=8),
)

BINARY_OPS = [
    "=", "==", "!=", "<>", "<", "<=", ">", ">=",
    "+", "-", "*", "/", "%", "and", "or",
]

expressions = st.recursive(
    st.one_of(
        st.builds(ex.Literal, literal_values),
        st.builds(ex.Column, column_refs),
        st.builds(ex.Rnd),
    ),
    lambda inner: st.one_of(
        st.builds(ex.Unary, st.sampled_from(["not", "-"]), inner),
        st.builds(ex.Binary, st.sampled_from(BINARY_OPS), inner, inner),
    ),
    max_leaves=8,
)

order_keys = idents | st.builds(lambda a, b: f"{a}.{b}", idents, idents)
order_items = st.builds(ast.OrderItem, order_keys, st.booleans())


@st.composite
def select_queries(draw):
    n_tables = draw(st.integers(min_value=1, max_value=2))
    # "nodes" is a legal alias: it is what the parser itself assigns to
    # a lone unaliased table.
    aliases = draw(
        st.lists(
            idents | st.just("nodes"),
            min_size=n_tables,
            max_size=n_tables,
            unique=True,
        )
    )
    tables = [ast.TableRef(a) for a in aliases]
    columns = draw(
        st.lists(column_refs | aggregates, min_size=1, max_size=4)
    )
    where = draw(st.none() | expressions)
    order_by = draw(st.lists(order_items, max_size=2))
    limit = draw(st.none() | st.integers(min_value=0, max_value=1000))
    return ast.SelectQuery(
        columns, tables, where=where, order_by=order_by, limit=limit
    )


statements = st.builds(
    ast.ExplainStatement, select_queries(), analyze=st.booleans()
) | select_queries()


@st.composite
def patterns(draw):
    name = draw(pattern_names)
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from("ABCD"),
                st.sampled_from("ABCD"),
                st.booleans(),
                st.booleans(),
            ),
            min_size=1,
            max_size=5,
        )
    )
    p = Pattern(name)
    for u, v, directed, negated in edges:
        if u != v:
            p.add_edge(u, v, directed=directed, negated=negated)
    if not p.nodes:
        p.add_node("A")
    return p


# -- properties -------------------------------------------------------------


class TestQueryRoundTrip:
    @settings(max_examples=120)
    @given(select_queries())
    def test_parse_of_unparse_is_identity(self, query):
        text = unparse_query(query)
        reparsed = parse_query(text)
        assert reparsed == query
        assert unparse_query(reparsed) == text

    @settings(max_examples=60)
    @given(statements)
    def test_statements_round_trip_through_scripts(self, statement):
        text = unparse_statement(statement)
        parsed = parse_script(text)
        assert len(parsed) == 1
        assert parsed[0] == statement


class TestScriptFixedPoint:
    @settings(max_examples=40)
    @given(st.lists(patterns() | select_queries(), min_size=1, max_size=4))
    def test_unparse_is_a_fixed_point(self, script):
        text = unparse_script(script)
        once = parse_script(text)
        assert len(once) == len(script)
        assert unparse_script(once) == text
