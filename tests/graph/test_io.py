"""Round-trip tests for graph serialization."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import labeled_preferential_attachment
from repro.graph.graph import Graph
from repro.graph.io import (
    from_dict,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    to_dict,
)


def graphs_equal(a, b):
    if a.directed != b.directed or a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    for n in a.nodes():
        if not b.has_node(n) or a.node_attrs(n) != b.node_attrs(n):
            return False
    for u, v in a.edges():
        if not b.has_edge(u, v) or a.edge_attrs(u, v) != b.edge_attrs(u, v):
            return False
    return True


class TestJson:
    def test_dict_round_trip(self):
        g = labeled_preferential_attachment(50, m=2, seed=1)
        assert graphs_equal(g, from_dict(to_dict(g)))

    def test_directed_round_trip(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, w=3)
        g.add_node(1, label="A")
        h = from_dict(to_dict(g))
        assert h.directed and h.edge_attr(1, 2, "w") == 3

    def test_file_round_trip(self, tmp_path):
        g = labeled_preferential_attachment(30, m=2, seed=2)
        path = tmp_path / "g.json"
        save_json(g, path)
        assert graphs_equal(g, load_json(path))

    def test_bad_format_version(self):
        with pytest.raises(GraphError):
            from_dict({"format": 99, "directed": False, "nodes": [], "edges": []})

    def test_unserializable_node_id(self):
        g = Graph()
        g.add_node((1, 2))
        with pytest.raises(GraphError):
            to_dict(g)


class TestEdgeList:
    def test_round_trip_with_labels(self, tmp_path):
        g = labeled_preferential_attachment(40, m=2, seed=3)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        h = load_edge_list(path)
        assert graphs_equal(g, h) or (
            h.num_nodes == g.num_nodes and h.num_edges == g.num_edges
        )

    def test_unlabeled_nodes_round_trip_as_none(self, tmp_path):
        g = Graph()
        g.add_node(1)
        g.add_edge(1, 2)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        h = load_edge_list(path)
        assert h.label(1) is None

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(GraphError):
            load_edge_list(path)
