"""Tests for node profiles and the profile index."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.generators import labeled_preferential_attachment
from repro.graph.graph import Graph
from repro.graph.profiles import NodeProfileIndex, node_profile, profile_contains


class TestProfiles:
    def test_profile_counts_neighbor_labels(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2, label="A")
        g.add_node(3, label="A")
        g.add_node(4, label="B")
        for v in (2, 3, 4):
            g.add_edge(1, v)
        assert node_profile(g, 1) == Counter({"A": 2, "B": 1})

    def test_unlabeled_neighbors_counted_under_none(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert node_profile(g, 1) == Counter({None: 2})

    def test_containment(self):
        big = Counter({"A": 3, "B": 1})
        assert profile_contains(big, Counter({"A": 2}))
        assert profile_contains(big, Counter())
        assert not profile_contains(big, Counter({"A": 4}))
        assert not profile_contains(big, Counter({"C": 1}))

    @given(st.dictionaries(st.sampled_from("ABCD"), st.integers(0, 5), max_size=4))
    def test_profile_contains_reflexive(self, counts):
        profile = Counter(counts)
        assert profile_contains(profile, profile)


class TestIndex:
    def test_index_matches_direct_computation(self):
        g = labeled_preferential_attachment(100, m=2, seed=3)
        index = NodeProfileIndex(g)
        for n in g.nodes():
            assert index.profile(n) == node_profile(g, n)

    def test_label_buckets_partition_nodes(self):
        g = labeled_preferential_attachment(100, m=2, seed=3)
        index = NodeProfileIndex(g)
        total = sum(len(index.nodes_with_label(lbl)) for lbl in index.labels())
        assert total == g.num_nodes

    def test_candidates_filter(self):
        g = Graph()
        g.add_node("hub", label="A")
        g.add_node("leaf", label="A")
        for i in range(3):
            g.add_node(i, label="B")
            g.add_edge("hub", i)
        g.add_edge("leaf", 0)
        index = NodeProfileIndex(g)
        want = Counter({"B": 2})
        assert index.candidates("A", want) == ["hub"]

    def test_missing_label_bucket_empty(self):
        g = Graph()
        g.add_node(1, label="A")
        index = NodeProfileIndex(g)
        assert index.nodes_with_label("Z") == set()

    def test_len(self):
        g = labeled_preferential_attachment(30, m=1, seed=0)
        assert len(NodeProfileIndex(g)) == 30
