"""Tests for the stochastic block model generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import stochastic_block_model


class TestSBM:
    def test_sizes_and_blocks(self):
        g = stochastic_block_model([10, 15], p_in=0.5, p_out=0.05, seed=0)
        assert g.num_nodes == 25
        blocks = [g.node_attr(n, "block") for n in sorted(g.nodes())]
        assert blocks[:10] == [0] * 10
        assert blocks[10:] == [1] * 15

    def test_degenerate_probabilities(self):
        g = stochastic_block_model([5, 5], p_in=1.0, p_out=0.0, seed=1)
        # Two disjoint cliques.
        from repro.graph.traversal import connected_components

        comps = sorted(connected_components(g), key=len)
        assert [len(c) for c in comps] == [5, 5]
        assert g.num_edges == 2 * (5 * 4 // 2)

    def test_invalid_probabilities(self):
        with pytest.raises(GraphError):
            stochastic_block_model([5], p_in=0.1, p_out=0.5)
        with pytest.raises(GraphError):
            stochastic_block_model([5], p_in=1.5, p_out=0.0)

    def test_community_density_gap(self):
        g = stochastic_block_model([40, 40], p_in=0.3, p_out=0.02, seed=2)
        within = across = 0
        for u, v in g.edges():
            if g.node_attr(u, "block") == g.node_attr(v, "block"):
                within += 1
            else:
                across += 1
        assert within > 3 * across

    @settings(max_examples=15)
    @given(st.lists(st.integers(2, 10), min_size=1, max_size=4), st.integers(0, 100))
    def test_deterministic(self, sizes, seed):
        a = stochastic_block_model(sizes, 0.4, 0.1, seed=seed)
        b = stochastic_block_model(sizes, 0.4, 0.1, seed=seed)
        assert set(a.edges()) == set(b.edges())
