"""Tests for the synthetic graph generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import (
    DEFAULT_LABELS,
    assign_random_labels,
    erdos_renyi,
    labeled_preferential_attachment,
    organizational_network,
    planted_pattern_graph,
    preferential_attachment,
    signed_network,
    watts_strogatz,
)


class TestPreferentialAttachment:
    def test_edge_count_approaches_m_times_n(self):
        g = preferential_attachment(500, m=5, seed=0)
        assert g.num_nodes == 500
        # seed path contributes fewer edges, later nodes add m each
        assert 5 * 500 * 0.95 <= g.num_edges <= 5 * 500

    def test_deterministic_per_seed(self):
        g1 = preferential_attachment(100, m=3, seed=9)
        g2 = preferential_attachment(100, m=3, seed=9)
        assert set(g1.edges()) == set(g2.edges())

    def test_different_seeds_differ(self):
        g1 = preferential_attachment(100, m=3, seed=1)
        g2 = preferential_attachment(100, m=3, seed=2)
        assert set(g1.edges()) != set(g2.edges())

    def test_connected(self):
        from repro.graph.traversal import connected_components

        g = preferential_attachment(200, m=2, seed=4)
        assert len(list(connected_components(g))) == 1

    def test_hubs_emerge(self):
        g = preferential_attachment(800, m=3, seed=5)
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        # Scale-free-ish: the top node has far more than average degree.
        avg = sum(degrees) / len(degrees)
        assert degrees[0] > 4 * avg

    def test_single_node(self):
        g = preferential_attachment(1, m=3, seed=0)
        assert g.num_nodes == 1 and g.num_edges == 0

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            preferential_attachment(0)
        with pytest.raises(GraphError):
            preferential_attachment(10, m=0)

    @given(st.integers(2, 80), st.integers(1, 5), st.integers(0, 100))
    def test_no_self_loops_or_duplicates(self, n, m, seed):
        g = preferential_attachment(n, m=m, seed=seed)
        edges = list(g.edges())
        assert len(edges) == g.num_edges
        assert all(u != v for u, v in edges)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(50, 120, seed=1)
        assert g.num_edges == 120

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(4, 100)

    def test_directed(self):
        g = erdos_renyi(20, 50, seed=2, directed=True)
        assert g.directed and g.num_edges == 50


class TestWattsStrogatz:
    def test_degree_and_size(self):
        g = watts_strogatz(40, k=4, beta=0.0, seed=0)
        assert g.num_nodes == 40
        assert all(g.degree(n) == 4 for n in g.nodes())

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, k=3)


class TestLabeling:
    def test_labels_drawn_from_alphabet(self):
        g = labeled_preferential_attachment(200, m=2, num_labels=4, seed=0)
        assert g.labels() <= set(DEFAULT_LABELS)

    def test_roughly_uniform(self):
        g = labeled_preferential_attachment(2000, m=1, num_labels=4, seed=0)
        from collections import Counter

        counts = Counter(g.label(n) for n in g.nodes())
        assert len(counts) == 4
        assert min(counts.values()) > 2000 / 4 * 0.7

    def test_custom_label_count(self):
        g = labeled_preferential_attachment(100, m=1, num_labels=6, seed=0)
        assert len(g.labels()) <= 6

    def test_assign_labels_deterministic(self):
        g1 = preferential_attachment(50, m=1, seed=0)
        g2 = preferential_attachment(50, m=1, seed=0)
        assign_random_labels(g1, seed=5)
        assign_random_labels(g2, seed=5)
        assert all(g1.label(n) == g2.label(n) for n in g1.nodes())


class TestDomainGenerators:
    def test_signed_network_has_signs(self):
        g = signed_network(100, m=2, negative_fraction=0.5, seed=0)
        signs = {g.edge_attr(u, v, "sign") for u, v in g.edges()}
        assert signs <= {-1, 1}
        assert signs == {-1, 1}  # both present at 50%

    def test_negative_fraction_respected(self):
        g = signed_network(400, m=3, negative_fraction=0.3, seed=1)
        neg = sum(1 for u, v in g.edges() if g.edge_attr(u, v, "sign") == -1)
        assert 0.2 < neg / g.num_edges < 0.4

    def test_organizational_network(self):
        g = organizational_network(80, num_orgs=3, m=2, seed=0)
        assert g.directed
        orgs = {g.node_attr(n, "org") for n in g.nodes()}
        assert orgs <= {"org0", "org1", "org2"}

    def test_planted_patterns(self):
        # 4 disjoint triangles + noise
        g = planted_pattern_graph(40, [(0, 1), (1, 2), (0, 2)], copies=4, noise_edges=10, seed=0)
        from repro.matching.bruteforce import bruteforce_matches
        from repro.matching.pattern import Pattern

        tri = Pattern("tri")
        tri.add_edge("A", "B")
        tri.add_edge("B", "C")
        tri.add_edge("A", "C")
        assert len(bruteforce_matches(g, tri)) >= 4

    def test_planted_needs_enough_nodes(self):
        with pytest.raises(GraphError):
            planted_pattern_graph(5, [(0, 1), (1, 2), (0, 2)], copies=4, noise_edges=0)
