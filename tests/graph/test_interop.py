"""Tests for networkx interoperability."""

import pytest

networkx = pytest.importorskip("networkx")

from repro.errors import GraphError
from repro.graph.generators import labeled_preferential_attachment
from repro.graph.interop import from_networkx, to_networkx


class TestFromNetworkX:
    def test_undirected_with_attrs(self):
        nxg = networkx.Graph()
        nxg.add_node(1, label="A")
        nxg.add_edge(1, 2, weight=3)
        g = from_networkx(nxg)
        assert not g.directed
        assert g.node_attr(1, "label") == "A"
        assert g.edge_attr(1, 2, "weight") == 3

    def test_directed(self):
        nxg = networkx.DiGraph()
        nxg.add_edge("a", "b")
        g = from_networkx(nxg)
        assert g.directed
        assert g.has_edge("a", "b") and not g.has_edge("b", "a")

    def test_self_loops_dropped(self):
        nxg = networkx.Graph()
        nxg.add_edge(1, 1)
        nxg.add_edge(1, 2)
        g = from_networkx(nxg)
        assert g.num_edges == 1

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(networkx.MultiGraph())


class TestRoundTrip:
    def test_round_trip_preserves_structure(self):
        g = labeled_preferential_attachment(60, m=2, seed=5)
        back = from_networkx(to_networkx(g))
        assert back.num_nodes == g.num_nodes
        assert back.num_edges == g.num_edges
        for n in g.nodes():
            assert back.label(n) == g.label(n)
            assert set(back.neighbors(n)) == set(g.neighbors(n))

    def test_census_on_converted_graph(self):
        from repro.census import census
        from repro.matching.pattern import Pattern

        nxg = networkx.karate_club_graph()
        g = from_networkx(nxg)
        tri = Pattern("tri")
        tri.add_edge("A", "B")
        tri.add_edge("B", "C")
        tri.add_edge("A", "C")
        counts = census(g, tri, 1, algorithm="nd-pvot")
        # Total triangle memberships relate to the global triangle count.
        triangles = sum(networkx.triangles(nxg).values()) // 3
        assert triangles > 0
        hub_count = counts[0]
        assert hub_count > 0
