"""CSR snapshots: access-path equivalence and differential correctness.

A :class:`repro.graph.csr.CSRGraph` must be indistinguishable from the
``Graph`` it froze for every read: same nodes, edges, attributes,
adjacency, traversal results, matcher output, and census counts.  The
property tests here drive random labeled/directed graphs through both
backends and compare; the numpy-free fallback is exercised by stubbing
the module's numpy handle.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.census.indexed
import repro.graph.csr
from repro.census import ALGORITHMS
from repro.errors import GraphError, NodeNotFoundError
from repro.graph.csr import CSRGraph, freeze, numpy_available
from repro.graph.generators import (
    erdos_renyi,
    labeled_preferential_attachment,
    preferential_attachment,
)
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances, bfs_layer_sets, k_hop_nodes
from repro.matching import find_matches
from repro.matching.pattern import Pattern

CENSUS_SERIES = [name for name in ALGORITHMS]
MATCHERS = ("cn", "gql")


def random_labeled_digraph(n, seed, labels="ABC"):
    import random

    rng = random.Random(seed)
    g = Graph(directed=True)
    for i in range(n):
        g.add_node(i, label=rng.choice(labels))
    for _ in range(3 * n):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, weight=rng.random())
    return g


def triangle(labels=(None, None, None)):
    p = Pattern("tri")
    for var, label in zip("ABC", labels):
        p.add_node(var, label=label)
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


def directed_path(labels=("A", "B", "C")):
    p = Pattern("dpath")
    for var, label in zip("XYZ", labels):
        p.add_node(var, label=label)
    p.add_edge("X", "Y", directed=True)
    p.add_edge("Y", "Z", directed=True)
    return p


def assert_same_reads(graph, csr):
    assert csr.directed == graph.directed
    assert csr.num_nodes == graph.num_nodes
    assert csr.num_edges == graph.num_edges
    assert set(csr.nodes()) == set(graph.nodes())
    assert set(csr.edges()) == set(graph.edges())
    for n in graph.nodes():
        assert csr.node_attrs(n) == graph.node_attrs(n)
        assert set(csr.neighbors(n)) == set(graph.neighbors(n))
        assert set(csr.out_neighbors(n)) == set(graph.out_neighbors(n))
        assert set(csr.in_neighbors(n)) == set(graph.in_neighbors(n))
        assert csr.degree(n) == graph.degree(n)
        assert csr.out_degree(n) == graph.out_degree(n)
        assert csr.in_degree(n) == graph.in_degree(n)
    for u, v in graph.edges():
        assert csr.has_edge(u, v)
        assert csr.edge_attrs(u, v) == graph.edge_attrs(u, v)


class TestAccessPathEquivalence:
    @given(st.integers(5, 30), st.integers(0, 100))
    def test_undirected_reads(self, n, seed):
        g = labeled_preferential_attachment(n, m=2, seed=seed)
        assert_same_reads(g, freeze(g))

    @given(st.integers(5, 25), st.integers(0, 100))
    def test_directed_reads(self, n, seed):
        g = random_labeled_digraph(n, seed)
        assert_same_reads(g, freeze(g))

    @given(st.integers(5, 25), st.integers(0, 100), st.integers(0, 4))
    def test_traversal_agreement(self, n, seed, k):
        g = random_labeled_digraph(n, seed)
        csr = freeze(g)
        for source in list(g.nodes())[:5]:
            assert bfs_distances(csr, source, max_depth=k) == bfs_distances(
                g, source, max_depth=k
            )
            assert list(bfs_layer_sets(csr, source, max_depth=k)) == list(
                bfs_layer_sets(g, source, max_depth=k)
            )
            assert k_hop_nodes(csr, source, k) == k_hop_nodes(g, source, k)

    def test_label_partitions(self):
        g = labeled_preferential_attachment(30, m=3, seed=5)
        csr = freeze(g)
        for n in g.nodes():
            by_label = {}
            for nbr in g.neighbors(n):
                by_label.setdefault(g.label(nbr), set()).add(nbr)
            for label, expected in by_label.items():
                assert set(csr.neighbors_with_label(n, label)) == expected
            assert csr.neighbors_with_label(n, "no-such-label") == ()

    def test_profile_index_matches_generic(self):
        from repro.graph.profiles import NodeProfileIndex

        g = labeled_preferential_attachment(25, m=2, seed=9)
        csr = freeze(g)
        generic = NodeProfileIndex(g)
        for n in g.nodes():
            assert csr.profile_index.profile(n) == generic.profile(n)
        for label in csr.labels():
            assert set(csr.profile_index.nodes_with_label(label)) == set(
                generic.nodes_with_label(label)
            )


class TestSnapshotSemantics:
    def test_freeze_is_idempotent(self):
        g = preferential_attachment(10, m=2, seed=0)
        csr = freeze(g)
        assert freeze(csr) is csr

    def test_mutation_raises(self):
        csr = freeze(preferential_attachment(6, m=2, seed=0))
        with pytest.raises(GraphError):
            csr.add_node(99)
        with pytest.raises(GraphError):
            csr.add_edge(0, 5)
        with pytest.raises(GraphError):
            csr.remove_node(0)
        with pytest.raises(GraphError):
            csr.set_node_attr(0, "x", 1)

    def test_missing_node_raises(self):
        csr = freeze(preferential_attachment(6, m=2, seed=0))
        with pytest.raises(NodeNotFoundError):
            csr.neighbors(99)

    def test_thaw_round_trip(self):
        g = random_labeled_digraph(15, seed=3)
        thawed = freeze(g).thaw()
        assert_same_reads(g, freeze(thawed))
        thawed.add_node("new")  # mutable again
        assert thawed.has_node("new")

    def test_pickle_round_trip(self):
        g = random_labeled_digraph(20, seed=4)
        csr = freeze(g)
        clone = pickle.loads(pickle.dumps(csr))
        assert_same_reads(g, clone)
        p = directed_path()
        assert {m.canonical_key for m in find_matches(clone, p)} == {
            m.canonical_key for m in find_matches(csr, p)
        }

    def test_non_integer_node_ids(self):
        g = Graph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        csr = freeze(g)
        assert_same_reads(g, csr)
        from repro.census import census

        assert census(csr, triangle(), 1) == census(g, triangle(), 1)


class TestDifferentialMatching:
    @pytest.mark.parametrize("matcher", MATCHERS)
    @given(st.integers(6, 24), st.integers(0, 60))
    @settings(max_examples=20)
    def test_matchers_agree_labeled(self, matcher, n, seed):
        g = labeled_preferential_attachment(n, m=2, seed=seed)
        csr = freeze(g)
        pattern = triangle(labels=("A", "B", "C"))
        want = {m.canonical_key for m in find_matches(g, pattern, method=matcher)}
        got = {m.canonical_key for m in find_matches(csr, pattern, method=matcher)}
        assert got == want

    @pytest.mark.parametrize("matcher", MATCHERS)
    @given(st.integers(6, 20), st.integers(0, 60))
    @settings(max_examples=20)
    def test_matchers_agree_directed(self, matcher, n, seed):
        g = random_labeled_digraph(n, seed)
        csr = freeze(g)
        pattern = directed_path()
        want = {m.canonical_key for m in find_matches(g, pattern, method=matcher)}
        got = {m.canonical_key for m in find_matches(csr, pattern, method=matcher)}
        assert got == want


class TestDifferentialCensus:
    @pytest.mark.parametrize("algorithm", CENSUS_SERIES)
    @given(st.integers(6, 24), st.integers(0, 3), st.integers(0, 60))
    @settings(max_examples=15)
    def test_census_agrees_unlabeled(self, algorithm, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        csr = freeze(g)
        fn = ALGORITHMS[algorithm]
        assert fn(csr, triangle(), k) == fn(g, triangle(), k)

    @pytest.mark.parametrize("algorithm", CENSUS_SERIES)
    @given(st.integers(6, 20), st.integers(1, 2), st.integers(0, 60))
    @settings(max_examples=15)
    def test_census_agrees_directed_labeled(self, algorithm, n, k, seed):
        g = random_labeled_digraph(n, seed)
        csr = freeze(g)
        fn = ALGORITHMS[algorithm]
        assert fn(csr, directed_path(), k) == fn(g, directed_path(), k)

    @given(st.integers(6, 20), st.integers(0, 40))
    def test_census_agrees_er_graph(self, n, seed):
        g = erdos_renyi(n, min(3 * n, n * (n - 1) // 2), seed=seed)
        csr = freeze(g)
        for algorithm in ("nd-pvot", "pt-opt"):
            fn = ALGORITHMS[algorithm]
            assert fn(csr, triangle(), 2) == fn(g, triangle(), 2)

    @pytest.mark.parametrize("isolated", (1, 3))
    def test_trailing_isolated_nodes(self, isolated):
        # Regression: clamping the reduceat start offsets made a
        # trailing isolated node (start offset == len(indices)) truncate
        # the previous node's adjacency slice, so the bit-parallel BFS
        # missed its last neighbor and undercounted the census.
        g = Graph()
        for i in range(3 + isolated):
            g.add_node(i)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(0, 2)
        csr = freeze(g)
        for algorithm in CENSUS_SERIES:
            fn = ALGORITHMS[algorithm]
            counts = fn(csr, triangle(), 1)
            assert counts == fn(g, triangle(), 1), algorithm
            assert counts[0] == counts[1] == counts[2] == 1
            assert all(counts[3 + i] == 0 for i in range(isolated))


class TestNumpyFallback:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(repro.graph.csr, "_np", None)
        monkeypatch.setattr(repro.census.indexed, "_np", None)

    def test_numpy_available_reports_stub(self, no_numpy):
        assert not numpy_available()

    def test_reads_and_census_without_numpy(self, no_numpy):
        g = labeled_preferential_attachment(18, m=2, seed=11)
        csr = CSRGraph(g)
        assert_same_reads(g, csr)
        fn = ALGORITHMS["nd-pvot"]
        assert fn(csr, triangle(), 2) == fn(g, triangle(), 2)
        for source in list(g.nodes())[:3]:
            assert bfs_distances(csr, source) == bfs_distances(g, source)

    def test_frontier_arrays_requires_numpy(self, no_numpy):
        csr = CSRGraph(preferential_attachment(8, m=2, seed=0))
        with pytest.raises(GraphError):
            csr.frontier_arrays(0)

    def test_numpy1_without_bitwise_count_falls_back(self, monkeypatch):
        # numpy < 2.0 has no np.bitwise_count; the bit-parallel path
        # must decline instead of raising AttributeError mid-census.
        from repro.census.indexed import pvot_indexed_counts

        monkeypatch.setattr(repro.census.indexed, "_HAS_BITWISE_COUNT", False)
        g = labeled_preferential_attachment(18, m=2, seed=11)
        csr = freeze(g)
        assert pvot_indexed_counts(csr, [], None, [], 2, 0, {}) is None
        fn = ALGORITHMS["nd-pvot"]
        assert fn(csr, triangle(), 2) == fn(g, triangle(), 2)
