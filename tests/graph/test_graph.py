"""Unit tests for the in-memory Graph."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.graph import Graph


class TestNodes:
    def test_add_node_is_idempotent(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_node(1)
        assert g.num_nodes == 1
        assert g.node_attr(1, "label") == "A"

    def test_add_node_merges_attrs(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_node(1, weight=3)
        assert g.node_attrs(1) == {"label": "A", "weight": 3}

    def test_contains_and_iter(self):
        g = Graph()
        g.add_node("x")
        g.add_node("y")
        assert "x" in g and "z" not in g
        assert set(g) == {"x", "y"}
        assert len(g) == 2

    def test_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.node_attrs(42)
        with pytest.raises(NodeNotFoundError):
            g.neighbors(42)

    def test_remove_node_removes_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.remove_node(2)
        assert g.num_nodes == 2
        assert g.num_edges == 0
        assert g.neighbors(1) == set()

    def test_remove_node_directed(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        g.add_edge(2, 4)
        g.remove_node(2)
        assert g.num_edges == 0
        assert g.out_neighbors(1) == set()
        assert g.out_neighbors(3) == set()

    def test_labels(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_node(2, label="B")
        g.add_node(3)
        assert g.labels() == {"A", "B", None}
        assert g.label(3) is None

    def test_set_node_attr(self):
        g = Graph()
        g.add_node(1)
        g.set_node_attr(1, "label", "Z")
        assert g.label(1) == "Z"


class TestEdgesUndirected:
    def test_add_edge_creates_endpoints(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_node(1) and g.has_node(2)
        assert g.num_edges == 1

    def test_edge_is_symmetric(self):
        g = Graph()
        g.add_edge(1, 2)
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert g.neighbors(1) == {2}
        assert g.neighbors(2) == {1}

    def test_edge_attrs_shared_both_directions(self):
        g = Graph()
        g.add_edge(1, 2, weight=5)
        assert g.edge_attr(1, 2, "weight") == 5
        assert g.edge_attr(2, 1, "weight") == 5
        g.add_edge(2, 1, sign=-1)  # merge, not duplicate
        assert g.num_edges == 1
        assert g.edge_attrs(1, 2) == {"weight": 5, "sign": -1}

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2)
        g.remove_edge(2, 1)
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_edges_listed_once(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert len(list(g.edges())) == 2

    def test_string_node_ids(self):
        g = Graph()
        g.add_edge("alice", "bob", kind="friend")
        assert g.has_edge("bob", "alice")
        assert g.edge_attr("bob", "alice", "kind") == "friend"


class TestEdgesDirected:
    def test_direction_respected(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_in_out_neighbors(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        g.add_edge(2, 4)
        assert g.in_neighbors(2) == {1, 3}
        assert g.out_neighbors(2) == {4}
        assert g.neighbors(2) == {1, 3, 4}

    def test_degrees(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        g.add_edge(2, 3)
        assert g.out_degree(2) == 2
        assert g.in_degree(2) == 1
        assert g.degree(2) == 2  # distinct neighbors: {1, 3}

    def test_antiparallel_edges_distinct(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, w=1)
        g.add_edge(2, 1, w=9)
        assert g.num_edges == 2
        assert g.edge_attr(1, 2, "w") == 1
        assert g.edge_attr(2, 1, "w") == 9


class TestCopy:
    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge(1, 2, w=1)
        g.add_node(1, label="A")
        h = g.copy()
        h.add_edge(2, 3)
        h.set_node_attr(1, "label", "B")
        assert g.num_edges == 1
        assert g.label(1) == "A"
        assert h.label(1) == "B"

    def test_copy_preserves_direction(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        h = g.copy()
        assert h.directed
        assert h.has_edge(1, 2) and not h.has_edge(2, 1)

    def test_repr(self):
        g = Graph()
        g.add_edge(1, 2)
        assert "nodes=2" in repr(g) and "edges=1" in repr(g)


class TestMutationVersion:
    """The monotonic mutation counter version-keyed consumers rely on."""

    def test_starts_at_zero_and_bumps_on_mutation(self):
        g = Graph()
        assert g.version == 0
        g.add_node(1)
        v1 = g.version
        assert v1 > 0
        g.add_edge(1, 2)
        assert g.version > v1

    def test_noop_add_node_does_not_bump(self):
        g = Graph()
        g.add_node(1)
        v = g.version
        g.add_node(1)  # already present, no attrs
        assert g.version == v

    def test_noop_readd_edge_does_not_bump(self):
        g = Graph()
        g.add_edge(1, 2)
        v = g.version
        g.add_edge(1, 2)  # no attrs to merge
        assert g.version == v

    def test_attribute_updates_bump(self):
        g = Graph()
        g.add_edge(1, 2)
        v = g.version
        g.set_node_attr(1, "label", "A")
        assert g.version > v
        v = g.version
        g.add_edge(1, 2, w=3)  # attr merge on an existing edge
        assert g.version > v

    def test_removals_bump(self):
        g = Graph()
        g.add_edge(1, 2)
        v = g.version
        g.remove_edge(1, 2)
        assert g.version > v
        v = g.version
        g.remove_node(1)
        assert g.version > v
