"""Tests for BFS traversal primitives and neighborhood extraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    connected_components,
    eccentricity,
    ego_subgraph,
    k_hop_nodes,
    pairwise_distances,
    shortest_path_length,
)
from repro.graph.views import induced_subgraph, intersection_neighborhood, union_neighborhood


def path_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_depth_truncates(self):
        g = path_graph(5)
        assert bfs_distances(g, 0, max_depth=2) == {0: 0, 1: 1, 2: 2}

    def test_source_included_at_zero(self):
        g = path_graph(3)
        assert bfs_distances(g, 1, max_depth=0) == {1: 0}

    def test_layers_in_bfs_order(self):
        g = path_graph(4)
        layers = list(bfs_layers(g, 0))
        distances = [d for _n, d in layers]
        assert distances == sorted(distances)

    def test_directed_expansion_is_direction_blind(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 2)
        # 3 is reachable from 1 through 2 when ignoring direction.
        assert bfs_distances(g, 1) == {1: 0, 2: 1, 3: 2}

    def test_shortest_path_length(self):
        g = path_graph(6)
        assert shortest_path_length(g, 0, 4) == 4
        assert shortest_path_length(g, 2, 2) == 0
        assert shortest_path_length(g, 0, 5, max_depth=3) is None

    def test_disconnected_returns_none(self):
        g = Graph()
        g.add_node(1)
        g.add_node(2)
        assert shortest_path_length(g, 1, 2) is None


class TestKHop:
    def test_k_hop_nodes(self):
        g = path_graph(7)
        assert k_hop_nodes(g, 3, 2) == {1, 2, 3, 4, 5}

    def test_k_zero_is_self(self):
        g = path_graph(3)
        assert k_hop_nodes(g, 1, 0) == {1}

    @given(st.integers(10, 60), st.integers(0, 3), st.integers(0, 1000))
    def test_k_hop_monotone_in_k(self, n, k, seed):
        g = preferential_attachment(n, m=2, seed=seed)
        assert k_hop_nodes(g, 0, k) <= k_hop_nodes(g, 0, k + 1)

    def test_ego_subgraph_is_induced(self):
        g = Graph()
        for u, v in [(1, 2), (2, 3), (1, 3), (3, 4)]:
            g.add_edge(u, v)
        sub = ego_subgraph(g, 1, 1)
        assert set(sub.nodes()) == {1, 2, 3}
        # Induced: the 2-3 edge is kept even though neither is the ego.
        assert sub.has_edge(2, 3)
        assert not sub.has_node(4)


class TestViews:
    def test_induced_subgraph_keeps_attrs(self):
        g = Graph()
        g.add_node(1, label="A")
        g.add_edge(1, 2, weight=7)
        sub = induced_subgraph(g, [1, 2])
        assert sub.node_attr(1, "label") == "A"
        assert sub.edge_attr(1, 2, "weight") == 7

    def test_induced_subgraph_directed(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = induced_subgraph(g, [1, 2])
        assert sub.directed
        assert sub.has_edge(1, 2) and not sub.has_edge(2, 1)
        assert sub.num_edges == 1

    def test_intersection_and_union_neighborhoods(self):
        g = path_graph(5)
        inter = intersection_neighborhood(g, 0, 4, 2)
        union = union_neighborhood(g, 0, 4, 2)
        assert inter == {2}
        assert union == {0, 1, 2, 3, 4}

    @given(st.integers(8, 40), st.integers(0, 2), st.integers(0, 500))
    def test_intersection_subset_of_union(self, n, k, seed):
        g = erdos_renyi(n, min(2 * n, n * (n - 1) // 2), seed=seed)
        inter = intersection_neighborhood(g, 0, 1, k)
        union = union_neighborhood(g, 0, 1, k)
        assert inter <= union


class TestComponents:
    def test_components_partition(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(3, 4)
        g.add_node(5)
        comps = sorted(connected_components(g), key=lambda c: min(c))
        assert comps == [{1, 2}, {3, 4}, {5}]

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_pairwise_distances(self):
        g = path_graph(4)
        d = pairwise_distances(g, nodes=[0, 3])
        assert d[0][3] == 3
        assert d[3][0] == 3
