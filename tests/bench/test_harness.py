"""Tests for the benchmark harness and reporting."""

from repro.bench.harness import Measurement, Sweep, time_call
from repro.bench.reporting import render_series, speedup_table


class TestTimeCall:
    def test_returns_time_and_result(self):
        seconds, result = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0

    def test_kwargs_forwarded(self):
        _t, result = time_call(sorted, [3, 1], reverse=True)
        assert result == [3, 1]


class TestSweep:
    def make(self):
        s = Sweep("demo", x_label="n")
        s.record("A", 10, 1.0)
        s.record("A", 20, 2.0)
        s.record("B", 10, 4.0)
        s.record("B", 20, 4.0)
        return s

    def test_run_records_and_returns(self):
        s = Sweep("t")
        result = s.run("series", 1, lambda: 42)
        assert result == 42
        assert s.value("series", 1) >= 0.0

    def test_series_and_xs_preserve_order(self):
        s = self.make()
        assert s.series_names() == ["A", "B"]
        assert s.xs() == [10, 20]

    def test_value_missing_is_none(self):
        s = self.make()
        assert s.value("A", 99) is None
        assert s.value("Z", 10) is None

    def test_as_table(self):
        s = self.make()
        assert s.as_table() == {"A": {10: 1.0, 20: 2.0}, "B": {10: 4.0, 20: 4.0}}

    def test_speedup(self):
        s = self.make()
        assert s.speedup("B", "A", 10) == 4.0
        assert s.speedup("B", "A", 99) is None

    def test_measurement_meta(self):
        m = Measurement("A", 1, 0.5, {"note": "x"})
        assert m.meta["note"] == "x"


class TestReporting:
    def test_render_series_cells(self):
        s = TestSweep().make()
        text = render_series(s)
        assert "demo" in text
        assert "1.000" in text and "4.000" in text
        assert text.count("\n") >= 3

    def test_render_missing_cell_dash(self):
        s = Sweep("gaps")
        s.record("A", 1, 1.0)
        s.record("B", 2, 2.0)
        assert "-" in render_series(s)

    def test_speedup_table(self):
        s = TestSweep().make()
        text = speedup_table(s, "B")
        assert "speedup over B" in text
        assert "4.0x" in text
        assert "B:" not in text.replace("speedup over B", "")
