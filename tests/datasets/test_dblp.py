"""Tests for the synthetic DBLP generator and workloads."""

import pytest

from repro.datasets.dblp import synthetic_dblp
from repro.datasets.workloads import census_workload, matching_workload, pa_graph


class TestSyntheticDBLP:
    @pytest.fixture(scope="class")
    def data(self):
        return synthetic_dblp(num_authors=150, papers_per_year=30, seed=1)

    def test_sizes(self, data):
        assert data.train_graph.num_nodes == 150
        assert data.train_graph.num_edges > 0
        assert len(data.test_pairs) > 0

    def test_test_pairs_are_new(self, data):
        g = data.train_graph
        for a, b in data.test_pairs:
            assert not g.has_edge(a, b)

    def test_papers_cover_both_eras(self, data):
        years = {y for y, _team in data.papers}
        assert min(years) == 2001 and max(years) == 2010

    def test_team_sizes_bounded(self, data):
        for _y, team in data.papers:
            assert 1 <= len(team) <= 4

    def test_deterministic(self):
        a = synthetic_dblp(num_authors=60, papers_per_year=10, seed=9)
        b = synthetic_dblp(num_authors=60, papers_per_year=10, seed=9)
        assert set(a.train_graph.edges()) == set(b.train_graph.edges())
        assert a.test_pairs == b.test_pairs

    def test_candidate_pairs_exclude_existing_edges(self, data):
        cands = data.candidate_pairs(max_distance=2)
        g = data.train_graph
        assert cands
        for a, b in cands:
            assert a < b
            assert not g.has_edge(a, b)

    def test_closure_signal_present(self, data):
        """Future collaborators share more common neighbors than random
        non-collaborating pairs — the planted signal."""
        import random

        from repro.graph.traversal import k_hop_nodes

        g = data.train_graph

        def common(pair):
            return len(
                (k_hop_nodes(g, pair[0], 1) - {pair[0]})
                & (k_hop_nodes(g, pair[1], 1) - {pair[1]})
            )

        future = [p for p in data.test_pairs if p[0] in g and p[1] in g]
        rng = random.Random(0)
        nodes = list(g.nodes())
        random_pairs = []
        while len(random_pairs) < len(future):
            a, b = rng.sample(nodes, 2)
            if not g.has_edge(a, b):
                random_pairs.append((a, b))
        avg_future = sum(map(common, future)) / len(future)
        avg_random = sum(map(common, random_pairs)) / len(random_pairs)
        assert avg_future > avg_random


class TestWorkloads:
    def test_pa_graph_memoized(self):
        assert pa_graph(200, labeled=True) is pa_graph(200, labeled=True)

    def test_matching_workload_labels_follow_pattern(self):
        g, p = matching_workload(300, "clq3")
        assert g.labels() >= {"A", "B", "C"}
        g2, p2 = matching_workload(300, "clq3-unlb")
        assert g2.labels() == {None}

    def test_census_workload(self):
        g, p, k = census_workload(200, "clq3-unlb", k=2)
        assert k == 2
        assert p.name == "clq3-unlb"
        assert g.num_nodes == 200
