"""Fault-injection integration tests: retries, deadlines, degradation.

These are the tests the fault hooks exist for: kill workers and demand
serial-identical counts, expire deadlines inside every algorithm's hot
loop, and verify the degradation path yields honestly-marked partial
results without corrupting observability state.
"""

import multiprocessing
import time

import pytest

from repro.census import ALGORITHMS, census, parallel_census
from repro.errors import BudgetExceeded
from repro.exec import (
    ExecutionBudget,
    FaultPlan,
    governed_census,
    install_faults,
)
from repro.graph.graph import Graph
from repro.matching.pattern import Pattern
from repro.obs import ObsContext


def make_graph(n=60, seed=3):
    import random

    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        g.add_node(i)
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i))
        other = rng.randrange(n)
        if other != i:
            g.add_edge(i, other)
    return g


def edge_pattern():
    p = Pattern("edge")
    p.add_edge("A", "B")
    return p


def drain_children(timeout=10.0):
    """Wait for pool worker processes to exit; returns the stragglers."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        children = multiprocessing.active_children()
        if not children:
            return []
        time.sleep(0.05)
    return multiprocessing.active_children()


class TestWorkerDeath:
    def test_dead_workers_retry_to_serial_counts(self):
        g = make_graph()
        p = edge_pattern()
        serial = census(g, p, 2, algorithm="nd-pvot")
        plan = FaultPlan().add("parallel.chunk", "die", at=1, scope="worker")
        ctx = ObsContext()
        with ctx, install_faults(plan):
            par = parallel_census(
                g, p, 2, algorithm="nd-pvot", workers=2, executor="process"
            )
        assert par == serial
        counters = dict(ctx.registry.snapshot()["counters"])
        assert counters.get("census.parallel.chunk_retries", 0) >= 1
        assert counters.get("census.parallel.worker_crashes", 0) >= 1
        assert not drain_children()

    def test_every_worker_dying_still_converges(self):
        g = make_graph(n=40)
        p = edge_pattern()
        serial = census(g, p, 1, algorithm="pt-bas")
        # at=None: every chunk hit in any worker dies, so only the
        # parent's serial retries can make progress.
        plan = FaultPlan().add("parallel.chunk", "die", at=None, scope="worker")
        with install_faults(plan):
            par = parallel_census(
                g, p, 1, algorithm="pt-bas", workers=2, executor="process",
                chunks=4,
            )
        assert par == serial
        assert not drain_children()


class TestInjectedDeadlines:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_deadline_expires_in_every_algorithm(self, algorithm):
        g = make_graph(n=30)
        p = edge_pattern()
        # The first BFS/traversal wave sleeps past the deadline; the
        # next cooperative tick must notice.
        plan = FaultPlan().add("census.bfs", "delay", at=1, delay=0.03)
        ctx = ObsContext()
        with ctx, install_faults(plan):
            with pytest.raises(BudgetExceeded) as exc:
                with ExecutionBudget(timeout=0.01):
                    census(g, p, 1, algorithm=algorithm)
        assert exc.value.reason == "deadline"
        counters = dict(ctx.registry.snapshot()["counters"])
        assert counters.get("exec.faults.injected") == 1
        assert counters.get("exec.faults.delay") == 1

    def test_deadline_expires_in_matcher_expansion(self):
        g = make_graph(n=30)
        p = edge_pattern()
        plan = FaultPlan().add("match.expand", "delay", at=1, delay=0.03)
        with install_faults(plan):
            with pytest.raises(BudgetExceeded):
                with ExecutionBudget(timeout=0.01):
                    census(g, p, 1, algorithm="nd-pvot")

    def test_injected_exception_propagates(self):
        g = make_graph(n=20)
        p = edge_pattern()
        plan = FaultPlan().add(
            "census.bfs", "raise", at=2, exc=ValueError("injected")
        )
        with install_faults(plan):
            with pytest.raises(ValueError, match="injected"):
                census(g, p, 1, algorithm="nd-bas")


class TestDegradation:
    def test_degrade_returns_partial_estimates(self):
        g = make_graph(n=40)
        p = edge_pattern()
        plan = FaultPlan().add("census.bfs", "delay", at=1, delay=0.03)
        ctx = ObsContext()
        with ctx, install_faults(plan):
            with ExecutionBudget(timeout=0.01):
                outcome = governed_census(
                    g, p, 1, algorithm="nd-pvot", degrade=True,
                    degrade_sample=30,
                )
        assert outcome.partial and outcome.degraded
        assert "approximate" in outcome.note
        assert set(outcome.counts) == set(g.nodes())
        counters = dict(ctx.registry.snapshot()["counters"])
        assert counters.get("exec.budget.deadline_exceeded") == 1
        assert counters.get("exec.degraded") == 1
        # The obs context survived the mid-run exception: spans closed,
        # counters merged, no partial state.
        assert ctx.roots == [] or all(s.duration is not None for s in ctx.roots)

    def test_without_degrade_the_error_propagates_and_counts(self):
        g = make_graph(n=40)
        p = edge_pattern()
        plan = FaultPlan().add("census.bfs", "delay", at=1, delay=0.03)
        ctx = ObsContext()
        with ctx, install_faults(plan):
            with pytest.raises(BudgetExceeded):
                with ExecutionBudget(timeout=0.01):
                    governed_census(g, p, 1, algorithm="nd-pvot", degrade=False)
        counters = dict(ctx.registry.snapshot()["counters"])
        assert counters.get("exec.budget.deadline_exceeded") == 1
        assert "exec.degraded" not in counters

    def test_ungoverned_governed_census_is_exact(self):
        g = make_graph(n=30)
        p = edge_pattern()
        outcome = governed_census(g, p, 1, algorithm="nd-bas")
        assert not outcome.partial
        assert outcome.counts == census(g, p, 1, algorithm="nd-bas")


class TestPoolShutdown:
    def test_raising_chunk_shuts_pool_down_promptly(self):
        """Regression: a chunk exception used to leave queued chunks
        running to completion (shutdown waited on them); the pool must
        now cancel queued work and reap its workers."""
        g = make_graph(n=80)
        p = edge_pattern()
        # Each fresh worker raises on its first chunk; any chunk a
        # worker would run after that sleeps 1.5 s.  With queued-chunk
        # cancellation nothing ever reaches a sleep on the happy path,
        # so the call must fail fast instead of draining all 8 chunks.
        plan = (
            FaultPlan()
            .add("parallel.chunk", "raise", at=1, scope="worker",
                 exc=RuntimeError("injected chunk failure"))
            .add("parallel.chunk", "delay", at=None, delay=1.5, scope="worker")
        )
        start = time.perf_counter()
        with install_faults(plan):
            with pytest.raises(RuntimeError, match="injected chunk failure"):
                parallel_census(
                    g, p, 1, algorithm="nd-pvot", workers=2,
                    executor="process", chunks=8,
                )
        elapsed = time.perf_counter() - start
        assert elapsed < 4.0, f"queued chunks were not cancelled ({elapsed:.1f}s)"
        assert not drain_children()
