"""Unit tests for the fault-injection plan semantics."""

import pickle
import time

import pytest

from repro.exec.faults import (
    SITES,
    Fault,
    FaultPlan,
    active_plan,
    fault_point,
    install_faults,
    mark_worker_process,
)


class TestFaultValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            Fault("no.such.site", "raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            Fault("census.bfs", "explode")

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            Fault("census.bfs", "raise", scope="thread")

    def test_raise_defaults_exception(self):
        f = Fault("census.bfs", "raise")
        assert isinstance(f.exc, RuntimeError)


class TestPlanSemantics:
    def test_disarmed_fault_point_is_noop(self):
        assert active_plan() is None
        for site in SITES:
            fault_point(site)  # must not raise

    def test_fires_at_exact_hit_index(self):
        plan = FaultPlan().add("census.bfs", "raise", at=3)
        with install_faults(plan):
            fault_point("census.bfs")
            fault_point("census.bfs")
            with pytest.raises(RuntimeError):
                fault_point("census.bfs")
        assert plan.hits["census.bfs"] == 3
        assert plan.fired == 1

    def test_none_fires_every_hit(self):
        plan = FaultPlan().add("match.expand", "delay", at=None, delay=0.0)
        with install_faults(plan):
            for _ in range(4):
                fault_point("match.expand")
        assert plan.fired == 4

    def test_sites_are_independent(self):
        plan = FaultPlan().add("census.bfs", "raise", at=1)
        with install_faults(plan):
            fault_point("match.expand")
            fault_point("parallel.chunk")
            with pytest.raises(RuntimeError):
                fault_point("census.bfs")

    def test_delay_sleeps(self):
        plan = FaultPlan().add("census.bfs", "delay", at=1, delay=0.02)
        start = time.perf_counter()
        with install_faults(plan):
            fault_point("census.bfs")
        assert time.perf_counter() - start >= 0.02

    def test_install_restores_previous_plan(self):
        outer = FaultPlan()
        inner = FaultPlan()
        with install_faults(outer):
            with install_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None


class TestWorkerScope:
    def test_worker_scoped_fault_skipped_in_parent(self):
        plan = FaultPlan().add("parallel.chunk", "raise", at=None, scope="worker")
        with install_faults(plan):
            fault_point("parallel.chunk")  # parent process: no fire
        assert plan.fired == 0

    def test_worker_scoped_fault_fires_when_marked(self):
        plan = FaultPlan().add("parallel.chunk", "raise", at=None, scope="worker")
        mark_worker_process(True)
        try:
            with install_faults(plan):
                with pytest.raises(RuntimeError):
                    fault_point("parallel.chunk")
        finally:
            mark_worker_process(False)


class TestPickling:
    def test_hit_counters_reset_across_pickle(self):
        plan = FaultPlan().add("census.bfs", "delay", at=None, delay=0.0)
        with install_faults(plan):
            fault_point("census.bfs")
        assert plan.hits == {"census.bfs": 1}
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.hits == {}
        assert clone.fired == 0
        assert len(clone.faults) == 1
        assert clone.faults[0].site == "census.bfs"
