"""Unit tests for the execution budget: limits, transfer, activation."""

import time

import pytest

from repro.errors import BudgetExceeded, Cancelled
from repro.exec.budget import ExecutionBudget, activate_budget, current_budget


class TestLimits:
    def test_unlimited_budget_never_raises(self):
        b = ExecutionBudget()
        b.tick(10**6)
        b.count_result(10**6)
        assert b.ops == 10**6

    def test_work_budget(self):
        b = ExecutionBudget(max_ops=10)
        b.tick(10)
        with pytest.raises(BudgetExceeded) as exc:
            b.tick()
        assert exc.value.reason == "work"
        assert exc.value.spent == 11
        assert exc.value.limit == 10

    def test_result_cap(self):
        b = ExecutionBudget(max_results=2)
        b.count_result(2)
        with pytest.raises(BudgetExceeded) as exc:
            b.count_result()
        assert exc.value.reason == "results"

    def test_deadline(self):
        b = ExecutionBudget(timeout=0.005)
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded) as exc:
            b.tick()
        assert exc.value.reason == "deadline"
        assert exc.value.spent >= 0.005

    def test_invalid_limits_rejected(self):
        for kwargs in ({"timeout": 0}, {"max_ops": -1}, {"max_results": 0}):
            with pytest.raises(ValueError):
                ExecutionBudget(**kwargs)

    def test_cancel(self):
        b = ExecutionBudget()
        assert not b.cancelled
        b.cancel()
        assert b.cancelled
        with pytest.raises(Cancelled):
            b.check()


class TestActivation:
    def test_ambient_protocol(self):
        assert current_budget() is None
        b = ExecutionBudget(max_ops=5)
        with b:
            assert current_budget() is b
            with activate_budget(None):
                # Explicit suspension, as used by the degradation path.
                assert current_budget() is None
            assert current_budget() is b
        assert current_budget() is None

    def test_activation_restored_after_exception(self):
        b = ExecutionBudget(max_ops=1)
        with pytest.raises(BudgetExceeded):
            with b:
                b.tick(2)
        assert current_budget() is None


class TestTransfer:
    def test_spec_roundtrip_carries_remaining_allowance(self):
        b = ExecutionBudget(timeout=60.0, max_ops=100, max_results=7)
        b.tick(30)
        spec = b.spec()
        assert spec["max_ops"] == 70
        assert spec["max_results"] == 7
        assert 0 < spec["timeout"] <= 60.0
        rebuilt = ExecutionBudget.from_spec(spec)
        rebuilt.tick(70)
        with pytest.raises(BudgetExceeded):
            rebuilt.tick()

    def test_spec_of_unlimited_budget(self):
        spec = ExecutionBudget().spec()
        assert spec == {"timeout": None, "max_ops": None, "max_results": None}
        assert ExecutionBudget.from_spec(None) is None

    def test_exhausted_deadline_ships_as_epsilon(self):
        b = ExecutionBudget(timeout=0.001)
        time.sleep(0.005)
        spec = b.spec()
        assert spec["timeout"] > 0
        rebuilt = ExecutionBudget.from_spec(spec)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            rebuilt.tick()

    def test_exhausted_work_budget_ships_one_op(self):
        b = ExecutionBudget(max_ops=5)
        b.ops = 5
        assert b.spec()["max_ops"] == 1

    def test_exception_pickles_across_processes(self):
        import pickle

        exc = BudgetExceeded("deadline", 1.5, 1.0)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.reason == "deadline"
        assert clone.spent == 1.5
        assert clone.limit == 1.0
