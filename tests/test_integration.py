"""Cross-subsystem integration tests: language -> engine -> census ->
storage, exercised together the way a downstream user would."""

import pytest

from repro import Graph, QueryEngine
from repro.graph.generators import labeled_preferential_attachment, signed_network
from repro.storage import DiskGraph


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def graph(self):
        return labeled_preferential_attachment(120, m=3, seed=17)

    def test_script_with_patterns_queries_and_topk_style_sort(self, graph):
        eng = QueryEngine(graph)
        results = eng.execute_script(
            """
            PATTERN wedge {?A-?B; ?B-?C; ?A!-?C;}
            PATTERN labeled_pair {?A-?B; [?A.LABEL=?B.LABEL];}

            SELECT ID, COUNTP(wedge, SUBGRAPH(ID, 1)) AS open_triads,
                   COUNTP(labeled_pair, SUBGRAPH(ID, 1)) AS homophily
            FROM nodes
            ORDER BY open_triads DESC
            LIMIT 10;
            """
        )
        table = results[0]
        assert table.columns == ["ID", "open_triads", "homophily"]
        assert len(table) == 10
        opens = table.column("open_triads")
        assert opens == sorted(opens, reverse=True)

    def test_language_census_matches_programmatic_census(self, graph):
        from repro.census import census
        from repro.lang.parser import parse_pattern

        pattern = parse_pattern("PATTERN tri {?A-?B; ?B-?C; ?A-?C;}")
        expected = census(graph, pattern, 2, algorithm="nd-bas")
        eng = QueryEngine(graph, algorithm="pt-opt")
        eng.define_pattern(pattern)
        table = eng.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
        got = dict(table.rows)
        assert got == expected

    def test_same_script_memory_vs_disk(self, graph, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db", graph)
        script = (
            "PATTERN duo {?A-?B; [?A.LABEL='A']; [?B.LABEL='B'];}\n"
            "SELECT ID, COUNTP(duo, SUBGRAPH(ID, 2)) FROM nodes ORDER BY ID;"
        )
        mem_result = QueryEngine(graph).execute_script(script)
        disk_result = QueryEngine(store).execute_script(script)
        assert mem_result == disk_result

    def test_where_rnd_selectivity_controls_row_count(self, graph):
        eng = QueryEngine(graph, seed=3)
        full = eng.execute("SELECT ID FROM nodes")
        sampled = eng.execute("SELECT ID FROM nodes WHERE RND() < 0.25")
        assert 0 < len(sampled) < len(full)
        # Roughly a quarter (binomial, generous bounds).
        assert 0.1 * len(full) < len(sampled) < 0.45 * len(full)


class TestApplicationsEndToEnd:
    def test_signed_network_instability_via_language(self):
        g = signed_network(60, m=2, negative_fraction=0.4, seed=3)
        eng = QueryEngine(g)
        eng.execute_script(
            """
            PATTERN one_neg {
                ?A-?B; ?B-?C; ?A-?C;
                [EDGE(?A,?B).sign=-1];
                [EDGE(?B,?C).sign=1];
                [EDGE(?A,?C).sign=1];
            }
            """
        )
        table = eng.execute("SELECT ID, COUNTP(one_neg, SUBGRAPH(ID, 1)) FROM nodes")
        from repro.analysis.balance import signed_triangle_pattern
        from repro.census import census

        expected = census(g, signed_triangle_pattern(1), 1, algorithm="nd-bas")
        assert dict(table.rows) == expected

    def test_pairwise_union_query_on_couples(self):
        g = Graph()
        g.add_edge(1, 2, rel="married")
        g.add_edge(3, 4, rel="married")
        g.add_edge(2, 3, rel="friend")
        eng = QueryEngine(g)
        eng.execute_script(
            "PATTERN couple {?A-?B; [EDGE(?A,?B).rel='married'];}"
        )
        table = eng.execute(
            "SELECT n1.ID, n2.ID, "
            "COUNTP(couple, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) AS couples "
            "FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 1 AND n2.ID = 2"
        )
        # Union of N1(1) and N1(2) = {1,2,3}: only the 1-2 couple.
        assert table.rows == [(1, 2, 1)]

    def test_topk_cli_pipeline(self, tmp_path):
        from repro.cli import main
        import io

        json_path = tmp_path / "g.json"
        db_path = tmp_path / "g.db"
        out = io.StringIO()
        main(["generate", str(json_path), "--nodes", "80", "--m", "3",
              "--labels", "0", "--seed", "2"], out=out)
        main(["bulkload", str(json_path), str(db_path)], out=out)
        main(["topk", str(db_path), "--pattern", "clq3-unlb", "--radius", "1",
              "-k", "5"], out=out)
        text = out.getvalue()
        assert "top 5 egos" in text
