"""Shared fixtures and hypothesis configuration for the test suite."""

import pytest
from hypothesis import HealthCheck, settings

from repro.graph.graph import Graph
from repro.matching.pattern import Pattern

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
# CI profile: derandomized (a fixed seed derived from each test, so CI
# failures reproduce locally byte-for-byte) with capped examples.
# Select with --hypothesis-profile=ci.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=25,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def triangle_graph():
    """Two triangles sharing node 3: 1-2-3 and 3-4-5."""
    g = Graph()
    for u, v in [(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5)]:
        g.add_edge(u, v)
    return g


@pytest.fixture
def labeled_path_graph():
    """A labeled path a-b-c-d with labels X, Y, X, Y."""
    g = Graph()
    g.add_node("a", label="X")
    g.add_node("b", label="Y")
    g.add_node("c", label="X")
    g.add_node("d", label="Y")
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "d")
    return g


@pytest.fixture
def triangle_pattern():
    p = Pattern("tri")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("A", "C")
    return p


@pytest.fixture
def edge_pattern():
    p = Pattern("single_edge")
    p.add_edge("A", "B")
    return p


@pytest.fixture
def node_pattern():
    p = Pattern("single_node")
    p.add_node("A")
    return p
