"""Model-based stateful testing of DiskGraph.

A random interleaving of graph mutations is applied simultaneously to
the disk store and to the in-memory Graph (the model); every read API
must agree at every step, and a flush + reopen must preserve the full
state.
"""

import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.graph.graph import Graph
from repro.storage import DiskGraph

NODE_IDS = st.integers(0, 14)
LABELS = st.sampled_from(["A", "B", "C"])


class DiskGraphMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tmp = tempfile.mkdtemp()
        self.disk = DiskGraph.create(f"{self.tmp}/g.db", cache_pages=4, record_cache=4)
        self.model = Graph()

    @rule(node=NODE_IDS, label=LABELS)
    def add_node(self, node, label):
        self.disk.add_node(node, label=label)
        self.model.add_node(node, label=label)

    @rule(u=NODE_IDS, v=NODE_IDS, weight=st.integers(0, 9))
    def add_edge(self, u, v, weight):
        if u == v:
            return
        self.disk.add_edge(u, v, weight=weight)
        self.model.add_edge(u, v, weight=weight)

    @rule(node=NODE_IDS, value=st.integers(0, 99))
    def set_attr(self, node, value):
        if not self.model.has_node(node):
            return
        self.disk.set_node_attr(node, "score", value)
        self.model.set_node_attr(node, "score", value)

    @rule()
    def flush_and_reopen(self):
        self.disk.close()
        self.disk = DiskGraph.open(f"{self.tmp}/g.db", cache_pages=4, record_cache=4)

    @invariant()
    def same_shape(self):
        assert self.disk.num_nodes == self.model.num_nodes
        assert self.disk.num_edges == self.model.num_edges

    @invariant()
    def same_content(self):
        for n in self.model.nodes():
            assert self.disk.has_node(n)
            assert dict(self.disk.node_attrs(n)) == dict(self.model.node_attrs(n))
            assert set(self.disk.neighbors(n)) == set(self.model.neighbors(n))
        for u, v in self.model.edges():
            assert self.disk.has_edge(u, v)
            assert dict(self.disk.edge_attrs(u, v)) == dict(self.model.edge_attrs(u, v))

    def teardown(self):
        try:
            self.disk.close()
        except Exception:
            pass


TestDiskGraphModel = DiskGraphMachine.TestCase
TestDiskGraphModel.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
