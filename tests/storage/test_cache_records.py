"""Tests for the LRU buffer pool and the record log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.cache import LRUPageCache, page_span
from repro.storage.pager import PAGE_SIZE, Pager
from repro.storage.records import RecordLog


@pytest.fixture
def pager(tmp_path):
    p = Pager(tmp_path / "s.db", create=True)
    yield p
    p.close()


class TestCache:
    def test_hit_after_miss(self, pager):
        cache = LRUPageCache(pager, capacity=4)
        cache.get(1)
        cache.get(1)
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_writes_back_dirty(self, pager):
        cache = LRUPageCache(pager, capacity=2)
        page = cache.get(1)
        page[0] = 0xAB
        cache.mark_dirty(1)
        cache.get(2)
        cache.get(3)  # evicts page 1
        assert cache.evictions == 1
        assert pager.read_page(1)[0] == 0xAB

    def test_flush_keeps_pages_resident(self, pager):
        cache = LRUPageCache(pager, capacity=4)
        page = cache.get(1)
        page[1] = 7
        cache.mark_dirty(1)
        cache.flush()
        assert pager.read_page(1)[1] == 7
        assert len(cache) == 1

    def test_capacity_bound(self, pager):
        cache = LRUPageCache(pager, capacity=3)
        for i in range(10):
            cache.get(i)
        assert len(cache) == 3

    def test_invalid_capacity(self, pager):
        with pytest.raises(ValueError):
            LRUPageCache(pager, capacity=0)

    def test_stats_shape(self, pager):
        cache = LRUPageCache(pager, capacity=2)
        cache.get(0)
        s = cache.stats()
        assert set(s) == {"hits", "misses", "evictions", "resident", "capacity"}

    def test_page_span(self):
        assert page_span(0, 10) == (0, 0)
        assert page_span(PAGE_SIZE - 1, 2) == (0, 1)
        assert page_span(PAGE_SIZE, PAGE_SIZE) == (1, 1)


class TestRecordLog:
    def test_append_read_round_trip(self, pager):
        log = RecordLog(pager)
        off = log.append(b"hello world")
        assert log.read(off) == b"hello world"

    def test_records_span_pages(self, pager):
        log = RecordLog(pager)
        big = bytes(range(256)) * 64  # 16 KiB > one page
        off = log.append(big)
        assert log.read(off) == big

    def test_many_records_sequential(self, pager):
        log = RecordLog(pager)
        offsets = [log.append(f"record-{i}".encode()) for i in range(500)]
        for i, off in enumerate(offsets):
            assert log.read(off) == f"record-{i}".encode()

    def test_json_round_trip(self, pager):
        log = RecordLog(pager)
        doc = {"id": 3, "a": {"label": "X"}, "adj": [[1, None], [2, {"w": 1}]]}
        off = log.append_json(doc)
        assert log.read_json(off) == doc

    def test_offset_out_of_range(self, pager):
        log = RecordLog(pager)
        with pytest.raises(StorageError):
            log.read(0)  # header page
        with pytest.raises(StorageError):
            log.read(10 ** 9)

    def test_flush_commits_tail(self, tmp_path):
        path = tmp_path / "s.db"
        p = Pager(path, create=True)
        log = RecordLog(p)
        off = log.append(b"x" * 100)
        log.flush()
        p.close()
        q = Pager(path)
        log2 = RecordLog(q)
        assert log2.read(off) == b"x" * 100
        q.close()

    def test_unflushed_append_not_visible_after_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        p = Pager(path, create=True)
        log = RecordLog(p)
        log.append(b"committed")
        log.flush()
        uncommitted = log.append(b"torn")
        p._file.flush()  # bytes may hit disk, but the header tail doesn't
        p._file.close()
        q = Pager(path)
        log2 = RecordLog(q)
        with pytest.raises(StorageError):
            log2.read(uncommitted)
        q.close()

    @given(st.lists(st.binary(min_size=0, max_size=5000), min_size=1, max_size=30))
    def test_property_round_trip(self, tmp_path_factory, payloads):
        path = tmp_path_factory.mktemp("log") / "s.db"
        with Pager(path, create=True) as p:
            log = RecordLog(p, cache_pages=4)  # tiny cache to force evictions
            offsets = [log.append(b) for b in payloads]
            for payload, off in zip(payloads, offsets):
                assert log.read(off) == payload
