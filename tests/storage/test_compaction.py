"""Tests for store compaction."""

from repro.graph.generators import labeled_preferential_attachment
from repro.storage import DiskGraph


class TestCompaction:
    def test_compaction_preserves_graph(self, tmp_path):
        mem = labeled_preferential_attachment(50, m=2, seed=1)
        store = DiskGraph.create(tmp_path / "a.db", mem)
        compacted = store.compact(tmp_path / "b.db")
        assert compacted.num_nodes == store.num_nodes
        assert compacted.num_edges == store.num_edges
        for n in mem.nodes():
            assert set(compacted.neighbors(n)) == set(mem.neighbors(n))
            assert dict(compacted.node_attrs(n)) == dict(mem.node_attrs(n))

    def test_compaction_shrinks_churned_store(self, tmp_path):
        store = DiskGraph.create(tmp_path / "a.db")
        for i in range(30):
            store.add_node(i)
        # Churn: repeatedly rewrite node attributes, leaving dead versions.
        for round_no in range(20):
            for i in range(30):
                store.set_node_attr(i, "v", round_no)
        store.flush()
        before = store.file_size()
        compacted = store.compact(tmp_path / "b.db")
        assert compacted.file_size() < before / 2
        assert all(compacted.node_attr(i, "v") == 19 for i in range(30))

    def test_compacted_store_reopens(self, tmp_path):
        mem = labeled_preferential_attachment(20, m=2, seed=3)
        store = DiskGraph.create(tmp_path / "a.db", mem)
        store.compact(tmp_path / "b.db").close()
        reopened = DiskGraph.open(tmp_path / "b.db")
        assert reopened.num_nodes == 20

    def test_compaction_preserves_direction_and_edge_attrs(self, tmp_path):
        from repro.graph.graph import Graph

        g = Graph(directed=True)
        g.add_edge("a", "b", w=4)
        store = DiskGraph.create(tmp_path / "a.db", g)
        compacted = store.compact(tmp_path / "b.db")
        assert compacted.directed
        assert compacted.edge_attr("a", "b", "w") == 4
