"""Tests for the page-level file format."""

import pytest

from repro.errors import StorageError
from repro.storage.pager import PAGE_SIZE, Pager


class TestHeader:
    def test_create_and_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        p = Pager(path, create=True, directed=True)
        p.log_end = 2 * PAGE_SIZE + 17
        p.dir_offset = PAGE_SIZE + 5
        p.write_header()
        p.close()
        q = Pager(path)
        assert q.directed is True
        assert q.log_end == 2 * PAGE_SIZE + 17
        assert q.dir_offset == PAGE_SIZE + 5
        q.close()

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a store" + b"\x00" * PAGE_SIZE)
        with pytest.raises(StorageError, match="magic"):
            Pager(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "tiny.db"
        path.write_bytes(b"xx")
        with pytest.raises(StorageError):
            Pager(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            Pager(tmp_path / "absent.db")


class TestPages:
    def test_round_trip(self, tmp_path):
        p = Pager(tmp_path / "s.db", create=True)
        data = bytes(range(256)) * (PAGE_SIZE // 256)
        p.write_page(3, data)
        assert p.read_page(3) == data
        p.close()

    def test_read_past_eof_zero_padded(self, tmp_path):
        p = Pager(tmp_path / "s.db", create=True)
        assert p.read_page(99) == b"\x00" * PAGE_SIZE
        p.close()

    def test_wrong_size_rejected(self, tmp_path):
        p = Pager(tmp_path / "s.db", create=True)
        with pytest.raises(StorageError):
            p.write_page(1, b"short")
        p.close()

    def test_num_pages(self, tmp_path):
        p = Pager(tmp_path / "s.db", create=True)
        assert p.num_pages() == 1  # header
        p.write_page(4, b"\x00" * PAGE_SIZE)
        assert p.num_pages() == 5
        p.close()

    def test_context_manager(self, tmp_path):
        with Pager(tmp_path / "s.db", create=True) as p:
            p.write_page(1, b"\x01" * PAGE_SIZE)
        with Pager(tmp_path / "s.db") as q:
            assert q.read_page(1)[0] == 1
