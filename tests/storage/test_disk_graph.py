"""Tests for DiskGraph: API parity with the in-memory graph, durability,
and algorithm compatibility."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.generators import labeled_preferential_attachment
from repro.graph.graph import Graph
from repro.storage import DiskGraph


def assert_same_graph(mem, disk):
    assert disk.directed == mem.directed
    assert disk.num_nodes == mem.num_nodes
    assert disk.num_edges == mem.num_edges
    for n in mem.nodes():
        assert disk.has_node(n)
        assert dict(disk.node_attrs(n)) == dict(mem.node_attrs(n))
        assert set(disk.neighbors(n)) == set(mem.neighbors(n))
        if mem.directed:
            assert set(disk.out_neighbors(n)) == set(mem.out_neighbors(n))
            assert set(disk.in_neighbors(n)) == set(mem.in_neighbors(n))
    for u, v in mem.edges():
        assert disk.has_edge(u, v)
        assert dict(disk.edge_attrs(u, v)) == dict(mem.edge_attrs(u, v))


class TestBulkLoadAndReopen:
    def test_round_trip_undirected(self, tmp_path):
        mem = labeled_preferential_attachment(80, m=2, seed=1)
        store = DiskGraph.create(tmp_path / "g.db", mem)
        assert_same_graph(mem, store)
        store.close()
        reopened = DiskGraph.open(tmp_path / "g.db")
        assert_same_graph(mem, reopened)

    def test_round_trip_directed_with_edge_attrs(self, tmp_path):
        mem = Graph(directed=True)
        mem.add_edge("a", "b", w=1)
        mem.add_edge("b", "a", w=2)
        mem.add_edge("b", "c", w=3)
        mem.add_node("a", label="X")
        store = DiskGraph.create(tmp_path / "d.db", mem)
        store.close()
        assert_same_graph(mem, DiskGraph.open(tmp_path / "d.db"))

    @settings(max_examples=15)
    @given(st.integers(5, 40), st.integers(0, 100))
    def test_property_round_trip(self, tmp_path_factory, n, seed):
        mem = labeled_preferential_attachment(n, m=2, seed=seed)
        path = tmp_path_factory.mktemp("dg") / "g.db"
        store = DiskGraph.create(path, mem)
        store.close()
        assert_same_graph(mem, DiskGraph.open(path))


class TestMutations:
    def test_incremental_build(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        store.add_node(1, label="A")
        store.add_edge(1, 2, sign=-1)
        store.add_edge(2, 3)
        assert store.num_nodes == 3
        assert store.num_edges == 2
        assert store.edge_attr(1, 2, "sign") == -1
        assert store.neighbors(2) == {1, 3}

    def test_add_edge_idempotent_merges_attrs(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        store.add_edge(1, 2, w=1)
        store.add_edge(2, 1, s=9)
        assert store.num_edges == 1
        assert store.edge_attrs(1, 2) == {"w": 1, "s": 9}

    def test_set_node_attr_persists(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        store.add_node(1)
        store.set_node_attr(1, "label", "Q")
        store.close()
        assert DiskGraph.open(tmp_path / "g.db").label(1) == "Q"

    def test_unflushed_changes_lost_on_crash(self, tmp_path):
        path = tmp_path / "g.db"
        store = DiskGraph.create(path)
        store.add_node(1)
        store.flush()
        store.add_node(2)  # never flushed
        store._pager._file.close()  # simulated crash
        reopened = DiskGraph.open(path)
        assert reopened.has_node(1)
        assert not reopened.has_node(2)

    def test_self_loop_rejected(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        with pytest.raises(GraphError):
            store.add_edge(1, 1)

    def test_non_json_node_id_rejected(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        with pytest.raises(GraphError):
            store.add_node((1, 2))

    def test_missing_node_and_edge(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        store.add_edge(1, 2)
        with pytest.raises(NodeNotFoundError):
            store.node_attrs(99)
        with pytest.raises(EdgeNotFoundError):
            store.edge_attrs(1, 99)


class TestAlgorithmParity:
    def test_matching_and_census_identical(self, tmp_path):
        from repro.census import census
        from repro.matching import cn_matches
        from repro.matching.pattern import Pattern

        mem = labeled_preferential_attachment(70, m=2, seed=9)
        disk = DiskGraph.create(tmp_path / "g.db", mem)
        p = Pattern("tri")
        p.add_edge("A", "B")
        p.add_edge("B", "C")
        p.add_edge("A", "C")
        assert len(cn_matches(mem, p)) == len(cn_matches(disk, p))
        for algorithm in ("nd-pvot", "pt-opt"):
            assert census(mem, p, 2, algorithm=algorithm) == census(
                disk, p, 2, algorithm=algorithm
            )

    def test_cache_stats_accumulate(self, tmp_path):
        mem = labeled_preferential_attachment(50, m=2, seed=2)
        disk = DiskGraph.create(tmp_path / "g.db", mem, cache_pages=4)
        for n in list(disk.nodes())[:20]:
            disk.neighbors(n)
        stats = disk.cache_stats()
        assert stats["hits"] + stats["misses"] > 0


class TestMutationVersion:
    def test_version_bumps_on_writes_and_not_on_reads(self, tmp_path):
        store = DiskGraph.create(tmp_path / "g.db")
        assert store.version == 0
        store.add_node(1, label="A")
        v = store.version
        assert v > 0
        store.node_attrs(1)  # reads leave the counter alone
        assert store.version == v
        store.add_edge(1, 2)
        assert store.version > v
        v = store.version
        store.add_node(1)  # no-op: node exists, no attrs
        assert store.version == v
        store.set_node_attr(1, "label", "B")
        assert store.version > v
        store.close()
