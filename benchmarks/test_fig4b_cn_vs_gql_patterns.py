"""Figure 4(b): CN vs GQL across query patterns.

Paper setup: a 1M-node labeled graph; patterns of Figure 3.  GQL's
worst case is the square (480x slower than CN — it could not finish on
the plotted scale).  Scaled to a 4K-node graph over the clq3, clq4,
sqr, path3 and star3 patterns; the shape claims are that CN wins on
every pattern and that the square is GQL's worst pattern relative to
CN.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.datasets.workloads import matching_workload
from repro.matching import cn_matches, gql_matches

from conftest import run_once

GRAPH_SIZE = 4000
PATTERNS = ("clq3", "clq4", "sqr", "path3", "star3")


def test_fig4b_sweep(benchmark, record_figure):
    sweep = Sweep("fig4b: CN vs GQL by pattern", x_label="pattern")

    def run():
        for pattern_name in PATTERNS:
            graph, pattern = matching_workload(GRAPH_SIZE, pattern_name)
            cn = sweep.run("CN", pattern_name, cn_matches, graph, pattern)
            gql = sweep.run("GQL", pattern_name, gql_matches, graph, pattern)
            assert {m.canonical_key for m in cn} == {m.canonical_key for m in gql}
        return sweep

    run_once(benchmark, run)
    record_figure("fig4b", render_series(sweep))

    speedups = {
        pattern_name: sweep.value("GQL", pattern_name) / sweep.value("CN", pattern_name)
        for pattern_name in PATTERNS
    }
    # Shape: CN wins on every pattern.
    assert all(s > 1.0 for s in speedups.values()), speedups
    # Shape: the square is GQL's worst pattern (the paper's 480x point).
    assert speedups["sqr"] == max(speedups.values()), speedups
