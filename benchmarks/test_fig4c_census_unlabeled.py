"""Figure 4(c): pattern census on unlabeled graphs, varying size.

Paper setup: ``COUNTP(clq3-unlb, SUBGRAPH(ID, 2))`` on unlabeled PA
graphs of 20K–100K nodes; ND-BAS is 218x slower than ND-PVOT at the
smallest size and is dropped from the plot; ND-PVOT beats every other
algorithm because the unlabeled triangle is unselective (many matches
make pattern-driven approaches pay per match).

Scaled here to 200–800 nodes (ND-BAS measured only at 200).  Shape
claims: ND-BAS is by far the slowest; ND-PVOT beats both pattern-driven
algorithms at the largest size.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census import ALGORITHMS
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

SIZES = (200, 400, 800)
K = 2
SERIES = ("nd-diff", "nd-pvot", "pt-bas", "pt-opt", "pt-rnd")


def test_fig4c_sweep(benchmark, record_figure):
    pattern = standard_catalog().get("clq3-unlb")
    sweep = Sweep("fig4c: census, unlabeled clq3, k=2", x_label="nodes")
    results = {}

    def run():
        for n in SIZES:
            graph = pa_graph(n, labeled=False)
            for name in SERIES:
                results[(name, n)] = sweep.run(name, n, ALGORITHMS[name], graph, pattern, K)
            if n == SIZES[0]:
                results[("nd-bas", n)] = sweep.run(
                    "nd-bas", n, ALGORITHMS["nd-bas"], graph, pattern, K
                )
        return sweep

    run_once(benchmark, run)
    record_figure("fig4c", render_series(sweep))

    # All algorithms agree on the counts.
    for n in SIZES:
        per_algo = [v for (name, size), v in results.items() if size == n]
        assert all(v == per_algo[0] for v in per_algo)

    # Shape: ND-BAS is dramatically slower than ND-PVOT (paper: 218x).
    smallest = SIZES[0]
    assert sweep.value("nd-bas", smallest) > 10 * sweep.value("nd-pvot", smallest)
    # Shape: with an unselective pattern, the node-driven algorithms
    # beat the pattern-driven ones at scale (the paper's Figure 4(c)
    # ordering, with ND-PVOT the best of all).
    largest = SIZES[-1]
    best_nd = min(sweep.value("nd-pvot", largest), sweep.value("nd-diff", largest))
    best_pt = min(sweep.value("pt-bas", largest), sweep.value("pt-opt", largest))
    assert best_nd < best_pt
    assert sweep.value("nd-pvot", largest) < sweep.value("pt-opt", largest)
