"""Figure 4(e): varying focal-node selectivity.

Paper setup: unlabeled 500K-node graph, query ``COUNTP(clq3-unlb,
SUBGRAPH(ID, 2)) ... WHERE RND() < R`` for R in 20%..100%.  Node-driven
runtime grows linearly with R; pattern-driven runtime is flat because
those algorithms process matches regardless of which nodes are focal.

Scaled to an 800-node graph.  Wall-clock series are recorded for the
figure; the asserted shapes use deterministic *work* metrics, which is
what selectivity actually controls:

- ND-PVOT's BFS visits grow (near-)linearly with the focal fraction;
- PT-OPT's traversal work (queue pops + relaxations) is exactly
  identical across selectivities — pattern-driven algorithms never look
  at the focal set until the final harvest.
"""

import random

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census.nd_pvot import nd_pvot_census
from repro.census.pt_opt import PTOptions, pt_opt_census
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

GRAPH_SIZE = 800
K = 2
SELECTIVITIES = (0.2, 0.4, 0.6, 0.8, 1.0)


def focal_sample(graph, fraction, seed=5):
    rng = random.Random(seed)
    return [n for n in graph.nodes() if rng.random() < fraction]


def test_fig4e_sweep(benchmark, record_figure):
    graph = pa_graph(GRAPH_SIZE, labeled=False)
    pattern = standard_catalog().get("clq3-unlb")
    sweep = Sweep("fig4e: census by focal selectivity", x_label="R")
    nd_work = {}
    pt_work = {}

    def run():
        for r in SELECTIVITIES:
            focal = focal_sample(graph, r) if r < 1.0 else None
            nd_stats = {}
            sweep.run("ND-PVOT", r, nd_pvot_census, graph, pattern, K, focal,
                      None, "cn", None, nd_stats)
            nd_work[r] = nd_stats["bfs_visited"]
            pt_stats = {}
            opts = PTOptions(stats=pt_stats)
            sweep.run("PT-OPT", r, pt_opt_census, graph, pattern, K, focal,
                      None, "cn", opts)
            pt_work[r] = pt_stats["pops"] + pt_stats["relaxations"]
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), "", "work metrics:"]
    for r in SELECTIVITIES:
        lines.append(f"  R={r}: ND-PVOT bfs visits={nd_work[r]}, "
                     f"PT-OPT pops+relaxations={pt_work[r]}")
    record_figure("fig4e", "\n".join(lines))

    # Shape: node-driven per-node work grows with selectivity (the
    # one-off global matching pass is excluded from this metric, so the
    # growth is close to linear, as in the paper).
    assert nd_work[1.0] > 3 * nd_work[0.2]
    assert nd_work[0.2] < nd_work[0.6] < nd_work[1.0]
    # Shape: pattern-driven work is selectivity-independent — exactly.
    assert len(set(pt_work.values())) == 1
