"""Figure 4(f): effect of the number and choice of centers on PT-OPT.

Paper setup: labeled 1M-node graph, clq3, k=2; centers chosen by degree
(DEG-CNTR) vs uniformly at random (RND-CNTR); center count swept 0..24
while the number of centers feeding the *clustering* feature space is
held fixed to isolate the distance-initialization effect.  Findings:
degree centers help (then plateau / degrade from overhead); random
centers do not help and get worse as more are added.

Scaled to a 4K-node graph.  Runtime at this scale is noisy, so the
asserted shape is on traversal *work* (queue pops + relaxations), which
is what the center bounds actually save: degree centers with a moderate
count do at most the no-center work, and degree centers never do more
work than the same number of random centers (summed over the sweep).
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census.pt_opt import PTOptions, pt_opt_census
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog

from conftest import run_once

GRAPH_SIZE = 4000
K = 2
CENTER_COUNTS = (0, 4, 12, 24)
CLUSTERING_CENTERS = 12


def test_fig4f_sweep(benchmark, record_figure):
    graph = pa_graph(GRAPH_SIZE, labeled=True)
    pattern = standard_catalog().get("clq3")
    sweep = Sweep("fig4f: PT-OPT by center count", x_label="centers")
    work = {}

    def run():
        for strategy, series in (("degree", "DEG-CNTR"), ("random", "RND-CNTR")):
            for count in CENTER_COUNTS:
                stats = {}
                opts = PTOptions(
                    num_centers=count,
                    center_strategy=strategy,
                    clustering_centers=CLUSTERING_CENTERS,
                    stats=stats,
                )
                sweep.run(series, count, pt_opt_census, graph, pattern, K, None, None,
                          "cn", opts)
                work[(series, count)] = stats["pops"] + stats["relaxations"]
        return sweep

    run_once(benchmark, run)
    lines = [render_series(sweep), "", "traversal work (pops + relaxations):"]
    for (series, count), w in sorted(work.items()):
        lines.append(f"  {series} centers={count}: {w}")
    record_figure("fig4f", "\n".join(lines))

    # Shape: a moderate number of degree centers does not increase work
    # over no centers.
    assert work[("DEG-CNTR", 12)] <= work[("DEG-CNTR", 0)]
    # Shape: degree centers are no worse than random centers overall.
    deg_total = sum(work[("DEG-CNTR", c)] for c in CENTER_COUNTS)
    rnd_total = sum(work[("RND-CNTR", c)] for c in CENTER_COUNTS)
    assert deg_total <= rnd_total
