"""Ablations: ND-DIFF processing orders and signature pruning.

- Section IV-A.2 notes the authors tried a shingle-ordering heuristic
  for ND-DIFF and found it "essentially the same" as neighbor chains;
  this benchmark reproduces that non-result (identical counts, the
  same ballpark runtime).
- Section I's graph-indexing application: census-based node signatures
  should prune strictly more candidates than the label-profile filter
  alone on structured patterns.
"""

from repro.analysis.signatures import SignatureIndex
from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.census.nd_diff import nd_diff_census
from repro.datasets.workloads import pa_graph
from repro.graph.generators import preferential_attachment
from repro.lang.catalog import standard_catalog
from repro.matching.base import enumerate_candidates

from conftest import run_once


def test_ablation_nd_diff_orders(benchmark, record_figure):
    graph = pa_graph(800, labeled=False)
    pattern = standard_catalog().get("clq3-unlb")
    sweep = Sweep("ablation: ND-DIFF orders", x_label="order")
    results = {}

    def run():
        for order in ("neighbor", "shingle", "given"):
            results[order] = sweep.run("time", order, nd_diff_census, graph, pattern, 2,
                                       None, None, "cn", order)
        return sweep

    run_once(benchmark, run)
    record_figure("ablation_nd_diff_orders", render_series(sweep))

    # Identical counts regardless of order.
    assert results["neighbor"] == results["shingle"] == results["given"]
    # The paper's non-result: shingle ordering is essentially the same
    # as neighbor chains (within a small factor).
    t_neighbor = sweep.value("time", "neighbor")
    t_shingle = sweep.value("time", "shingle")
    assert t_shingle < 4 * t_neighbor
    assert t_neighbor < 4 * t_shingle


def test_ablation_signature_pruning(benchmark, record_figure):
    graph = preferential_attachment(500, m=3, seed=5)
    pattern = standard_catalog().get("clq3-unlb")

    def run():
        return SignatureIndex(graph, radius=1)

    index = run_once(benchmark, run)

    profile_candidates = enumerate_candidates(graph, pattern)
    signature_candidates = index.candidates(pattern)
    profile_kept = sum(len(c) for c in profile_candidates.values())
    signature_kept = sum(len(c) for c in signature_candidates.values())
    total = graph.num_nodes * len(pattern.nodes)

    lines = [
        "ablation: signature pruning vs profile filter (unlabeled clq3)",
        f"  candidate pairs total:   {total}",
        f"  profile filter keeps:    {profile_kept}",
        f"  signature filter keeps:  {signature_kept}",
        f"  signature pruning power: {index.pruning_power(pattern):.3f}",
    ]
    record_figure("ablation_signatures", "\n".join(lines))

    # Signatures prune at least as hard as the profile filter on an
    # unlabeled clique pattern (triangle counts see what label profiles
    # cannot).
    assert signature_kept <= profile_kept
    # Soundness is covered by unit tests; sanity-check one direction
    # here too: signature candidates for cliques require degree >= 2.
    for var, nodes in signature_candidates.items():
        assert all(graph.degree(n) >= 2 for n in nodes)
