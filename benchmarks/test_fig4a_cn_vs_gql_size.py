"""Figure 4(a): CN vs GQL pattern matching, varying graph size.

Paper setup: PA graphs 200K–1M nodes (edges = 5x nodes), 4 labels,
patterns clq3 and clq4; CN beats GQL by 10–140x, and the gap widens
with graph size.  Scaled here to 1K–4K nodes; the shape claims asserted
are (1) CN wins at every size for both patterns and (2) the clq3
speedup grows monotonically with size.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series, speedup_table
from repro.datasets.workloads import matching_workload
from repro.matching import cn_matches, gql_matches

from conftest import run_once

SIZES = (1000, 2000, 4000)
PATTERNS = ("clq3", "clq4")


def test_fig4a_sweep(benchmark, record_figure):
    sweep = Sweep("fig4a: CN vs GQL by graph size", x_label="nodes")

    def run():
        for n in SIZES:
            for pattern_name in PATTERNS:
                graph, pattern = matching_workload(n, pattern_name)
                cn = sweep.run(f"CN/{pattern_name}", n, cn_matches, graph, pattern)
                gql = sweep.run(f"GQL/{pattern_name}", n, gql_matches, graph, pattern)
                assert {m.canonical_key for m in cn} == {m.canonical_key for m in gql}
        return sweep

    run_once(benchmark, run)
    record_figure(
        "fig4a",
        render_series(sweep) + "\n" + speedup_table(sweep, "GQL/clq3"),
    )

    # Shape: CN wins everywhere.
    for n in SIZES:
        for pattern_name in PATTERNS:
            assert sweep.value(f"CN/{pattern_name}", n) < sweep.value(f"GQL/{pattern_name}", n)
    # Shape: the clq3 speedup grows with graph size.
    speedups = [
        sweep.value("GQL/clq3", n) / sweep.value("CN/clq3", n) for n in SIZES
    ]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 3.0
