"""Per-algorithm operation-counter baselines.

Timings vary by machine; *operation counts* do not.  This benchmark
runs every census algorithm on one fixed seeded workload under an
observability context and records the counters each algorithm reports
(containment checks, bulk adds, BFS expansions, queue pops, edge
visits, ...).  The table written to
``benchmarks/results/counter_baselines.txt`` is a deterministic
fingerprint of algorithmic work: an optimization PR should move these
numbers on purpose, and a refactor should not move them at all.
"""

from repro.census import census
from repro.census.pairwise import pairwise_census
from repro.census.topk import census_topk
from repro.datasets.workloads import pa_graph
from repro.lang.catalog import standard_catalog
from repro.obs import ObsContext

GRAPH_SIZE = 150
RADIUS = 1
PATTERN = "clq3-unlb"

ALGORITHMS = ("nd-bas", "nd-pvot", "nd-diff", "pt-bas", "pt-opt")


def _counters_for(run):
    with ObsContext() as obs:
        run()
    return dict(obs.counter_table())


def collect_baselines():
    graph = pa_graph(GRAPH_SIZE, m=3)
    pattern = standard_catalog().get(PATTERN)
    rows = {}
    for algorithm in ALGORITHMS:
        rows[algorithm] = _counters_for(
            lambda: census(graph, pattern, RADIUS, algorithm=algorithm)
        )
    pairs = [(i, i + 1) for i in range(0, 40, 2)]
    for strategy in ("nd", "pt"):
        rows[f"pairwise-{strategy}"] = _counters_for(
            lambda: pairwise_census(
                graph, pattern, RADIUS, pairs=pairs, algorithm=strategy
            )
        )
    rows["topk"] = _counters_for(
        lambda: census_topk(graph, pattern, RADIUS, K=10)
    )
    return rows


def render(rows):
    lines = [
        f"operation counters, {PATTERN} on pa_graph({GRAPH_SIZE}, m=3), "
        f"k={RADIUS} (deterministic)",
        "",
    ]
    for name in sorted(rows):
        lines.append(f"[{name}]")
        for counter, value in sorted(rows[name].items()):
            lines.append(f"  {counter} = {value}")
        lines.append("")
    return "\n".join(lines).rstrip()


def test_counter_baselines(record_figure):
    rows = collect_baselines()

    # Counts are pure functions of (graph, pattern, k): a second run
    # must reproduce them exactly.
    assert collect_baselines() == rows

    # Every algorithm runs the same matching front-end (counts differ
    # only by the distinct-vs-automorphic mode the algorithm asks for)...
    assert all(r["match.cn.matches"] > 0 for r in rows.values())
    # ...and reports its own work on top of it.
    assert rows["nd-pvot"]["census.nd_pvot.bfs_expansions"] > 0
    assert rows["nd-bas"]["census.nd_bas.subgraphs_extracted"] > 0
    assert rows["nd-diff"]["census.nd_diff.diff_steps"] > 0
    assert rows["pt-bas"]["census.pt_bas.edge_visits"] > 0
    assert rows["pt-opt"]["census.pt_opt.queue_pops"] > 0
    assert (rows["pairwise-nd"].get("census.pairwise.bulk_added", 0)
            + rows["pairwise-nd"].get("census.pairwise.containment_checks", 0)) > 0
    assert rows["topk"]["census.topk.exact_evaluations"] > 0
    # The pivot index works on the shared match set — ND-PVOT never
    # extracts per-ego subgraphs the way the baseline does (the paper's
    # Algorithm 2 claim, stated on counters).
    assert "census.nd_bas.extracted_nodes" in rows["nd-bas"]
    assert "census.nd_bas.extracted_nodes" not in rows["nd-pvot"]

    record_figure("counter_baselines", render(rows))
