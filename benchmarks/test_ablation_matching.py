"""Ablation: what the candidate-neighbor sets buy.

Compares the full CN matcher against the GQL-style baseline (identical
candidate filtering, no CN sets) and brute force (no filtering at all)
on one workload, and reports CN's pruning statistics.  The design claim
(DESIGN.md §5): candidate filtering and CN-set extraction each
contribute, so brute force > GQL > CN in runtime.
"""

from repro.bench.harness import Sweep
from repro.bench.reporting import render_series
from repro.datasets.workloads import matching_workload
from repro.matching import bruteforce_matches, cn_matches, gql_matches
from repro.matching.cn import build_cn_state

from conftest import run_once

GRAPH_SIZE = 600  # small enough for brute force to finish


def test_ablation_matching(benchmark, record_figure):
    graph, pattern = matching_workload(GRAPH_SIZE, "clq3")
    sweep = Sweep("ablation: matcher strategies", x_label="matcher")

    def run():
        cn = sweep.run("time", "cn", cn_matches, graph, pattern)
        gql = sweep.run("time", "gql", gql_matches, graph, pattern)
        bf = sweep.run("time", "bruteforce", bruteforce_matches, graph, pattern)
        assert ({m.canonical_key for m in cn}
                == {m.canonical_key for m in gql}
                == {m.canonical_key for m in bf})
        return sweep

    run_once(benchmark, run)

    state = build_cn_state(graph, pattern)
    lines = [render_series(sweep), "", "CN pruning:"]
    for var in pattern.nodes:
        initial = state.stats["initial_candidates"][var]
        pruned = state.stats["pruned_candidates"][var]
        lines.append(f"  ?{var}: {initial} -> {pruned} candidates")
    record_figure("ablation_matching", "\n".join(lines))

    assert sweep.value("time", "cn") < sweep.value("time", "gql")
    assert sweep.value("time", "gql") < sweep.value("time", "bruteforce")
