"""Ablation: ND-PVOT pivot selection.

Section IV-A.1 argues the min-eccentricity pivot is optimal with
respect to the containment checks that can be *avoided*: a match
anchored at distance ``d`` from the focal node is bulk-counted without
any check when ``d + max_v <= k``, and ``max_v`` (the pivot's
eccentricity within the pattern) is what the pivot choice controls.

On a path pattern A-B-C-D the ends have eccentricity 3 and the middle
nodes 2: with k=3 a middle pivot bulk-counts matches anchored up to 1
hop away, while an end pivot can only bulk-count matches anchored at
the focal node itself.  The asserted shape: the min-eccentricity pivot
achieves at least the bulk-shortcut fraction of the worst pivot, and
every pivot returns identical counts.
"""

from repro.census.nd_pvot import nd_pvot_census
from repro.graph.generators import preferential_attachment
from repro.matching.pattern import Pattern

from conftest import run_once

# Sparse graph: 4-path counts explode combinatorially with density.
GRAPH_SIZE = 300
K = 3


def path4():
    p = Pattern("path4")
    p.add_edge("A", "B")
    p.add_edge("B", "C")
    p.add_edge("C", "D")
    return p


def bulk_fraction(stats):
    done = stats["bulk_added"] + stats["explicitly_checked"]
    return stats["bulk_added"] / done if done else 0.0


def test_ablation_pivot(benchmark, record_figure):
    graph = preferential_attachment(GRAPH_SIZE, m=2, seed=7)
    pattern = path4()
    all_stats = {}
    counts = {}

    def run():
        for pivot in "ABCD":
            stats = {}
            counts[pivot] = nd_pvot_census(
                graph, pattern, K, pivot_var=pivot, collect_stats=stats
            )
            all_stats[pivot] = stats
        return all_stats

    run_once(benchmark, run)

    lines = [f"ablation: ND-PVOT pivot choice (path pattern A-B-C-D, k={K})"]
    for pivot, stats in all_stats.items():
        lines.append(
            f"  pivot ?{pivot} (ecc={pattern.eccentricity(pivot)}): "
            f"bulk={stats['bulk_added']} checked={stats['explicitly_checked']} "
            f"bulk fraction={bulk_fraction(stats):.3f}"
        )
    record_figure("ablation_pivot", "\n".join(lines))

    # Correctness does not depend on the pivot.
    assert counts["A"] == counts["B"] == counts["C"] == counts["D"]
    # Shape: the min-eccentricity pivots (B, C; max_v=2) bulk-count a
    # larger fraction of the work than the worst pivots (A, D; max_v=3).
    best = max(bulk_fraction(all_stats["B"]), bulk_fraction(all_stats["C"]))
    worst = max(bulk_fraction(all_stats["A"]), bulk_fraction(all_stats["D"]))
    assert best >= worst
    assert bulk_fraction(all_stats["B"]) > 0.0 or bulk_fraction(all_stats["C"]) > 0.0
